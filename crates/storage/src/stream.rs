//! The sequentially written, segmented log-data stream.
//!
//! §4.1: "records from different logs must be interleaved in a data stream
//! that is written sequentially to disk". The stream is a contiguous
//! logical byte space chunked into fixed-capacity segment files, so old
//! prefixes can be spooled off or deleted at segment granularity (§5.3).
//! Frames may span segment boundaries; the logical position space has no
//! holes.

use std::collections::BTreeSet;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::frame::Frame;
use dlog_types::namebuf::NameBuf;
use dlog_types::Result as DlogResult;

/// Chunk size used by sequential scans.
const SCAN_CHUNK: usize = 256 * 1024;

/// Lazily formatted diagnosis of a corrupt segment directory. Carried
/// inside an [`io::Error`] so the (cold) failure path renders text only
/// when somebody actually prints the error.
#[derive(Debug)]
struct GeometryError {
    what: &'static str,
    seg: u64,
    len: u64,
    capacity: u64,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (segment {}, length {}, capacity {})",
            self.what, self.seg, self.len, self.capacity
        )
    }
}

impl std::error::Error for GeometryError {}

/// Lazily formatted out-of-range read diagnosis.
#[derive(Debug)]
struct ReadRangeError {
    pos: u64,
    len: usize,
    start: u64,
    end: u64,
}

impl fmt::Display for ReadRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read [{}, {}) outside [{}, {})",
            self.pos,
            self.pos + self.len as u64,
            self.start,
            self.end
        )
    }
}

impl std::error::Error for ReadRangeError {}

/// A segmented, append-oriented byte stream with positional reads.
#[derive(Debug)]
pub struct SegmentedStream {
    dir: PathBuf,
    segment_bytes: u64,
    /// Logical end: one past the last written byte.
    end: u64,
    /// Logical start: everything before this has been dropped (§5.3).
    start: u64,
    /// Segments touched since the last `sync`.
    dirty: BTreeSet<u64>,
}

impl SegmentedStream {
    /// Open (or create) the stream stored in `dir` with the given segment
    /// capacity.
    ///
    /// # Errors
    /// Fails on I/O errors or if existing segments are inconsistent with
    /// `segment_bytes` (a non-final segment that is not full).
    pub fn open(dir: impl AsRef<Path>, segment_bytes: u64) -> io::Result<SegmentedStream> {
        assert!(segment_bytes >= 1024, "segment capacity unreasonably small");
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        // Single pass over the directory: only the extremes matter (the
        // chain is validated below by walking `first..=last` directly).
        let mut first: Option<u64> = None;
        let mut last: Option<u64> = None;
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(idx) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".seg"))
            {
                if let Ok(i) = idx.parse::<u64>() {
                    first = Some(first.map_or(i, |f| f.min(i)));
                    last = Some(last.map_or(i, |l| l.max(i)));
                }
            }
        }
        let (start, end) = match (first, last) {
            (Some(first), Some(last)) => {
                // Every index in `first..=last` must exist (a missing one
                // is a gap), all but the last must be exactly full, and
                // the last must not exceed capacity.
                let mut last_len = 0;
                for i in first..=last {
                    let len = match fs::metadata(segment_path(&dir, i)) {
                        Ok(md) => md.len(),
                        Err(e) if e.kind() == io::ErrorKind::NotFound => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                GeometryError {
                                    what: "segment missing (gap in the chain)",
                                    seg: i,
                                    len: 0,
                                    capacity: segment_bytes,
                                },
                            ));
                        }
                        Err(e) => return Err(e),
                    };
                    if i < last && len != segment_bytes {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            GeometryError {
                                what: "non-final segment is not full",
                                seg: i,
                                len,
                                capacity: segment_bytes,
                            },
                        ));
                    }
                    if i == last {
                        if len > segment_bytes {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                GeometryError {
                                    what: "final segment overlong",
                                    seg: i,
                                    len,
                                    capacity: segment_bytes,
                                },
                            ));
                        }
                        last_len = len;
                    }
                }
                (first * segment_bytes, last * segment_bytes + last_len)
            }
            _ => (0, 0),
        };
        Ok(SegmentedStream {
            dir,
            segment_bytes,
            end,
            start,
            dirty: BTreeSet::new(),
        })
    }

    /// Logical end of the stream (the append position).
    #[must_use]
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Logical start (everything before was dropped).
    #[must_use]
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Segment capacity in bytes.
    #[must_use]
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Number of live segment files.
    #[must_use]
    pub fn segment_count(&self) -> u64 {
        if self.end == self.start && self.end == 0 {
            return 0;
        }
        self.end / self.segment_bytes - self.start / self.segment_bytes + 1
    }

    /// Indices of sealed segments: live segments that are full and will
    /// never be written again (every segment strictly below the one the
    /// append position falls in). These are what the archive tier uploads.
    #[must_use]
    pub fn sealed_segments(&self) -> Vec<u64> {
        let first_live = self.start / self.segment_bytes;
        let append_seg = self.end / self.segment_bytes;
        (first_live..append_seg).collect()
    }

    /// Append `bytes` at the end, returning the position they were written
    /// at.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn append(&mut self, bytes: &[u8]) -> io::Result<u64> {
        let pos = self.end;
        self.write_at(pos, bytes)?;
        Ok(pos)
    }

    /// Write `bytes` at logical position `pos` (used by NVRAM replay to
    /// overwrite a torn tail). Extends the stream if the write passes the
    /// current end; writing strictly before `start` or beyond `end` is an
    /// error.
    ///
    /// # Errors
    /// Propagates I/O failures and rejects out-of-range positions.
    pub fn write_at(&mut self, pos: u64, bytes: &[u8]) -> io::Result<()> {
        if pos < self.start || pos > self.end {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "write position outside the stream's live range",
            ));
        }
        let mut cursor = pos;
        let mut remaining = bytes;
        while !remaining.is_empty() {
            let seg = cursor / self.segment_bytes;
            let off = cursor % self.segment_bytes;
            let room = (self.segment_bytes - off) as usize;
            let take = room.min(remaining.len());
            let mut file = self.open_segment(seg, true)?;
            file.seek(SeekFrom::Start(off))?;
            file.write_all(remaining.get(..take).unwrap_or(&[]))?;
            self.dirty.insert(seg);
            cursor += take as u64;
            remaining = remaining.get(take..).unwrap_or(&[]);
        }
        self.end = self.end.max(cursor);
        Ok(())
    }

    /// Read exactly `len` bytes at `pos` into `out` (cleared first). The
    /// caller owns the buffer so steady-state readers reuse its capacity
    /// instead of allocating per read.
    ///
    /// # Errors
    /// Fails if the range is not fully inside `[start, end)`.
    pub fn read_into(&self, pos: u64, len: usize, out: &mut Vec<u8>) -> io::Result<()> {
        if pos < self.start || pos + len as u64 > self.end {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                ReadRangeError {
                    pos,
                    len,
                    start: self.start,
                    end: self.end,
                },
            ));
        }
        out.clear();
        out.resize(len, 0);
        let mut cursor = pos;
        let mut filled = 0;
        while filled < len {
            let seg = cursor / self.segment_bytes;
            let off = cursor % self.segment_bytes;
            let room = (self.segment_bytes - off) as usize;
            let take = room.min(len - filled);
            let mut file = self.open_segment(seg, false)?;
            file.seek(SeekFrom::Start(off))?;
            let slot = out.get_mut(filled..filled + take).ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "read window out of range")
            })?;
            file.read_exact(slot)?;
            cursor += take as u64;
            filled += take;
        }
        Ok(())
    }

    /// Truncate the stream to logical length `end` (drops torn tails found
    /// during recovery).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn truncate(&mut self, end: u64) -> io::Result<()> {
        if end > self.end || end < self.start {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "truncate out of range",
            ));
        }
        let keep_seg = end / self.segment_bytes;
        let last_seg = if self.end == 0 {
            0
        } else {
            (self.end.saturating_sub(1)) / self.segment_bytes
        };
        for seg in (keep_seg + 1)..=last_seg {
            let p = segment_path(&self.dir, seg);
            if p.exists() {
                fs::remove_file(p)?;
            }
        }
        let p = segment_path(&self.dir, keep_seg);
        if p.exists() {
            let f = OpenOptions::new().write(true).open(p)?;
            f.set_len(end % self.segment_bytes)?;
        }
        self.end = end;
        Ok(())
    }

    /// Drop whole segments strictly below `pos` (log space management,
    /// §5.3). Returns the new logical start.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn drop_before(&mut self, pos: u64) -> io::Result<u64> {
        let pos = pos.min(self.end);
        let first_keep = pos / self.segment_bytes;
        let first_live = self.start / self.segment_bytes;
        for seg in first_live..first_keep {
            let p = segment_path(&self.dir, seg);
            if p.exists() {
                fs::remove_file(p)?;
            }
        }
        self.start = self.start.max(first_keep * self.segment_bytes);
        Ok(self.start)
    }

    /// Flush all dirty segments to stable storage.
    ///
    /// # Errors
    /// Propagates `fsync` failure.
    pub fn sync(&mut self) -> io::Result<()> {
        for seg in std::mem::take(&mut self.dirty) {
            let p = segment_path(&self.dir, seg);
            if p.exists() {
                File::open(p)?.sync_data()?;
            }
        }
        Ok(())
    }

    /// Scan frames from `from`, invoking `f(position, frame)` for each
    /// valid frame, stopping at the first invalid one. Returns the logical
    /// position one past the last valid frame.
    ///
    /// # Errors
    /// Propagates I/O failures and structurally corrupt frame bodies.
    pub fn scan_frames<F>(&self, from: u64, mut f: F) -> DlogResult<u64>
    where
        F: FnMut(u64, Frame),
    {
        let mut pos = from.max(self.start);
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk: Vec<u8> = Vec::new();
        let mut buf_base = pos;
        loop {
            let offset = (pos - buf_base) as usize;
            match Frame::decode(buf.get(offset..).unwrap_or(&[]))? {
                Some((frame, consumed)) => {
                    f(pos, frame);
                    pos += consumed as u64;
                    // Slide the window when the consumed prefix grows large.
                    if pos - buf_base > (SCAN_CHUNK as u64) / 2 {
                        buf.drain(..(pos - buf_base) as usize);
                        buf_base = pos;
                    }
                }
                None => {
                    // Either a genuine end, or the buffer is too short for
                    // the next frame and more stream data exists: extend.
                    let buffered_to = buf_base + buf.len() as u64;
                    if buffered_to < self.end {
                        let take = ((self.end - buffered_to) as usize).min(SCAN_CHUNK);
                        self.read_into(buffered_to, take, &mut chunk)
                            .map_err(dlog_types::DlogError::Io)?;
                        buf.extend_from_slice(&chunk);
                        continue;
                    }
                    return Ok(pos);
                }
            }
        }
    }

    fn open_segment(&self, seg: u64, create: bool) -> io::Result<File> {
        let p = segment_path(&self.dir, seg);
        if create {
            // No truncate: segments are extended in place, never replaced.
            #[allow(clippy::suspicious_open_options)]
            OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .open(p)
        } else {
            File::open(p)
        }
    }
}

/// The on-disk file name of segment `seg` (shared with the archive tier,
/// which must recreate segment files byte-for-byte on restore). Built on
/// the stack — segment files are opened on every positional read and
/// write, so name formatting must not allocate. 32 bytes always fits
/// `seg-` + ≤ 20 digits + `.seg`.
#[must_use]
pub fn segment_file_name(seg: u64) -> NameBuf<32> {
    dlog_types::namebuf!(32, "seg-{seg:08}.seg")
}

fn segment_path(dir: &Path, seg: u64) -> PathBuf {
    dir.join(segment_file_name(seg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlog_types::{ClientId, Epoch, LogRecord, Lsn};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join("dlog-stream-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn read_at(s: &SegmentedStream, pos: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        s.read_into(pos, len, &mut out)?;
        Ok(out)
    }

    fn rec_frame(lsn: u64, size: usize) -> Frame {
        Frame::Record {
            client: ClientId(1),
            record: LogRecord::present(Lsn(lsn), Epoch(1), vec![lsn as u8; size]),
            staged: false,
        }
    }

    #[test]
    fn append_read_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut s = SegmentedStream::open(&dir, 4096).unwrap();
        let pos = s.append(b"hello world").unwrap();
        assert_eq!(pos, 0);
        assert_eq!(read_at(&s, 0, 11).unwrap(), b"hello world");
        assert_eq!(s.end(), 11);
        assert!(read_at(&s, 5, 100).is_err());
    }

    #[test]
    fn spans_segment_boundaries() {
        let dir = tmpdir("spans");
        let mut s = SegmentedStream::open(&dir, 1024).unwrap();
        let blob: Vec<u8> = (0..3000u32).map(|i| i as u8).collect();
        s.append(&blob).unwrap();
        assert_eq!(s.segment_count(), 3);
        assert_eq!(read_at(&s, 0, 3000).unwrap(), blob);
        // A read crossing the first boundary.
        assert_eq!(read_at(&s, 1000, 48).unwrap(), &blob[1000..1048]);
    }

    #[test]
    fn reopen_finds_end() {
        let dir = tmpdir("reopen");
        {
            let mut s = SegmentedStream::open(&dir, 1024).unwrap();
            s.append(&vec![7u8; 2500]).unwrap();
            s.sync().unwrap();
        }
        let s = SegmentedStream::open(&dir, 1024).unwrap();
        assert_eq!(s.end(), 2500);
        assert_eq!(read_at(&s, 2400, 100).unwrap(), vec![7u8; 100]);
    }

    #[test]
    fn write_at_overwrites_tail() {
        let dir = tmpdir("overwrite");
        let mut s = SegmentedStream::open(&dir, 1024).unwrap();
        s.append(b"aaaaaaaaaa").unwrap();
        s.write_at(5, b"BBBBBBBB").unwrap();
        assert_eq!(s.end(), 13);
        assert_eq!(read_at(&s, 0, 13).unwrap(), b"aaaaaBBBBBBBB");
        // Holes are rejected.
        assert!(s.write_at(20, b"x").is_err());
    }

    #[test]
    fn scan_stops_at_torn_frame() {
        let dir = tmpdir("torn");
        let mut s = SegmentedStream::open(&dir, 1 << 16).unwrap();
        let mut encoded = Vec::new();
        for i in 1..=5u64 {
            rec_frame(i, 50).encode_into(&mut encoded);
        }
        let full_len = encoded.len();
        // Tear the final frame: drop its last 10 bytes.
        s.append(&encoded[..full_len - 10]).unwrap();
        let mut seen = Vec::new();
        let end = s.scan_frames(0, |pos, f| seen.push((pos, f))).unwrap();
        assert_eq!(seen.len(), 4);
        // The scan end is the start of the torn frame.
        let frame_len = rec_frame(1, 50).encoded_len() as u64;
        assert_eq!(end, frame_len * 4);
    }

    #[test]
    fn scan_across_segments() {
        let dir = tmpdir("scanseg");
        let mut s = SegmentedStream::open(&dir, 1024).unwrap();
        let mut expect = Vec::new();
        for i in 1..=60u64 {
            let f = rec_frame(i, 64);
            let mut buf = Vec::new();
            f.encode_into(&mut buf);
            let pos = s.append(&buf).unwrap();
            expect.push((pos, f));
        }
        assert!(s.segment_count() > 3);
        let mut seen = Vec::new();
        let end = s.scan_frames(0, |pos, f| seen.push((pos, f))).unwrap();
        assert_eq!(seen, expect);
        assert_eq!(end, s.end());
    }

    #[test]
    fn truncate_and_drop() {
        let dir = tmpdir("truncate");
        let mut s = SegmentedStream::open(&dir, 1024).unwrap();
        s.append(&vec![1u8; 3000]).unwrap();
        s.truncate(2500).unwrap();
        assert_eq!(s.end(), 2500);
        assert!(read_at(&s, 2400, 100).is_ok());
        assert!(read_at(&s, 2450, 100).is_err());

        // Drop the first two segments.
        let new_start = s.drop_before(2100).unwrap();
        assert_eq!(new_start, 2048);
        assert!(read_at(&s, 0, 10).is_err());
        assert!(read_at(&s, 2048, 100).is_ok());
        assert_eq!(s.segment_count(), 1);
    }

    #[test]
    fn empty_stream() {
        let dir = tmpdir("empty");
        let s = SegmentedStream::open(&dir, 1024).unwrap();
        assert_eq!(s.end(), 0);
        assert_eq!(s.segment_count(), 0);
        let end = s.scan_frames(0, |_, _| panic!("no frames")).unwrap();
        assert_eq!(end, 0);
    }
}
