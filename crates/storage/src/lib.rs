//! Log-server storage engine for the `dlog` distributed logging system.
//!
//! §4.1 of the paper derives the storage design from a capacity analysis:
//! a log server handling ~170 forced writes per second cannot seek between
//! per-client files, nor wait out a disk rotation per force. The resulting
//! design, implemented here:
//!
//! * records from **all clients are interleaved** into a single
//!   sequentially written stream ([`stream`]), divided into fixed-capacity
//!   segment files so old log data can be spooled or dropped (§5.3);
//! * incoming records are buffered in **low-latency non-volatile memory**
//!   ([`nvram`]) and written to disk **a track at a time** — the battery-
//!   backed CMOS buffer of §5.1 is simulated by a device object whose
//!   contents survive a simulated crash of the store;
//! * every frame carries a CRC ([`frame`], [`crc`]) so torn track writes
//!   are detected and truncated during recovery;
//! * per-client **interval lists** are kept in volatile memory,
//!   checkpointed periodically, and rebuilt after a crash by scanning the
//!   stream tail (§4.3);
//! * per-interval **append-forest indexes** map LSNs to stream positions
//!   (kept inside [`intervals`]);
//! * `CopyLog` rewrites are staged and atomically published by an
//!   `InstallCopies` commit frame ([`store`]);
//! * a **duplexed local log** ([`duplex`]) implements the alternative the
//!   paper argues against — mirrored disks on the processing node — as the
//!   baseline for experiment E4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod duplex;
pub mod frame;
pub mod intervals;
pub mod nvram;
pub mod store;
pub mod stream;
pub mod verify;

pub use nvram::NvramDevice;
pub use store::{LogStore, ReplayState, RetentionReport, StoreOptions, StoreStats};
