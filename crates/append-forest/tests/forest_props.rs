//! Property tests: the append forest agrees with a `BTreeMap` reference
//! model and maintains its structural invariants after every append.

use std::collections::BTreeMap;

use proptest::prelude::*;

use append_forest::{AppendForest, LsnIndex};
use dlog_types::Lsn;

/// Strictly increasing keys produced from positive gaps.
fn arb_keys() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(1u64..20, 0..300).prop_map(|gaps| {
        let mut k = 0;
        gaps.into_iter()
            .map(|g| {
                k += g;
                k
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn forest_matches_btreemap(keys in arb_keys(), probes in proptest::collection::vec(0u64..6000, 0..50)) {
        let mut forest = AppendForest::new();
        let mut model = BTreeMap::new();
        for &k in &keys {
            forest.append(k, k * 3).unwrap();
            model.insert(k, k * 3);
        }
        forest.check_invariants().unwrap();
        prop_assert_eq!(forest.len(), model.len());

        for &k in &keys {
            prop_assert_eq!(forest.get(&k), model.get(&k));
        }
        for &p in &probes {
            prop_assert_eq!(forest.get(&p), model.get(&p), "probe {}", p);
            let expected_floor = model.range(..=p).next_back();
            prop_assert_eq!(forest.floor(&p), expected_floor, "floor {}", p);
        }

        // Iteration yields key order.
        let iterated: Vec<u64> = forest.iter().map(|(k, _)| *k).collect();
        let expected: Vec<u64> = model.keys().copied().collect();
        prop_assert_eq!(iterated, expected);
    }

    /// Invariants hold after *every* intermediate append, not just at the
    /// end — appends never transiently break the structure.
    #[test]
    fn invariants_hold_incrementally(n in 1usize..200) {
        let mut forest = AppendForest::new();
        for k in 1..=n as u64 {
            forest.append(k, ()).unwrap();
            forest.check_invariants().unwrap();
        }
    }

    /// Search cost stays within 2·log₂(n) + 2 pointer traversals.
    #[test]
    fn search_cost_bounded(keys in arb_keys()) {
        prop_assume!(!keys.is_empty());
        let mut forest = AppendForest::new();
        for &k in &keys {
            forest.append(k, ()).unwrap();
        }
        let bound = 2 * (64 - (keys.len() as u64).leading_zeros() as usize) + 2;
        for &k in &keys {
            let (hit, stats) = forest.get_with_stats(&k);
            prop_assert!(hit.is_some());
            prop_assert!(stats.total() <= bound, "{} traversals > bound {}", stats.total(), bound);
        }
    }

    /// The LSN index resolves every appended record and nothing else.
    #[test]
    fn lsn_index_model(start in 1u64..1000, count in 0u64..400, fanout in 1usize..40) {
        let mut idx = LsnIndex::new(fanout);
        for i in 0..count {
            idx.append(Lsn(start + i), (start + i) * 7).unwrap();
        }
        prop_assert_eq!(idx.len() as u64, count);
        for i in 0..count {
            prop_assert_eq!(idx.lookup(Lsn(start + i)), Some((start + i) * 7));
        }
        if start > 1 {
            prop_assert_eq!(idx.lookup(Lsn(start - 1)), None);
        }
        prop_assert_eq!(idx.lookup(Lsn(start + count)), None);
    }
}
