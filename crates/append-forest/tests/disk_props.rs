//! Property tests for the write-once on-disk append forest: random node
//! shapes must serve exactly the lookups of an in-memory model, before
//! and after reopening from the file trailer.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use append_forest::disk::DiskForest;
use dlog_types::Lsn;

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmpfile() -> PathBuf {
    let d = std::env::temp_dir().join("dlog-diskforest-props");
    std::fs::create_dir_all(&d).unwrap();
    d.join(format!(
        "{}-{}.afst",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn disk_matches_model(node_sizes in proptest::collection::vec(1usize..30, 1..40)) {
        let path = tmpfile();
        let mut model: Vec<(u64, u64)> = Vec::new(); // (lsn, position)
        {
            let mut f = DiskForest::create(&path).unwrap();
            let mut lsn = 1u64;
            for size in &node_sizes {
                let positions: Vec<u64> = (0..*size as u64).map(|i| (lsn + i) * 1000).collect();
                f.append_node(Lsn(lsn), &positions).unwrap();
                for (i, &p) in positions.iter().enumerate() {
                    model.push((lsn + i as u64, p));
                }
                lsn += *size as u64;
            }
            f.sync().unwrap();
            for &(l, p) in &model {
                prop_assert_eq!(f.lookup(Lsn(l)).unwrap(), Some(p), "pre-reopen {}", l);
            }
            prop_assert_eq!(f.lookup(Lsn(lsn)).unwrap(), None);
        }
        // Reopen from the trailer.
        let mut f = DiskForest::open(&path).unwrap();
        let max = model.last().map(|&(l, _)| l).unwrap();
        prop_assert_eq!(f.last_key(), Some(Lsn(max)));
        for &(l, p) in &model {
            prop_assert_eq!(f.lookup(Lsn(l)).unwrap(), Some(p), "post-reopen {}", l);
        }
        prop_assert_eq!(f.lookup(Lsn(max + 1)).unwrap(), None);
        let _ = std::fs::remove_file(&path);
    }

    /// Truncating the file anywhere either opens to a valid prefix (all
    /// served lookups correct) or errors cleanly — never panics, never
    /// wrong positions.
    #[test]
    fn truncation_safe(nodes in 1usize..20, cut_seed in any::<u64>()) {
        let path = tmpfile();
        {
            let mut f = DiskForest::create(&path).unwrap();
            for i in 0..nodes as u64 {
                f.append_node(Lsn(i * 4 + 1), &[1, 2, 3, 4]).unwrap();
            }
            f.sync().unwrap();
        }
        let len = std::fs::metadata(&path).unwrap().len();
        let cut = cut_seed % (len + 1);
        {
            let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            file.set_len(cut).unwrap();
        }
        // A clean open failure is acceptable for a torn file; a served
        // lookup must be the true position.
        if let Ok(mut f) = DiskForest::open(&path) {
            for l in 1..=(nodes as u64 * 4) {
                if let Ok(Some(p)) = f.lookup(Lsn(l)) {
                    prop_assert_eq!(p, ((l - 1) % 4) + 1);
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
