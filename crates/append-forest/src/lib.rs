//! The **append forest** of Daniels, Spector & Thompson (SIGMOD 1987,
//! §4.3): an index over an append-only key sequence with *constant-time
//! append* and *logarithmic search*, designed so that nodes are never
//! modified after they are written — making the structure suitable for
//! write-once (optical) storage.
//!
//! A complete append forest with `2^{n+1} − 1` nodes is a single binary
//! search tree satisfying two properties:
//!
//! 1. the key of the root of any subtree is greater than all its
//!    descendants' keys;
//! 2. all keys in the right subtree of any node are greater than all keys
//!    in the left subtree.
//!
//! An incomplete forest is a sequence of complete trees of non-increasing
//! height, where only the two smallest trees may share a height. Each node
//! carries a **forest pointer** linking it to the root of the next tree to
//! its left, so every node is reachable from the most recently appended
//! node (the forest root). Appending never rewrites an existing node: when
//! the two smallest trees have equal height `h`, the new node becomes a
//! root of height `h + 1` adopting them as left and right sons; otherwise
//! the new node is a leaf.
//!
//! Three views are provided:
//!
//! * [`AppendForest`] — an in-memory arena-backed forest, generic over
//!   ordered keys;
//! * [`disk::DiskForest`] — the same structure serialized to an
//!   append-only file of immutable nodes, as a log server would keep it on
//!   write-once media;
//! * [`LsnIndex`] — the paper's intended use: nodes keyed by LSN *ranges*,
//!   each holding the storage positions of every record in its range.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;
mod forest;
mod lsn_index;

pub use forest::{AppendForest, SearchStats};
pub use lsn_index::LsnIndex;
