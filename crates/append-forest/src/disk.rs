//! Write-once on-disk append forest.
//!
//! §4.3 motivates the append forest with write-once (optical) storage:
//! nodes, once written, are never modified, and all linkage is backwards
//! (to lower file offsets). [`DiskForest`] serializes each node to an
//! append-only file; node identifiers are byte offsets. A trailing length
//! word after each node lets [`DiskForest::open`] locate the most recently
//! written node (the forest root) from the end of the file and rebuild the
//! root chain, so no separate superblock is required — exactly what a log
//! server recovering its index from an intact medium would do.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use dlog_types::Lsn;

const NIL: u64 = u64::MAX;
const MAGIC: u32 = 0x4146_5354; // "AFST"

/// Header of an on-disk node (fixed-size prefix before the positions).
#[derive(Clone, Copy, Debug)]
struct NodeHeader {
    height: u8,
    /// High LSN of the node's range (the search key).
    key: u64,
    /// Smallest key in the subtree rooted here.
    min_key: u64,
    left: u64,
    right: u64,
    forest: u64,
    /// Low LSN of the node's range.
    lo: u64,
    count: u32,
}

const HEADER_BYTES: usize = 4 + 1 + 8 * 6 + 4;

impl NodeHeader {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(self.height);
        for v in [
            self.key,
            self.min_key,
            self.left,
            self.right,
            self.forest,
            self.lo,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.count.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> io::Result<NodeHeader> {
        use dlog_types::bytes::{u32_le_at, u64_le_at, u8_at};
        let short = || io::Error::new(io::ErrorKind::UnexpectedEof, "short node header");
        let magic = u32_le_at(buf, 0).ok_or_else(short)?;
        if magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad node magic"));
        }
        let height = u8_at(buf, 4).ok_or_else(short)?;
        let mut fields = [0u64; 6];
        for (i, f) in fields.iter_mut().enumerate() {
            *f = u64_le_at(buf, 5 + i * 8).ok_or_else(short)?;
        }
        let count = u32_le_at(buf, 53).ok_or_else(short)?;
        let [key, min_key, left, right, forest, lo] = fields;
        Ok(NodeHeader {
            height,
            key,
            min_key,
            left,
            right,
            forest,
            lo,
            count,
        })
    }
}

/// An append forest stored in an append-only file, mapping LSN ranges to
/// the storage positions of their records.
///
/// ```no_run
/// use append_forest::disk::DiskForest;
/// use dlog_types::Lsn;
///
/// let mut f = DiskForest::create("client-7.afst")?;
/// f.append_node(Lsn(1), &[0, 700, 1400])?; // records 1..=3
/// f.sync()?;
/// assert_eq!(f.lookup(Lsn(2))?, Some(700));
/// # std::io::Result::Ok(())
/// ```
pub struct DiskForest {
    file: File,
    /// Current file length (= offset of the next node).
    end: u64,
    /// Root chain, newest first: (offset, height, min_key, forest offset).
    roots: Vec<(u64, u8, u64, u64)>,
    /// High key of the most recent node.
    last_key: Option<u64>,
}

impl DiskForest {
    /// Create a new, empty forest file (truncating any existing file).
    ///
    /// # Errors
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<DiskForest> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(DiskForest {
            file,
            end: 0,
            roots: Vec::new(),
            last_key: None,
        })
    }

    /// Open an existing forest file and rebuild the root chain by reading
    /// the trailing length word and following forest pointers.
    ///
    /// # Errors
    /// Fails on I/O errors or a structurally corrupt file.
    pub fn open(path: impl AsRef<Path>) -> io::Result<DiskForest> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let end = file.metadata()?.len();
        let mut forest = DiskForest {
            file,
            end,
            roots: Vec::new(),
            last_key: None,
        };
        if end == 0 {
            return Ok(forest);
        }
        if end < 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "truncated forest file",
            ));
        }
        // Trailing u32 holds the full length of the last node record
        // (header + positions + trailer).
        let mut trailer = [0u8; 4];
        forest.file.seek(SeekFrom::Start(end - 4))?;
        forest.file.read_exact(&mut trailer)?;
        let node_len = u64::from(u32::from_le_bytes(trailer));
        if node_len > end {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad node trailer",
            ));
        }
        let root_off = end - node_len;
        // Rebuild the root chain.
        let mut off = root_off;
        let mut first = true;
        while off != NIL {
            let h = forest.read_header(off)?;
            forest.roots.push((off, h.height, h.min_key, h.forest));
            if first {
                forest.last_key = Some(h.key);
                first = false;
            }
            off = h.forest;
        }
        Ok(forest)
    }

    /// Number of root trees (for structural inspection).
    #[must_use]
    pub fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// High key of the most recently appended node.
    #[must_use]
    pub fn last_key(&self) -> Option<Lsn> {
        self.last_key.map(Lsn)
    }

    /// Append a node covering `lo..=lo + positions.len() − 1` whose records
    /// live at the given stream positions.
    ///
    /// # Errors
    /// Fails when the range does not extend the key space or on I/O error.
    pub fn append_node(&mut self, lo: Lsn, positions: &[u64]) -> io::Result<()> {
        if positions.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "empty node"));
        }
        let key = lo.0 + positions.len() as u64 - 1;
        if let Some(last) = self.last_key {
            if lo.0 <= last {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("node lo {lo} does not extend last key {last}"),
                ));
            }
        }
        // Shape decision mirrors the in-memory forest.
        let (height, left, right, forest_ptr, min_key) = match self.roots.first().copied() {
            None => (0u8, NIL, NIL, NIL, lo.0),
            Some((r_off, r_h, _, _)) => match self.roots.get(1).copied() {
                Some((f_off, f_h, f_min, f_forest)) if f_h == r_h => {
                    (r_h + 1, f_off, r_off, f_forest, f_min)
                }
                _ => (0, NIL, NIL, r_off, lo.0),
            },
        };

        let header = NodeHeader {
            height,
            key,
            min_key,
            left,
            right,
            forest: forest_ptr,
            lo: lo.0,
            count: positions.len() as u32,
        };
        let mut buf = Vec::with_capacity(HEADER_BYTES + positions.len() * 8 + 4);
        header.encode(&mut buf);
        for p in positions {
            buf.extend_from_slice(&p.to_le_bytes());
        }
        let total = (buf.len() + 4) as u32;
        buf.extend_from_slice(&total.to_le_bytes());

        let off = self.end;
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(&buf)?;
        self.end += u64::from(total);

        // Update the root chain.
        if height == 0 {
            self.roots.insert(0, (off, 0, min_key, forest_ptr));
        } else {
            // The new node replaces the two newest roots.
            self.roots.drain(0..2);
            self.roots.insert(0, (off, height, min_key, forest_ptr));
        }
        self.last_key = Some(key);
        Ok(())
    }

    /// Flush node data to stable storage.
    ///
    /// # Errors
    /// Propagates `fsync` failure.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Look up the storage position of the record at `lsn`.
    ///
    /// # Errors
    /// Fails only on I/O or corruption; a missing LSN is `Ok(None)`.
    pub fn lookup(&mut self, lsn: Lsn) -> io::Result<Option<u64>> {
        // Phase 1: pick the containing tree from the root chain. Indexed
        // access (the entries are Copy) instead of iteration, because
        // `read_header` needs `&mut self` mid-walk.
        let mut tree: Option<u64> = None;
        let mut i = 0;
        while let Some(&(off, _, min_key, _)) = self.roots.get(i) {
            i += 1;
            let h = self.read_header(off)?;
            if lsn.0 > h.key {
                return Ok(None); // beyond the newest tree that could hold it
            }
            if lsn.0 >= min_key {
                tree = Some(off);
                break;
            }
        }
        let Some(mut off) = tree else { return Ok(None) };
        // Phase 2: binary descent.
        loop {
            let h = self.read_header(off)?;
            if lsn.0 >= h.lo && lsn.0 <= h.key {
                let idx = lsn.0.saturating_sub(h.lo);
                return Ok(Some(self.read_position(off, idx)?));
            }
            let next = if h.right != NIL {
                let r = self.read_header(h.right)?;
                if lsn.0 >= r.min_key {
                    h.right
                } else {
                    h.left
                }
            } else {
                NIL
            };
            if next == NIL {
                return Ok(None);
            }
            off = next;
        }
    }

    fn read_header(&mut self, off: u64) -> io::Result<NodeHeader> {
        let mut buf = [0u8; HEADER_BYTES];
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(&mut buf)?;
        NodeHeader::decode(&buf)
    }

    fn read_position(&mut self, node_off: u64, idx: u64) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        self.file
            .seek(SeekFrom::Start(node_off + HEADER_BYTES as u64 + idx * 8))?;
        self.file.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }
}

impl std::fmt::Debug for DiskForest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DiskForest({} bytes, {} trees)",
            self.end,
            self.roots.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("append-forest-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.afst", std::process::id()))
    }

    #[test]
    fn roundtrip_single_node() {
        let path = tmp("single");
        let mut f = DiskForest::create(&path).unwrap();
        f.append_node(Lsn(1), &[10, 20, 30]).unwrap();
        assert_eq!(f.lookup(Lsn(1)).unwrap(), Some(10));
        assert_eq!(f.lookup(Lsn(3)).unwrap(), Some(30));
        assert_eq!(f.lookup(Lsn(4)).unwrap(), None);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn many_nodes_and_reopen() {
        let path = tmp("many");
        let fanout = 8u64;
        {
            let mut f = DiskForest::create(&path).unwrap();
            for node in 0..100u64 {
                let lo = node * fanout + 1;
                let positions: Vec<u64> = (0..fanout).map(|i| (lo + i) * 100).collect();
                f.append_node(Lsn(lo), &positions).unwrap();
            }
            f.sync().unwrap();
            for lsn in 1..=(100 * fanout) {
                assert_eq!(
                    f.lookup(Lsn(lsn)).unwrap(),
                    Some(lsn * 100),
                    "pre-reopen {lsn}"
                );
            }
        }
        // Reopen and verify the rebuilt root chain serves all lookups.
        let mut f = DiskForest::open(&path).unwrap();
        assert_eq!(f.last_key(), Some(Lsn(800)));
        for lsn in 1..=(100 * fanout) {
            assert_eq!(
                f.lookup(Lsn(lsn)).unwrap(),
                Some(lsn * 100),
                "post-reopen {lsn}"
            );
        }
        assert_eq!(f.lookup(Lsn(801)).unwrap(), None);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_non_extending_nodes() {
        let path = tmp("reject");
        let mut f = DiskForest::create(&path).unwrap();
        f.append_node(Lsn(1), &[1, 2]).unwrap();
        assert!(f.append_node(Lsn(2), &[9]).is_err());
        assert!(f.append_node(Lsn(1), &[9]).is_err());
        assert!(f.append_node(Lsn(3), &[]).is_err());
        assert!(f.append_node(Lsn(3), &[9]).is_ok());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn open_empty_file() {
        let path = tmp("empty");
        DiskForest::create(&path).unwrap();
        let mut f = DiskForest::open(&path).unwrap();
        assert_eq!(f.lookup(Lsn(1)).unwrap(), None);
        assert_eq!(f.last_key(), None);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn tree_count_stays_logarithmic() {
        let path = tmp("treecount");
        let mut f = DiskForest::create(&path).unwrap();
        for node in 0..1000u64 {
            f.append_node(Lsn(node * 4 + 1), &[0, 0, 0, 0]).unwrap();
            let bound = 64 - (node + 1).leading_zeros() as usize + 1;
            assert!(
                f.tree_count() <= bound,
                "{} trees after {}",
                f.tree_count(),
                node + 1
            );
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn detects_corrupt_trailer() {
        let path = tmp("corrupt");
        {
            let mut f = DiskForest::create(&path).unwrap();
            f.append_node(Lsn(1), &[5]).unwrap();
            f.sync().unwrap();
        }
        // Overwrite the trailer with an absurd length.
        {
            let mut file = OpenOptions::new().write(true).open(&path).unwrap();
            let len = file.metadata().unwrap().len();
            file.seek(SeekFrom::Start(len - 4)).unwrap();
            file.write_all(&u32::MAX.to_le_bytes()).unwrap();
        }
        assert!(DiskForest::open(&path).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
