//! The paper's intended use of the append forest (§4.3): indexing one
//! client's log records by LSN, where "the keys will be ranges of log
//! sequence numbers" and "each node of the append forest will contain
//! pointers to each log record in its range".

use dlog_types::Lsn;

use crate::AppendForest;

/// A page-sized batch of record pointers covering one LSN range.
#[derive(Clone, Debug, PartialEq, Eq)]
struct RangeNode {
    /// First LSN covered by the node.
    lo: Lsn,
    /// Storage position (e.g. byte offset in the log stream) of each record
    /// in `lo..=lo + positions.len() - 1`.
    positions: Vec<u64>,
}

/// An LSN → storage-position index built on an [`AppendForest`] keyed by
/// the *high* LSN of each range node.
///
/// Records are added in strictly increasing LSN order (the order the log
/// stream is written); every `fanout` records the open node is sealed and
/// appended to the forest. Lookups find the sealed or open node covering an
/// LSN with `O(log n)` traversals and then index directly into it.
#[derive(Clone, Debug)]
pub struct LsnIndex {
    forest: AppendForest<u64, RangeNode>,
    /// Records accumulating toward the next sealed node.
    open: Option<RangeNode>,
    /// Records per sealed node ("each page sized node of the tree can index
    /// one thousand or more records").
    fanout: usize,
    next_lsn: Option<Lsn>,
}

impl LsnIndex {
    /// An empty index sealing nodes of `fanout` records.
    ///
    /// # Panics
    /// Panics if `fanout` is zero.
    #[must_use]
    pub fn new(fanout: usize) -> Self {
        assert!(fanout > 0, "fanout must be positive");
        LsnIndex {
            forest: AppendForest::new(),
            open: None,
            fanout,
            next_lsn: None,
        }
    }

    /// Number of records indexed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.forest
            .iter()
            .map(|(_, n)| n.positions.len())
            .sum::<usize>()
            + self.open.as_ref().map_or(0, |n| n.positions.len())
    }

    /// True when no record has been indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record that the record at `lsn` lives at `position` in the stream.
    ///
    /// # Errors
    /// Returns `Err(lsn)` when `lsn` is not the successor of the last
    /// indexed LSN (the index covers one gap-free sequence; gaps start a
    /// new index in the storage layer).
    pub fn append(&mut self, lsn: Lsn, position: u64) -> Result<(), Lsn> {
        if let Some(expected) = self.next_lsn {
            if lsn != expected {
                return Err(lsn);
            }
        }
        let node = self.open.get_or_insert_with(|| RangeNode {
            lo: lsn,
            positions: Vec::new(),
        });
        node.positions.push(position);
        self.next_lsn = Some(lsn.next());
        if node.positions.len() >= self.fanout {
            let sealed = self.open.take().expect("open node exists");
            let hi = sealed.lo.0 + sealed.positions.len() as u64 - 1;
            self.forest
                .append(hi, sealed)
                .expect("high LSNs are strictly increasing");
        }
        Ok(())
    }

    /// Look up the storage position of the record at `lsn`.
    #[must_use]
    pub fn lookup(&self, lsn: Lsn) -> Option<u64> {
        if let Some(open) = &self.open {
            if lsn >= open.lo {
                let idx = lsn.0.saturating_sub(open.lo.0) as usize;
                return open.positions.get(idx).copied();
            }
        }
        // The sealed node covering `lsn` is the one with the smallest high
        // key ≥ lsn; since nodes tile the LSN space, it is also the
        // predecessor-or-self of `lsn + fanout`, but a direct walk is
        // simpler: find the first node whose high key ≥ lsn.
        let (hi, node) = self.forest_node_covering(lsn)?;
        if lsn.0 > *hi || lsn < node.lo {
            return None;
        }
        node.positions
            .get(lsn.0.saturating_sub(node.lo.0) as usize)
            .copied()
    }

    /// First and last LSN currently indexed.
    #[must_use]
    pub fn bounds(&self) -> Option<(Lsn, Lsn)> {
        let last = self.next_lsn?.prev()?;
        let first = self
            .forest
            .iter()
            .next()
            .map(|(_, n)| n.lo)
            .or_else(|| self.open.as_ref().map(|n| n.lo))?;
        Some((first, last))
    }

    /// All indexed positions in LSN order, streamed without allocating
    /// (used for checkpoint encoding).
    pub fn positions_iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.forest
            .iter()
            .flat_map(|(_, n)| n.positions.iter().copied())
            .chain(self.open.iter().flat_map(|n| n.positions.iter().copied()))
    }

    /// Collect every indexed position into `out` (cleared first); callers
    /// that need a contiguous slice reuse one scratch vector.
    pub fn positions_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.positions_iter());
    }

    /// Rebuild an index from its first LSN and the positions of each
    /// consecutive record (checkpoint decoding).
    ///
    /// # Panics
    /// Panics if `fanout` is zero.
    #[must_use]
    pub fn from_parts(fanout: usize, lo: Lsn, positions: &[u64]) -> Self {
        let mut idx = LsnIndex::new(fanout);
        for (i, &p) in positions.iter().enumerate() {
            idx.append(Lsn(lo.0.saturating_add(i as u64)), p)
                .expect("consecutive LSNs");
        }
        idx
    }

    fn forest_node_covering(&self, lsn: Lsn) -> Option<(&u64, &RangeNode)> {
        // All sealed nodes have hi = lo + fanout - 1 and tile the space, so
        // the covering node has hi in [lsn, lsn + fanout - 1]: use floor on
        // lsn + fanout - 1 (capped to avoid overflow).
        let probe = lsn.0.saturating_add(self.fanout as u64 - 1);
        let (hi, node) = self.forest.floor(&probe)?;
        (*hi >= lsn.0).then_some((hi, node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_lookup() {
        let mut idx = LsnIndex::new(8);
        for i in 1..=100u64 {
            idx.append(Lsn(i), i * 1000).unwrap();
        }
        assert_eq!(idx.len(), 100);
        for i in 1..=100u64 {
            assert_eq!(idx.lookup(Lsn(i)), Some(i * 1000), "lsn {i}");
        }
        assert_eq!(idx.lookup(Lsn(0)), None);
        assert_eq!(idx.lookup(Lsn(101)), None);
        assert_eq!(idx.bounds(), Some((Lsn(1), Lsn(100))));
    }

    #[test]
    fn starts_anywhere() {
        let mut idx = LsnIndex::new(4);
        for i in 50..=60u64 {
            idx.append(Lsn(i), i).unwrap();
        }
        assert_eq!(idx.lookup(Lsn(49)), None);
        assert_eq!(idx.lookup(Lsn(50)), Some(50));
        assert_eq!(idx.lookup(Lsn(60)), Some(60));
        assert_eq!(idx.bounds(), Some((Lsn(50), Lsn(60))));
    }

    #[test]
    fn rejects_gaps() {
        let mut idx = LsnIndex::new(4);
        idx.append(Lsn(1), 0).unwrap();
        assert_eq!(idx.append(Lsn(3), 0), Err(Lsn(3)));
        assert_eq!(idx.append(Lsn(1), 0), Err(Lsn(1)));
        idx.append(Lsn(2), 0).unwrap();
    }

    #[test]
    fn fanout_one() {
        let mut idx = LsnIndex::new(1);
        for i in 1..=20u64 {
            idx.append(Lsn(i), i + 7).unwrap();
        }
        for i in 1..=20u64 {
            assert_eq!(idx.lookup(Lsn(i)), Some(i + 7));
        }
    }

    #[test]
    fn empty_index() {
        let idx = LsnIndex::new(16);
        assert!(idx.is_empty());
        assert_eq!(idx.lookup(Lsn(1)), None);
        assert_eq!(idx.bounds(), None);
    }
}
