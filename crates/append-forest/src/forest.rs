//! In-memory arena-backed append forest.

use std::fmt;

/// Index of a node within the arena.
type NodeId = u32;

const NIL: NodeId = u32::MAX;

#[derive(Clone, Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    /// Smallest key in the subtree rooted at this node (the key of its
    /// oldest descendant). Lets searches decide tree membership and
    /// left/right descent without extra traversals.
    min_key: K,
    /// Height of the complete subtree rooted here (leaf = 0).
    height: u8,
    left: NodeId,
    right: NodeId,
    /// Forest pointer: root of the next tree to the left at the time this
    /// node was appended (§4.3, Figure 4-2).
    forest: NodeId,
}

/// Statistics from a single search, used by the E7 benchmark to verify the
/// `O(log n)` pointer-traversal bound of §4.3.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Forest pointers followed before the containing tree was found.
    pub forest_hops: usize,
    /// Tree edges followed during the binary search.
    pub tree_hops: usize,
}

impl SearchStats {
    /// Total pointer traversals.
    #[must_use]
    pub fn total(&self) -> usize {
        self.forest_hops + self.tree_hops
    }
}

/// An in-memory append forest over strictly increasing keys.
///
/// `append` is `O(1)` and never mutates an existing node's pointers;
/// `get` performs `O(log n)` pointer traversals.
///
/// ```
/// use append_forest::AppendForest;
///
/// let mut f = AppendForest::new();
/// for k in 1u64..=100 {
///     f.append(k, k * 10).unwrap();
/// }
/// assert_eq!(f.get(&37), Some(&370));
/// assert_eq!(f.get(&101), None);
/// ```
#[derive(Clone)]
pub struct AppendForest<K, V> {
    arena: Vec<Node<K, V>>,
    /// Most recently appended node: the forest root.
    root: NodeId,
}

impl<K, V> Default for AppendForest<K, V> {
    fn default() -> Self {
        AppendForest {
            arena: Vec::new(),
            root: NIL,
        }
    }
}

impl<K: Ord + Copy, V> AppendForest<K, V> {
    /// An empty forest.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty forest with capacity for `n` appends.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        AppendForest {
            arena: Vec::with_capacity(n),
            root: NIL,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// True when no node has been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// The largest (most recently appended) key.
    #[must_use]
    pub fn last_key(&self) -> Option<K> {
        self.node(self.root).map(|n| n.key)
    }

    /// Append `(key, value)`. Keys must be strictly increasing.
    ///
    /// # Errors
    /// Returns `Err(key)` without modifying the forest when `key` is not
    /// greater than the last appended key.
    pub fn append(&mut self, key: K, value: V) -> Result<(), K> {
        if let Some(last) = self.last_key() {
            if key <= last {
                return Err(key);
            }
        }
        let id = self.arena.len() as NodeId;
        // Decide the shape: if the two rightmost trees have equal height,
        // the new node adopts them as sons and rises one level; otherwise
        // it is a leaf whose forest pointer names the previous root.
        let (height, left, right, forest, min_key) = match self.node(self.root) {
            None => (0, NIL, NIL, NIL, key),
            Some(r) => match self.node(r.forest) {
                Some(f) if f.height == r.height => {
                    // Merge: left son is the older tree, right son the
                    // newer; forest pointer skips past both.
                    (r.height + 1, r.forest, self.root, f.forest, f.min_key)
                }
                _ => (0, NIL, NIL, self.root, key),
            },
        };
        self.arena.push(Node {
            key,
            value,
            min_key,
            height,
            left,
            right,
            forest,
        });
        self.root = id;
        Ok(())
    }

    /// Look up `key`, counting pointer traversals.
    #[must_use]
    pub fn get_with_stats(&self, key: &K) -> (Option<&V>, SearchStats) {
        let mut stats = SearchStats::default();
        // Phase 1: walk the forest-pointer chain from the root until a tree
        // whose key range contains `key` is found.
        let mut cur = self.root;
        let tree = loop {
            let Some(n) = self.node(cur) else {
                return (None, stats);
            };
            if *key > n.key {
                // Keys right of this tree do not exist (appends are
                // increasing), so the search fails.
                return (None, stats);
            }
            if *key >= n.min_key {
                break cur;
            }
            cur = n.forest;
            stats.forest_hops += 1;
        };
        // Phase 2: binary-search within the complete tree.
        let mut cur = tree;
        loop {
            let Some(n) = self.node(cur) else {
                return (None, stats);
            };
            if *key == n.key {
                return (Some(&n.value), stats);
            }
            // Root key is the largest in the subtree, so a key smaller than
            // the root lives in one of the sons. The right son's min_key
            // splits them.
            let next = match self.node(n.right) {
                Some(r) if *key >= r.min_key => n.right,
                _ => n.left,
            };
            if next == NIL {
                return (None, stats);
            }
            cur = next;
            stats.tree_hops += 1;
        }
    }

    /// Look up `key`.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.get_with_stats(key).0
    }

    /// The greatest key–value pair with key ≤ `key` (predecessor search);
    /// used to locate the LSN-range node covering a record.
    #[must_use]
    pub fn floor(&self, key: &K) -> Option<(&K, &V)> {
        // Find the newest tree whose min_key ≤ key, then descend taking the
        // rightmost branch whose subtree minimum does not exceed `key`.
        let mut cur = self.root;
        loop {
            let n = self.node(cur)?;
            if *key >= n.min_key {
                break;
            }
            cur = n.forest;
        }
        let mut best: Option<NodeId> = None;
        let mut cur_id = cur;
        loop {
            let n = self.node(cur_id)?;
            if n.key <= *key {
                // Root has the largest key in its subtree: done.
                best = Some(cur_id);
                break;
            }
            match self.node(n.right) {
                Some(r) if *key >= r.min_key => cur_id = n.right,
                _ => {
                    if n.left == NIL {
                        break;
                    }
                    cur_id = n.left;
                }
            }
        }
        best.and_then(|id| self.node(id))
            .map(|n| (&n.key, &n.value))
    }

    /// Iterate all `(key, value)` pairs in increasing key order.
    ///
    /// Appends assign arena indices in key order, so this is a simple scan.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.arena.iter().map(|n| (&n.key, &n.value))
    }

    /// Heights of the current tree roots, newest (rightmost) first.
    /// Exposed for structural tests: an `n`-node forest has at most
    /// `⌊log₂ n⌋ + 1` trees and only the two newest may share a height.
    #[must_use]
    pub fn root_heights(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut cur = self.root;
        while let Some(n) = self.node(cur) {
            out.push(n.height);
            cur = n.forest;
        }
        out
    }

    /// Validate all structural invariants; used by property tests.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Forest shape: heights strictly decreasing except that the first
        // two (newest) may be equal.
        let hs = self.root_heights();
        for (i, w) in hs.windows(2).enumerate() {
            if let &[a, b] = w {
                let ok = if i == 0 { a <= b } else { a < b };
                if !ok {
                    return Err(format!("root heights not canonical: {hs:?}"));
                }
            }
        }
        if !self.is_empty() {
            let max_trees = (usize::BITS - self.len().leading_zeros()) as usize + 1;
            if hs.len() > max_trees {
                return Err(format!("{} trees exceeds log bound {max_trees}", hs.len()));
            }
        }
        // Per-tree BST properties.
        let mut cur = self.root;
        while let Some(n) = self.node(cur) {
            self.check_subtree(cur)?;
            cur = n.forest;
        }
        Ok(())
    }

    fn check_subtree(&self, id: NodeId) -> Result<(), String> {
        let n = self.node(id).ok_or("dangling node id")?;
        if n.height == 0 {
            if n.left != NIL || n.right != NIL {
                return Err("leaf with children".into());
            }
            if n.min_key != n.key {
                return Err("leaf min_key != key".into());
            }
            return Ok(());
        }
        let (l, r) = (n.left, n.right);
        if l == NIL || r == NIL {
            return Err("internal node missing a son".into());
        }
        let (ln, rn) = match (self.node(l), self.node(r)) {
            (Some(ln), Some(rn)) => (ln, rn),
            _ => return Err("dangling son id".into()),
        };
        if ln.height != n.height - 1 || rn.height != n.height - 1 {
            return Err("sons are not one level shorter".into());
        }
        // Property 1: root key greater than all descendants' keys.
        if n.key <= rn.key || n.key <= ln.key {
            return Err("root key not greater than sons".into());
        }
        // Property 2: right subtree keys all greater than left subtree keys.
        if rn.min_key <= ln.key {
            return Err("right subtree does not exceed left subtree".into());
        }
        if n.min_key != ln.min_key {
            return Err("min_key not inherited from left son".into());
        }
        self.check_subtree(l)?;
        self.check_subtree(r)
    }

    fn node(&self, id: NodeId) -> Option<&Node<K, V>> {
        if id == NIL {
            None
        } else {
            self.arena.get(id as usize)
        }
    }
}

impl<K: fmt::Debug, V> fmt::Debug for AppendForest<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AppendForest({} nodes)", self.arena.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forest_of(n: u64) -> AppendForest<u64, u64> {
        let mut f = AppendForest::new();
        for k in 1..=n {
            f.append(k, k).unwrap();
        }
        f
    }

    #[test]
    fn empty_forest() {
        let f: AppendForest<u64, ()> = AppendForest::new();
        assert!(f.is_empty());
        assert_eq!(f.get(&1), None);
        assert_eq!(f.last_key(), None);
        assert!(f.root_heights().is_empty());
        f.check_invariants().unwrap();
    }

    #[test]
    fn rejects_non_increasing_keys() {
        let mut f = forest_of(5);
        assert_eq!(f.append(5, 0), Err(5));
        assert_eq!(f.append(4, 0), Err(4));
        assert!(f.append(6, 6).is_ok());
    }

    /// The paper's Figure 4-3: an eleven-node forest has trees rooted at
    /// keys 7 (height 2), 10 (height 1), 11 (height 0), and the appends of
    /// 12, 13, 14 reshape it exactly as the text describes.
    #[test]
    fn figure_4_3_shapes() {
        let mut f = forest_of(11);
        assert_eq!(f.root_heights(), vec![0, 1, 2]); // 11, 10, 7

        // "A new root with key 12 would be appended with a forest pointer
        // linking it to the node with key 11."
        f.append(12, 12).unwrap();
        assert_eq!(f.root_heights(), vec![0, 0, 1, 2]); // 12, 11, 10, 7

        // "An additional node with key 13 would have height 1, the nodes
        // with keys 11 and 12 as its left and right sons, and a forest
        // pointer linking it to the tree rooted at the node with key 10."
        f.append(13, 13).unwrap();
        assert_eq!(f.root_heights(), vec![1, 1, 2]); // 13, 10, 7

        // "Another node with key 14 could then be added with the nodes with
        // keys 10 and 13 as sons, and a forest pointer pointing to the node
        // with key 7."
        f.append(14, 14).unwrap();
        assert_eq!(f.root_heights(), vec![2, 2]); // 14, 7

        // One more makes the forest complete: a single 15-node tree.
        f.append(15, 15).unwrap();
        assert_eq!(f.root_heights(), vec![3]);
        f.check_invariants().unwrap();
    }

    #[test]
    fn complete_forest_sizes() {
        // 2^{n+1} - 1 nodes form a single complete tree.
        for n in 0..=6u32 {
            let size = (1u64 << (n + 1)) - 1;
            let f = forest_of(size);
            assert_eq!(f.root_heights(), vec![n as u8], "size {size}");
            f.check_invariants().unwrap();
        }
    }

    #[test]
    fn all_keys_reachable() {
        for n in [1u64, 2, 3, 7, 10, 11, 20, 64, 100, 255, 256, 1000] {
            let f = forest_of(n);
            f.check_invariants().unwrap();
            for k in 1..=n {
                assert_eq!(f.get(&k), Some(&k), "key {k} in forest of {n}");
            }
            assert_eq!(f.get(&0), None);
            assert_eq!(f.get(&(n + 1)), None);
        }
    }

    #[test]
    fn sparse_keys() {
        let mut f = AppendForest::new();
        let keys: Vec<u64> = (0..50).map(|i| i * i + 1).collect();
        for &k in &keys {
            f.append(k, k * 2).unwrap();
        }
        f.check_invariants().unwrap();
        for &k in &keys {
            assert_eq!(f.get(&k), Some(&(k * 2)));
        }
        assert_eq!(f.get(&3), None); // between 2 and 5
    }

    #[test]
    fn floor_semantics() {
        let mut f = AppendForest::new();
        for k in [10u64, 20, 30, 40, 50] {
            f.append(k, k).unwrap();
        }
        assert_eq!(f.floor(&9), None);
        assert_eq!(f.floor(&10), Some((&10, &10)));
        assert_eq!(f.floor(&29), Some((&20, &20)));
        assert_eq!(f.floor(&30), Some((&30, &30)));
        assert_eq!(f.floor(&1000), Some((&50, &50)));
    }

    #[test]
    fn iteration_in_key_order() {
        let f = forest_of(100);
        let keys: Vec<u64> = f.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn search_cost_is_logarithmic() {
        let f = forest_of(1 << 16);
        let mut worst = 0;
        for k in (1..=(1u64 << 16)).step_by(997) {
            let (v, stats) = f.get_with_stats(&k);
            assert!(v.is_some());
            worst = worst.max(stats.total());
        }
        // log2(65536) = 16; forest hops + tree hops stay within ~2 log n.
        assert!(worst <= 34, "worst-case traversals {worst} exceed 2 log n");
    }

    #[test]
    fn tree_count_bound() {
        // "An append forest with n nodes contains at most ⌈log2(n)⌉ trees"
        // (plus the stated slack of one for the duplicate smallest height).
        for n in [2u64, 3, 15, 16, 100, 1000, 4095, 4096] {
            let f = forest_of(n);
            let bound = 64 - (n.leading_zeros() as usize).min(63) + 1;
            assert!(
                f.root_heights().len() <= bound,
                "{} trees for n={n}",
                f.root_heights().len()
            );
        }
    }
}
