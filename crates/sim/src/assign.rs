//! Load-assignment simulation (§5.4, experiment E10).
//!
//! "If the only technique for detecting overloaded servers is for a
//! client to recognize degraded performance with a short timeout, then
//! clients might change servers too frequently resulting in very long
//! interval lists. If servers shed load by ignoring clients, then clients
//! of failed servers might try one server after another without success."
//!
//! The simulation puts C clients (each writing to N targets) over M
//! servers with a per-server capacity. Overloaded servers shed their
//! highest-numbered surplus clients each tick; a client switches a target
//! after `patience` consecutive shed ticks. Occasional server failures
//! force mass migrations. Measured: switch counts, interval-list lengths
//! (one new interval per switch), and load imbalance — per strategy and
//! patience setting.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dlog_core::assign::AssignStrategy;
use dlog_types::{ClientId, ServerId};

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct AssignSimParams {
    /// Client count.
    pub clients: u64,
    /// Server count M.
    pub servers: u64,
    /// Targets per client N.
    pub n: usize,
    /// Clients a server can carry before shedding.
    pub capacity: u64,
    /// Consecutive shed ticks a client tolerates before switching.
    pub patience: u32,
    /// Simulation ticks.
    pub ticks: u64,
    /// Probability a server fails on a given tick (down for
    /// `repair_ticks`).
    pub fail_prob: f64,
    /// Ticks a failed server stays down.
    pub repair_ticks: u64,
    /// RNG seed.
    pub seed: u64,
}

impl AssignSimParams {
    /// A moderately overloaded cluster: 50 clients × 2 targets over 6
    /// servers of capacity 20 (the §4.1 configuration, pressed).
    #[must_use]
    pub fn paper_cluster() -> Self {
        AssignSimParams {
            clients: 50,
            servers: 6,
            n: 2,
            capacity: 20,
            patience: 3,
            ticks: 2_000,
            fail_prob: 0.001,
            repair_ticks: 50,
            seed: 11,
        }
    }
}

/// Simulation outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AssignSimReport {
    /// Total target switches across all clients.
    pub switches: u64,
    /// Mean interval-list length per (server, client) pair that ever held
    /// data — each switch opens a new interval on the destination.
    pub mean_interval_list_len: f64,
    /// Longest interval list any server accumulated for one client.
    pub max_interval_list_len: u64,
    /// Mean over ticks of (max server load / mean server load).
    pub imbalance: f64,
    /// Fraction of client-ticks spent being shed (a response-time proxy).
    pub shed_fraction: f64,
}

/// Run the simulation for one strategy.
#[must_use]
pub fn run(params: &AssignSimParams, strategy: &AssignStrategy) -> AssignSimReport {
    let servers: Vec<ServerId> = (1..=params.servers).map(ServerId).collect();
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Per client: current targets and consecutive-shed counters.
    let mut targets: Vec<Vec<ServerId>> = (0..params.clients)
        .map(|c| strategy.initial(ClientId(c), &servers, params.n))
        .collect();
    let mut shed_streak: Vec<Vec<u32>> = vec![vec![0; params.n]; params.clients as usize];
    // Interval lists: (server, client) -> interval count.
    let mut intervals: HashMap<(ServerId, ClientId), u64> = HashMap::new();
    for (c, ts) in targets.iter().enumerate() {
        for &t in ts {
            intervals.insert((t, ClientId(c as u64)), 1);
        }
    }
    let mut down_until: HashMap<ServerId, u64> = HashMap::new();
    let mut switches = 0u64;
    let mut shed_events = 0u64;
    let mut imbalance_acc = 0.0f64;

    for tick in 0..params.ticks {
        // Failures.
        for &s in &servers {
            if !down_until.contains_key(&s) && rng.gen_bool(params.fail_prob) {
                down_until.insert(s, tick + params.repair_ticks);
            }
        }
        down_until.retain(|_, until| *until > tick);

        // Loads.
        let mut load: HashMap<ServerId, u64> = HashMap::new();
        for ts in &targets {
            for &t in ts {
                *load.entry(t).or_insert(0) += 1;
            }
        }
        let loads: Vec<u64> = servers
            .iter()
            .map(|s| load.get(s).copied().unwrap_or(0))
            .collect();
        let live: Vec<u64> = servers
            .iter()
            .zip(&loads)
            .filter(|(s, _)| !down_until.contains_key(s))
            .map(|(_, &l)| l)
            .collect();
        if !live.is_empty() {
            let max = *live.iter().max().expect("nonempty") as f64;
            let mean = live.iter().sum::<u64>() as f64 / live.len() as f64;
            if mean > 0.0 {
                imbalance_acc += max / mean;
            } else {
                imbalance_acc += 1.0;
            }
        }

        // Shedding: a server over capacity sheds its surplus clients —
        // deterministically, the highest-numbered ones using it.
        let mut shed_now: HashMap<ServerId, u64> = HashMap::new();
        for (i, &s) in servers.iter().enumerate() {
            if loads[i] > params.capacity {
                shed_now.insert(s, loads[i] - params.capacity);
            }
        }
        for c in (0..params.clients as usize).rev() {
            for slot in 0..params.n {
                let t = targets[c][slot];
                let dead = down_until.contains_key(&t);
                let shed = if dead {
                    true
                } else if let Some(remaining) = shed_now.get_mut(&t) {
                    if *remaining > 0 {
                        *remaining -= 1;
                        true
                    } else {
                        false
                    }
                } else {
                    false
                };
                if shed {
                    shed_events += 1;
                    shed_streak[c][slot] += 1;
                    if shed_streak[c][slot] >= params.patience {
                        // Switch this slot.
                        let current = targets[c].clone();
                        if let Some(repl) =
                            strategy.replacement(ClientId(c as u64), &servers, &current, t)
                        {
                            targets[c][slot] = repl;
                            switches += 1;
                            *intervals.entry((repl, ClientId(c as u64))).or_insert(0) += 1;
                        }
                        shed_streak[c][slot] = 0;
                    }
                } else {
                    shed_streak[c][slot] = 0;
                }
            }
        }
    }

    let list_lens: Vec<u64> = intervals.values().copied().collect();
    let mean_len = if list_lens.is_empty() {
        0.0
    } else {
        list_lens.iter().sum::<u64>() as f64 / list_lens.len() as f64
    };
    AssignSimReport {
        switches,
        mean_interval_list_len: mean_len,
        max_interval_list_len: list_lens.iter().copied().max().unwrap_or(0),
        imbalance: imbalance_acc / params.ticks as f64,
        shed_fraction: shed_events as f64
            / (params.ticks * params.clients * params.n as u64) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_beats_fixed_hotspot() {
        let params = AssignSimParams::paper_cluster();
        let fixed = run(&params, &AssignStrategy::Fixed);
        let striped = run(&params, &AssignStrategy::Striped);
        // Fixed piles every client on servers 1..N: massive shedding and
        // imbalance. Striping spreads the load.
        assert!(
            striped.shed_fraction < fixed.shed_fraction,
            "striped {} !< fixed {}",
            striped.shed_fraction,
            fixed.shed_fraction
        );
        assert!(striped.imbalance <= fixed.imbalance + 1e-9);
    }

    #[test]
    fn short_patience_grows_interval_lists() {
        // The §5.4 warning: switching on a hair trigger lengthens
        // interval lists.
        let mut eager = AssignSimParams::paper_cluster();
        eager.patience = 1;
        eager.capacity = 15; // keep the system under visible pressure
        let mut patient = eager.clone();
        patient.patience = 8;
        let e = run(&eager, &AssignStrategy::Striped);
        let p = run(&patient, &AssignStrategy::Striped);
        assert!(
            e.switches > p.switches,
            "eager switches {} !> patient {}",
            e.switches,
            p.switches
        );
        assert!(e.mean_interval_list_len >= p.mean_interval_list_len);
    }

    #[test]
    fn deterministic_per_seed() {
        let params = AssignSimParams::paper_cluster();
        let a = run(&params, &AssignStrategy::Random { seed: 3 });
        let b = run(&params, &AssignStrategy::Random { seed: 3 });
        assert_eq!(a, b);
    }

    #[test]
    fn no_overload_no_switches() {
        let mut params = AssignSimParams::paper_cluster();
        params.capacity = 1000;
        params.fail_prob = 0.0;
        let r = run(&params, &AssignStrategy::Striped);
        assert_eq!(r.switches, 0);
        assert_eq!(r.shed_fraction, 0.0);
        assert!((r.mean_interval_list_len - 1.0).abs() < 1e-9);
    }
}
