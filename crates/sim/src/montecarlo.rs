//! Monte-Carlo availability measurement (cross-check of Figure 3-4 and
//! Appendix I).
//!
//! M servers follow independent failure–repair processes tuned to the
//! target unavailability p; availability of each operation is the
//! fraction of (sampled) time its server requirement holds:
//!
//! * `WriteLog`: at most M − N servers down;
//! * client initialization: at most N − 1 down (M − N + 1 up);
//! * `ReadLog` of a record: at least 1 of its N holders up;
//! * generator `NewID`: a majority of the R representatives up.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::process::UpDownTimeline;

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct MonteCarloParams {
    /// Server count M.
    pub m: usize,
    /// Copies per record N.
    pub n: usize,
    /// Target per-server unavailability p (sets MTTR = p·period,
    /// MTTF = (1−p)·period).
    pub p: f64,
    /// Mean failure+repair cycle length (arbitrary time units).
    pub cycle: f64,
    /// Simulated horizon.
    pub horizon: f64,
    /// Sample instants.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MonteCarloParams {
    /// Defaults matching the paper's p = 0.05 with a reasonable horizon.
    #[must_use]
    pub fn new(m: usize, n: usize) -> Self {
        MonteCarloParams {
            m,
            n,
            p: 0.05,
            cycle: 100.0,
            horizon: 500_000.0,
            samples: 200_000,
            seed: 42,
        }
    }

    /// Run the simulation.
    #[must_use]
    pub fn run(&self) -> AvailabilityEstimate {
        assert!(self.n >= 1 && self.n <= self.m);
        let mttr = self.p * self.cycle;
        let mttf = (1.0 - self.p) * self.cycle;
        let timelines: Vec<UpDownTimeline> = (0..self.m)
            .map(|i| {
                UpDownTimeline::generate(
                    self.seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
                    mttf,
                    mttr,
                    self.horizon,
                )
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xABCD);
        let mut write_ok = 0usize;
        let mut init_ok = 0usize;
        let mut read_ok = 0usize;
        let mut gen_ok = 0usize;
        for _ in 0..self.samples {
            let t = rng.gen_range(0.0..self.horizon);
            let up = timelines.iter().filter(|tl| tl.up_at(t)).count();
            if up >= self.n {
                write_ok += 1; // at most M−N down
            }
            if up > self.m - self.n {
                init_ok += 1;
            }
            // Read: a record stored on the first N servers (by symmetry
            // any fixed set behaves identically).
            if timelines[..self.n].iter().any(|tl| tl.up_at(t)) {
                read_ok += 1;
            }
            // Generator: representatives on all M servers, majority up.
            if up * 2 > self.m {
                gen_ok += 1;
            }
        }
        let f = |k: usize| k as f64 / self.samples as f64;
        AvailabilityEstimate {
            write: f(write_ok),
            init: f(init_ok),
            read: f(read_ok),
            generator: f(gen_ok),
            measured_p: timelines
                .iter()
                .map(UpDownTimeline::downtime_fraction)
                .sum::<f64>()
                / self.m as f64,
        }
    }
}

/// Measured availabilities.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AvailabilityEstimate {
    /// `WriteLog` availability.
    pub write: f64,
    /// Client-initialization availability.
    pub init: f64,
    /// `ReadLog` availability for an N-replicated record.
    pub read: f64,
    /// Generator `NewID` availability (representatives on all M servers).
    pub generator: f64,
    /// The per-server unavailability the processes actually realized.
    pub measured_p: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlog_analysis::availability as formulas;

    /// The Monte-Carlo estimates must track the §3.2 closed forms. The
    /// realized p drifts from the target, so compare against formulas
    /// evaluated at the *measured* p.
    #[test]
    fn matches_closed_forms() {
        for (m, n) in [(3usize, 2usize), (5, 2), (5, 3)] {
            let mut params = MonteCarloParams::new(m, n);
            params.samples = 60_000;
            params.horizon = 200_000.0;
            let est = params.run();
            let p = est.measured_p;
            let aw = formulas::write_availability(m as u64, n as u64, p);
            let ai = formulas::init_availability(m as u64, n as u64, p);
            let ar = formulas::read_availability(n as u64, p);
            assert!(
                (est.write - aw).abs() < 0.01,
                "write M={m} N={n}: {} vs {aw}",
                est.write
            );
            assert!(
                (est.init - ai).abs() < 0.01,
                "init M={m} N={n}: {} vs {ai}",
                est.init
            );
            assert!(
                (est.read - ar).abs() < 0.01,
                "read M={m} N={n}: {} vs {ar}",
                est.read
            );
        }
    }

    #[test]
    fn generator_tracks_majority_formula() {
        let mut params = MonteCarloParams::new(5, 2);
        params.samples = 60_000;
        params.horizon = 200_000.0;
        let est = params.run();
        let expected = formulas::generator_availability(5, est.measured_p);
        assert!(
            (est.generator - expected).abs() < 0.01,
            "generator: {} vs {expected}",
            est.generator
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = MonteCarloParams {
            samples: 5_000,
            horizon: 50_000.0,
            ..MonteCarloParams::new(4, 2)
        }
        .run();
        let b = MonteCarloParams {
            samples: 5_000,
            horizon: 50_000.0,
            ..MonteCarloParams::new(4, 2)
        }
        .run();
        assert_eq!(a, b);
    }
}
