//! Monte-Carlo and discrete simulations cross-checking the paper's
//! analytic claims.
//!
//! * [`process`] — continuous-time up/down failure–repair processes for
//!   log servers (exponential MTTF/MTTR);
//! * [`montecarlo`] — measured availabilities of `WriteLog`, client
//!   initialization, `ReadLog`, and the Appendix I generator, to be
//!   compared against the §3.2 formulas (experiments E1, E2, E5);
//! * [`initwait`] — the §3.2 closing observation: "M − N + 1 log servers
//!   do not have to be simultaneously available to initialize a client
//!   process. The client process can poll until it receives responses
//!   from enough servers" — the expected *time to complete*
//!   initialization, which needs "a more complicated model that includes
//!   the expected rates of log server failures and the expected times for
//!   repair";
//! * [`assign`] — the §5.4 load-assignment experiment (E10): switch
//!   rates, interval-list growth, and load balance for candidate
//!   strategies under overload and failures;
//! * [`queue`] — a discrete-event single-server queue cross-validating
//!   the M/D/1 / M/M/1 response-time models of E14.
//!
//! Everything is seeded and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod initwait;
pub mod montecarlo;
pub mod process;
pub mod queue;

pub use montecarlo::{AvailabilityEstimate, MonteCarloParams};
