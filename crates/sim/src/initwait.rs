//! Expected time for client initialization to *complete* (§3.2, closing
//! paragraph).
//!
//! Instantaneous availability understates initialization success: the
//! client "can poll until it receives responses from enough servers to
//! find the sites that store its log records". Initialization completes
//! once M − N + 1 *distinct* servers have each been up at some instant
//! after the client started polling — they need not be up simultaneously.
//! The completion time from a random start is therefore the
//! (M − N + 1)-th order statistic of the per-server "first up time".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::process::UpDownTimeline;

/// Parameters for the polling-initialization experiment.
#[derive(Clone, Debug)]
pub struct InitWaitParams {
    /// Server count M.
    pub m: usize,
    /// Copies per record N (quorum = M − N + 1).
    pub n: usize,
    /// Per-server unavailability p.
    pub p: f64,
    /// Mean failure+repair cycle length.
    pub cycle: f64,
    /// Simulated horizon.
    pub horizon: f64,
    /// Random client start instants sampled.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Results of the polling experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InitWaitReport {
    /// Fraction of trials where the quorum was up *simultaneously* at the
    /// start instant (the §3.2 instantaneous availability).
    pub instant_availability: f64,
    /// Fraction of trials where polling completed within the horizon.
    pub eventual_success: f64,
    /// Mean waiting time over successful trials (0 when instantly
    /// available).
    pub mean_wait: f64,
    /// 99th-percentile waiting time.
    pub p99_wait: f64,
}

impl InitWaitParams {
    /// Defaults for an (M, N) configuration at p = 0.05.
    #[must_use]
    pub fn new(m: usize, n: usize) -> Self {
        InitWaitParams {
            m,
            n,
            p: 0.05,
            cycle: 100.0,
            horizon: 200_000.0,
            trials: 20_000,
            seed: 7,
        }
    }

    /// Run the experiment.
    #[must_use]
    pub fn run(&self) -> InitWaitReport {
        assert!(self.n >= 1 && self.n <= self.m);
        let quorum = self.m - self.n + 1;
        let mttr = self.p * self.cycle;
        let mttf = (1.0 - self.p) * self.cycle;
        let timelines: Vec<UpDownTimeline> = (0..self.m)
            .map(|i| {
                UpDownTimeline::generate(
                    self.seed
                        .wrapping_add(i as u64 + 1)
                        .wrapping_mul(0x51_7C_C1_B7),
                    mttf,
                    mttr,
                    self.horizon,
                )
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x1234);
        let mut instant = 0usize;
        let mut success = 0usize;
        let mut waits: Vec<f64> = Vec::with_capacity(self.trials);
        for _ in 0..self.trials {
            // Leave head room at the horizon tail so waits are observable.
            let t0 = rng.gen_range(0.0..self.horizon * 0.8);
            let up_now = timelines.iter().filter(|tl| tl.up_at(t0)).count();
            if up_now >= quorum {
                instant += 1;
                success += 1;
                waits.push(0.0);
                continue;
            }
            // First-up times per server; completion = quorum-th smallest.
            let mut first_up: Vec<f64> = timelines
                .iter()
                .filter_map(|tl| tl.next_up(t0))
                .map(|t| t - t0)
                .collect();
            if first_up.len() < quorum {
                continue; // not enough servers recover within the horizon
            }
            first_up.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            success += 1;
            waits.push(first_up[quorum - 1]);
        }
        waits.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean = if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<f64>() / waits.len() as f64
        };
        let p99 = waits
            .get(((waits.len() as f64 * 0.99) as usize).min(waits.len().saturating_sub(1)))
            .copied()
            .unwrap_or(0.0);
        InitWaitReport {
            instant_availability: instant as f64 / self.trials as f64,
            eventual_success: success as f64 / self.trials as f64,
            mean_wait: mean,
            p99_wait: p99,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlog_analysis::availability as formulas;

    #[test]
    fn instant_matches_formula_and_polling_beats_it() {
        let params = InitWaitParams::new(5, 2); // quorum = 4 of 5
        let r = params.run();
        let expected = formulas::init_availability(5, 2, 0.05);
        assert!(
            (r.instant_availability - expected).abs() < 0.02,
            "instant {} vs formula {expected}",
            r.instant_availability
        );
        // Polling must dominate the instantaneous probability.
        assert!(r.eventual_success > r.instant_availability);
        assert!(
            r.eventual_success > 0.999,
            "eventual {}",
            r.eventual_success
        );
        // Mean wait is far below one repair time (most trials need none).
        assert!(r.mean_wait < 5.0, "mean wait {}", r.mean_wait);
        assert!(r.p99_wait <= params.cycle, "p99 {}", r.p99_wait);
    }

    #[test]
    fn larger_quorum_waits_longer() {
        // N=2 (quorum 4/5) must wait longer than N=3 (quorum 3/5).
        let strict = InitWaitParams::new(5, 2).run();
        let loose = InitWaitParams::new(5, 3).run();
        assert!(strict.mean_wait >= loose.mean_wait);
        assert!(strict.instant_availability <= loose.instant_availability + 0.02);
    }
}
