//! Continuous-time failure–repair processes.
//!
//! Each server alternates exponentially distributed up (MTTF) and down
//! (MTTR) periods; the long-run unavailability is `MTTR / (MTTF + MTTR)`,
//! which experiments tune to the paper's p = 0.05.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample an exponential with the given mean via inverse transform.
fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// A server's precomputed up/down timeline over `[0, horizon)`.
#[derive(Clone, Debug)]
pub struct UpDownTimeline {
    /// Alternating period boundaries: `starts[i]..starts[i+1]` is up when
    /// `i` is even (timelines begin up).
    boundaries: Vec<f64>,
    horizon: f64,
}

impl UpDownTimeline {
    /// Generate a timeline with exponential up periods of mean `mttf` and
    /// down periods of mean `mttr`.
    #[must_use]
    pub fn generate(seed: u64, mttf: f64, mttr: f64, horizon: f64) -> Self {
        assert!(mttf > 0.0 && mttr > 0.0 && horizon > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut boundaries = vec![0.0];
        let mut t = 0.0;
        let mut up = true;
        while t < horizon {
            let mean = if up { mttf } else { mttr };
            t += exponential(&mut rng, mean);
            boundaries.push(t.min(horizon));
            up = !up;
        }
        UpDownTimeline {
            boundaries,
            horizon,
        }
    }

    /// Is the server up at time `t`?
    #[must_use]
    pub fn up_at(&self, t: f64) -> bool {
        debug_assert!(t >= 0.0 && t <= self.horizon);
        // boundaries[i] <= t < boundaries[i+1]; up iff i is even.
        let idx = self.boundaries.partition_point(|&b| b <= t);
        (idx - 1) % 2 == 0
    }

    /// First time at or after `t` when the server is up (itself if
    /// already up); `None` if it stays down past the horizon.
    #[must_use]
    pub fn next_up(&self, t: f64) -> Option<f64> {
        if self.up_at(t) {
            return Some(t);
        }
        let idx = self.boundaries.partition_point(|&b| b <= t);
        // Currently inside a down period; the next boundary starts an up
        // period (boundaries alternate).
        let next = *self.boundaries.get(idx)?;
        (next < self.horizon).then_some(next)
    }

    /// Fraction of `[0, horizon)` spent down.
    #[must_use]
    pub fn downtime_fraction(&self) -> f64 {
        let mut down = 0.0;
        for i in (1..self.boundaries.len()).step_by(2) {
            let end = self.boundaries.get(i + 1).copied().unwrap_or(self.horizon);
            down += (end - self.boundaries[i]).max(0.0);
        }
        down / self.horizon
    }

    /// The timeline horizon.
    #[must_use]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// All period boundaries (for merging event lists).
    #[must_use]
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_begins_up_and_alternates() {
        let t = UpDownTimeline::generate(1, 100.0, 10.0, 10_000.0);
        assert!(t.up_at(0.0));
        // Check alternation at period midpoints.
        let b = t.boundaries().to_vec();
        for i in 0..b.len() - 1 {
            let mid = (b[i] + b[i + 1]) / 2.0;
            if mid < t.horizon() {
                assert_eq!(t.up_at(mid), i % 2 == 0, "period {i}");
            }
        }
    }

    #[test]
    fn long_run_unavailability_matches_ratio() {
        // MTTF=95, MTTR=5 ⇒ p = 5/100 = 0.05.
        let mut total = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let t = UpDownTimeline::generate(seed, 95.0, 5.0, 200_000.0);
            total += t.downtime_fraction();
        }
        let p = total / runs as f64;
        assert!((p - 0.05).abs() < 0.005, "estimated p = {p}");
    }

    #[test]
    fn next_up_semantics() {
        let t = UpDownTimeline::generate(7, 50.0, 50.0, 10_000.0);
        // From an up instant, next_up is immediate.
        assert_eq!(t.next_up(0.0), Some(0.0));
        // From inside a down period, next_up is the period's end.
        let b = t.boundaries().to_vec();
        if b.len() >= 3 {
            let mid_down = (b[1] + b[2]) / 2.0;
            if mid_down < t.horizon() && !t.up_at(mid_down) {
                let nu = t.next_up(mid_down).unwrap();
                assert!((nu - b[2]).abs() < 1e-9);
            }
        }
    }
}
