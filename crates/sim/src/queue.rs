//! Discrete-event single-server queue simulation, cross-validating the
//! closed-form response-time models in `dlog_analysis::queueing`
//! (experiment E14's measured counterpart).
//!
//! Poisson arrivals (exponential inter-arrival times), configurable
//! service: deterministic (the NVRAM-insert force path) or exponential.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Service-time distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Service {
    /// Fixed service time (M/D/1) — a force that is a bounded memory copy.
    Deterministic,
    /// Exponential service time (M/M/1).
    Exponential,
}

/// Queue simulation parameters.
#[derive(Clone, Debug)]
pub struct QueueSimParams {
    /// Arrival rate λ (jobs/sec).
    pub lambda: f64,
    /// Service rate μ (jobs/sec); mean service time is 1/μ.
    pub mu: f64,
    /// Distribution of service times.
    pub service: Service,
    /// Jobs to simulate.
    pub jobs: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Simulation outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueueSimReport {
    /// Mean response time (wait + service), seconds.
    pub mean_response: f64,
    /// 99th-percentile response time.
    pub p99_response: f64,
    /// Mean server utilization (busy fraction).
    pub utilization: f64,
}

/// Run the single-server FIFO queue.
#[must_use]
pub fn run(params: &QueueSimParams) -> QueueSimReport {
    assert!(params.lambda > 0.0 && params.mu > 0.0);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut exp = |mean: f64| -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    };
    let mut arrival = 0.0f64;
    let mut server_free_at = 0.0f64;
    let mut busy_time = 0.0f64;
    let mut responses: Vec<f64> = Vec::with_capacity(params.jobs);
    for _ in 0..params.jobs {
        arrival += exp(1.0 / params.lambda);
        let service = match params.service {
            Service::Deterministic => 1.0 / params.mu,
            Service::Exponential => exp(1.0 / params.mu),
        };
        let start = arrival.max(server_free_at);
        server_free_at = start + service;
        busy_time += service;
        responses.push(server_free_at - arrival);
    }
    responses.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mean = responses.iter().sum::<f64>() / responses.len() as f64;
    let p99 = responses[(responses.len() as f64 * 0.99) as usize - 1];
    QueueSimReport {
        mean_response: mean,
        p99_response: p99,
        utilization: busy_time / server_free_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlog_analysis::queueing::{md1_response, mm1_response};

    fn sim(lambda: f64, mu: f64, service: Service) -> QueueSimReport {
        run(&QueueSimParams {
            lambda,
            mu,
            service,
            jobs: 400_000,
            seed: 99,
        })
    }

    #[test]
    fn md1_matches_pollaczek_khinchine() {
        for lambda in [20.0, 50.0, 80.0] {
            let s = sim(lambda, 100.0, Service::Deterministic);
            let analytic = md1_response(lambda, 100.0).unwrap();
            let rel = (s.mean_response - analytic).abs() / analytic;
            assert!(
                rel < 0.03,
                "λ={lambda}: sim {} vs analytic {analytic} ({rel:.3})",
                s.mean_response
            );
            let rho = lambda / 100.0;
            assert!((s.utilization - rho).abs() < 0.02);
        }
    }

    #[test]
    fn mm1_matches_closed_form() {
        for lambda in [20.0, 50.0, 80.0] {
            let s = sim(lambda, 100.0, Service::Exponential);
            let analytic = mm1_response(lambda, 100.0).unwrap();
            let rel = (s.mean_response - analytic).abs() / analytic;
            assert!(
                rel < 0.05,
                "λ={lambda}: sim {} vs analytic {analytic} ({rel:.3})",
                s.mean_response
            );
        }
    }

    #[test]
    fn deterministic_service_beats_exponential() {
        let d = sim(70.0, 100.0, Service::Deterministic);
        let m = sim(70.0, 100.0, Service::Exponential);
        assert!(d.mean_response < m.mean_response);
        assert!(d.p99_response < m.p99_response);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = QueueSimParams {
            lambda: 50.0,
            mu: 100.0,
            service: Service::Deterministic,
            jobs: 10_000,
            seed: 7,
        };
        assert_eq!(run(&p), run(&p));
    }
}
