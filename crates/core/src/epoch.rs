//! The replicated increasing unique-identifier generator of Appendix I,
//! used to assign crash **epoch numbers**.
//!
//! The generator's state is an integer replicated on R *generator state
//! representatives* (hosted on log-server nodes). `NewID`:
//!
//! 1. reads the state from ⌈(R+1)/2⌉ representatives;
//! 2. writes a value **higher than any read** to ⌈R/2⌉ representatives;
//! 3. returns the written value.
//!
//! Any read set intersects every earlier write set
//! (⌈(R+1)/2⌉ + ⌈R/2⌉ > R), so issued identifiers strictly increase. A
//! crash between phases may skip values — permitted, since only
//! uniqueness and monotonicity matter for epochs.

use dlog_net::wire::{Request, Response};
use dlog_net::Endpoint;
use dlog_types::{DlogError, Epoch, Result, ServerId};

use crate::net::ClientNet;

/// Read-quorum size: ⌈(R+1)/2⌉.
#[must_use]
pub fn read_quorum(r: usize) -> usize {
    (r + 2) / 2
}

/// Write-quorum size: ⌈R/2⌉.
#[must_use]
pub fn write_quorum(r: usize) -> usize {
    r.div_ceil(2)
}

/// A handle on one replicated identifier generator.
#[derive(Clone, Debug)]
pub struct EpochGenerator {
    /// Generator identity (clients each use their own generator, keyed by
    /// their client id).
    pub generator: u64,
    /// The representative nodes.
    pub representatives: Vec<ServerId>,
}

impl EpochGenerator {
    /// A generator whose representatives live on the given servers.
    #[must_use]
    pub fn new(generator: u64, representatives: Vec<ServerId>) -> Self {
        EpochGenerator {
            generator,
            representatives,
        }
    }

    /// `NewID`: produce an identifier greater than every identifier any
    /// previous invocation returned.
    ///
    /// # Errors
    /// [`DlogError::QuorumUnavailable`] when too few representatives
    /// respond for either phase.
    pub fn new_id<E: Endpoint>(&self, net: &mut ClientNet<E>) -> Result<u64> {
        let r = self.representatives.len();
        let need_read = read_quorum(r);
        let need_write = write_quorum(r);

        // Phase 1: read ⌈(R+1)/2⌉ representatives.
        let mut highest = 0u64;
        let mut reads = 0usize;
        for &rep in &self.representatives {
            if let Ok(Response::GenValue { value }) = net.rpc(
                rep,
                Request::GenRead {
                    generator: self.generator,
                },
            ) {
                highest = highest.max(value);
                reads += 1;
                if reads >= need_read {
                    break;
                }
            }
        }
        if reads < need_read {
            return Err(DlogError::QuorumUnavailable {
                operation: "NewID read phase",
                needed: need_read,
                available: reads,
            });
        }

        // Phase 2: write a higher value to ⌈R/2⌉ representatives. "Any
        // overlapping assignment of reads and writes can be used."
        let value = highest + 1;
        let mut writes = 0usize;
        for &rep in &self.representatives {
            if let Ok(Response::Ok) = net.rpc(
                rep,
                Request::GenWrite {
                    generator: self.generator,
                    value,
                },
            ) {
                writes += 1;
                if writes >= need_write {
                    break;
                }
            }
        }
        if writes < need_write {
            return Err(DlogError::QuorumUnavailable {
                operation: "NewID write phase",
                needed: need_write,
                available: writes,
            });
        }
        Ok(value)
    }

    /// Convenience: `NewID` as an [`Epoch`].
    ///
    /// # Errors
    /// As [`EpochGenerator::new_id`].
    pub fn new_epoch<E: Endpoint>(&self, net: &mut ClientNet<E>) -> Result<Epoch> {
        Ok(Epoch(self.new_id(net)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_sizes() {
        // (R, read, write) triples; read + write must exceed R.
        for (r, rd, wr) in [
            (1, 1, 1),
            (2, 2, 1),
            (3, 2, 2),
            (4, 3, 2),
            (5, 3, 3),
            (6, 4, 3),
        ] {
            assert_eq!(read_quorum(r), rd, "read quorum for R={r}");
            assert_eq!(write_quorum(r), wr, "write quorum for R={r}");
            assert!(read_quorum(r) + write_quorum(r) > r, "no overlap for R={r}");
        }
    }
}
