//! The replicated log client (§3.1, §4.2).
//!
//! One instance serves one transaction-processing node. It implements
//! `WriteLog` / `ReadLog` / `EndOfLog` over N-of-M log servers, the
//! client-initialization (crash recovery) procedure of §3.1.2 with the
//! δ-record generalization of §4.2, record grouping, ack/NAK handling,
//! and server switching.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::Duration;

use dlog_net::wire::{codes, Message, Request, Response};
use dlog_net::Endpoint;
use dlog_types::interval::MergedView;
use dlog_types::{
    ClientId, DlogError, Epoch, IntervalList, LogData, LogRecord, Lsn, ReplicationConfig, Result,
    ServerId,
};

use crate::assign::AssignStrategy;
use crate::epoch::EpochGenerator;
use crate::net::ClientNet;

/// Client tuning knobs.
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// The M servers, the replication degree N, and the in-flight bound δ.
    pub config: ReplicationConfig,
    /// How targets are chosen (§5.4).
    pub strategy: AssignStrategy,
    /// Generator state representatives for epoch numbers (Appendix I);
    /// defaults to all M servers when empty.
    pub epoch_representatives: Vec<ServerId>,
    /// Cap on the ack-wait backoff: no single wait for acknowledgments
    /// exceeds this, and a server is only charged a failed attempt (see
    /// [`ClientOptions::force_retries`]) once waits have grown to it.
    pub ack_timeout: Duration,
    /// First ack-wait of the retry schedule; successive timeouts double
    /// it (with deterministic jitter) up to [`ClientOptions::ack_timeout`].
    /// Small by design: a lost ack under light loss should cost
    /// milliseconds, not a full timeout period.
    pub retry_base: Duration,
    /// Capped re-force attempts per server before switching away from it
    /// ("it retries a number of times before moving to a different
    /// server", §4.2).
    pub force_retries: u32,
    /// Records requested per read RPC (read-ahead for recovery scans).
    pub read_ahead: u32,
}

impl ClientOptions {
    /// Sensible defaults for a configuration.
    #[must_use]
    pub fn new(config: ReplicationConfig) -> Self {
        ClientOptions {
            config,
            strategy: AssignStrategy::Striped,
            epoch_representatives: Vec::new(),
            ack_timeout: Duration::from_millis(120),
            retry_base: Duration::from_millis(2),
            force_retries: 3,
            read_ahead: 64,
        }
    }
}

/// One wait of the jittered exponential backoff schedule:
/// `base << round` capped at `cap`, scaled by a factor in [0.75, 1.25)
/// drawn from `state`, an xorshift64 stream. The jitter source is
/// deliberately *not* wall-clock entropy: seeded replays must stay
/// byte-identical (tests/trace_determinism.rs), and a per-client
/// deterministic stream de-convoys retries just as well.
fn backoff_wait(base: Duration, cap: Duration, round: u32, state: &mut u64) -> Duration {
    let base = base.max(Duration::from_micros(100));
    let cap = cap.max(base);
    let w = base.saturating_mul(1u32 << round.min(16)).min(cap);
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    let nanos = w.as_nanos() as u64;
    Duration::from_nanos(nanos - nanos / 4 + x % (nanos / 2 + 1))
}

/// True once the un-jittered backoff for `round` has reached the cap.
fn backoff_at_cap(base: Duration, cap: Duration, round: u32) -> bool {
    base.max(Duration::from_micros(100))
        .saturating_mul(1u32 << round.min(16))
        >= cap
}

/// Client-side operation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Records accepted by `write`.
    pub records_written: u64,
    /// Payload bytes accepted.
    pub bytes_written: u64,
    /// `force` calls.
    pub forces: u64,
    /// Records re-sent after NAKs or timeouts.
    pub resends: u64,
    /// Target switches (§5.4 failover).
    pub switches: u64,
    /// `read` calls served.
    pub reads: u64,
    /// Reads served from the local read-ahead cache or write buffer.
    pub read_cache_hits: u64,
    /// Client initializations performed.
    pub initializations: u64,
    /// Records rewritten by the recovery procedure (CopyLog).
    pub recovery_copies: u64,
    /// Times the δ window was full while more records waited — each is a
    /// flow-control stall spent waiting on acknowledgments.
    pub window_stalls: u64,
}

/// The replicated log abstraction (§3.1): an append-only record sequence
/// with `WriteLog`, `ReadLog`, and `EndOfLog`, durable on N of M servers.
pub struct ReplicatedLog<E: Endpoint> {
    id: ClientId,
    opts: ClientOptions,
    net: ClientNet<E>,
    view: MergedView,
    epoch: Epoch,
    initialized: bool,
    /// Current N write targets.
    targets: Vec<ServerId>,
    /// Per server: the LSN from which it holds our current write stream
    /// (acks below this LSN on that server count toward older records
    /// already noted in the view).
    covers_from: HashMap<ServerId, Lsn>,
    next_lsn: Lsn,
    /// Assigned but unsent records (grouping, §4.1).
    buffer: VecDeque<(Lsn, LogData)>,
    /// Sent, not yet on N servers. Never exceeds δ records.
    in_flight: VecDeque<(Lsn, LogData)>,
    /// Read-ahead cache.
    read_cache: BTreeMap<Lsn, LogRecord>,
    stats: ClientStats,
    obs: dlog_obs::Obs,
    /// xorshift64 state for retry jitter; seeded from the client id so
    /// replays are deterministic but distinct clients de-convoy.
    jitter: u64,
}

impl<E: Endpoint> ReplicatedLog<E> {
    /// Create an uninitialized client; call
    /// [`ReplicatedLog::initialize`] before any log operation.
    #[must_use]
    pub fn new(id: ClientId, opts: ClientOptions, net: ClientNet<E>) -> Self {
        ReplicatedLog {
            id,
            opts,
            net,
            view: MergedView::new(),
            epoch: Epoch::ZERO,
            initialized: false,
            targets: Vec::new(),
            covers_from: HashMap::new(),
            next_lsn: Lsn::FIRST,
            buffer: VecDeque::new(),
            in_flight: VecDeque::new(),
            read_cache: BTreeMap::new(),
            stats: ClientStats::default(),
            obs: dlog_obs::Obs::off(),
            jitter: id.0 ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Attach an observability handle; `write` emits `ClientWrite` trace
    /// events and `force` samples end-to-end force latency.
    pub fn set_obs(&mut self, obs: dlog_obs::Obs) {
        self.obs = obs;
    }

    /// The observability handle attached to this client (off by default).
    #[must_use]
    pub fn obs(&self) -> &dlog_obs::Obs {
        &self.obs
    }

    /// This client's id.
    #[must_use]
    pub fn client_id(&self) -> ClientId {
        self.id
    }

    /// The crash epoch in use (valid after initialization).
    #[must_use]
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Current write targets.
    #[must_use]
    pub fn targets(&self) -> &[ServerId] {
        &self.targets
    }

    /// Client counters.
    #[must_use]
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Network counters.
    #[must_use]
    pub fn net_stats(&self) -> crate::net::NetClientStats {
        self.net.stats()
    }

    /// The merged read view (exposed for tests and experiments).
    #[must_use]
    pub fn view(&self) -> &MergedView {
        &self.view
    }

    /// Client initialization (§3.1.2): gather interval lists from at least
    /// `M − N + 1` servers, merge them, obtain a fresh epoch, and perform
    /// the atomicity rewrite of the last δ records.
    ///
    /// # Errors
    /// [`DlogError::QuorumUnavailable`] when too few servers respond.
    pub fn initialize(&mut self) -> Result<()> {
        self.stats.initializations += 1;
        let need = self.opts.config.init_quorum();

        // 1. Gather interval lists. §3.2: "the client process can poll
        // until it receives responses from enough servers" — servers need
        // not all answer in one round, so stragglers get retried before
        // the quorum is declared unavailable.
        let mut lists: Vec<(ServerId, IntervalList)> = Vec::new();
        for round in 0..3 {
            for &s in &self.opts.config.servers.clone() {
                if lists.iter().any(|(got, _)| *got == s) {
                    continue;
                }
                if let Ok(Response::Intervals { intervals }) =
                    self.net.rpc(s, Request::IntervalList { client: self.id })
                {
                    lists.push((s, intervals));
                }
            }
            if lists.len() >= need {
                break;
            }
            if round < 2 {
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        if lists.len() < need {
            return Err(DlogError::QuorumUnavailable {
                operation: "client initialization",
                needed: need,
                available: lists.len(),
            });
        }
        self.view = MergedView::merge(&lists);

        // 2. Fresh epoch from the Appendix I generator. The identifier is
        // unique and increasing across this client's restarts; still, be
        // defensive against a view holding a higher epoch (e.g. restored
        // from foreign state) by drawing again.
        let reps = if self.opts.epoch_representatives.is_empty() {
            self.opts.config.servers.clone()
        } else {
            self.opts.epoch_representatives.clone()
        };
        let generator = EpochGenerator::new(self.id.0, reps);
        let max_seen = self
            .view
            .segments()
            .iter()
            .map(|s| s.epoch)
            .max()
            .unwrap_or(Epoch::ZERO);
        let mut epoch = generator.new_epoch(&mut self.net)?;
        while epoch <= max_seen {
            epoch = generator.new_epoch(&mut self.net)?;
        }
        self.epoch = epoch;

        // 3. Choose targets.
        self.targets =
            self.opts
                .strategy
                .initial(self.id, &self.opts.config.servers, self.opts.config.n);
        self.covers_from.clear();

        // 4. Atomicity rewrite: copy the last δ records with the new
        // epoch, append δ not-present records, InstallCopies.
        let end = self.view.end_of_log();
        let delta = self.opts.config.delta;
        if end > Lsn::ZERO {
            let copy_lo = Lsn(end.0.saturating_sub(delta - 1).max(1));
            let mut copies: Vec<LogRecord> = Vec::new();
            for lsn in copy_lo.0..=end.0 {
                let original = self.fetch_remote(Lsn(lsn))?;
                copies.push(LogRecord {
                    lsn: Lsn(lsn),
                    epoch: self.epoch,
                    present: original.present,
                    data: original.data,
                });
            }
            for i in 1..=delta {
                copies.push(LogRecord::not_present(Lsn(end.0 + i), self.epoch));
            }
            self.stats.recovery_copies += copies.len() as u64;
            self.install_on_targets(&copies, &mut lists)?;
            self.view = MergedView::merge(&lists);
            self.next_lsn = Lsn(end.0 + delta + 1);
            for &t in &self.targets.clone() {
                self.covers_from.insert(t, copy_lo);
            }
        } else {
            // Empty log: nothing could have been reported written, so
            // reporting the log empty is consistent (§3.1.2); fresh writes
            // carry the new epoch and win any merge against strays.
            self.next_lsn = Lsn::FIRST;
            for &t in &self.targets.clone() {
                self.covers_from.insert(t, Lsn::FIRST);
            }
        }

        self.buffer.clear();
        self.in_flight.clear();
        self.read_cache.clear();
        self.initialized = true;
        Ok(())
    }

    /// Stage the recovery copies on every target and install them,
    /// switching targets on failure. Updates `lists` with the installed
    /// interval so the view can be re-merged.
    fn install_on_targets(
        &mut self,
        copies: &[LogRecord],
        lists: &mut Vec<(ServerId, IntervalList)>,
    ) -> Result<()> {
        let lo = copies.first().expect("copies nonempty").lsn;
        let hi = copies.last().expect("copies nonempty").lsn;
        let mut installed = 0usize;
        let mut idx = 0usize;
        while installed < self.targets.len() {
            if idx >= self.targets.len() {
                return Err(DlogError::QuorumUnavailable {
                    operation: "recovery InstallCopies",
                    needed: self.opts.config.n,
                    available: installed,
                });
            }
            let t = self.targets[idx];
            match self.stage_and_install(t, copies) {
                Ok(()) => {
                    installed += 1;
                    idx += 1;
                    let entry = lists.iter_mut().find(|(s, _)| *s == t);
                    let iv = dlog_types::Interval::new(self.epoch, lo, hi);
                    match entry {
                        Some((_, list)) => {
                            list.push(iv).map_err(DlogError::Protocol)?;
                        }
                        None => {
                            let mut list = IntervalList::new();
                            list.push(iv).map_err(DlogError::Protocol)?;
                            lists.push((t, list));
                        }
                    }
                }
                Err(_) => {
                    // Switch to a replacement target and try it instead.
                    let Some(replacement) = self.opts.strategy.replacement(
                        self.id,
                        &self.opts.config.servers,
                        &self.targets,
                        t,
                    ) else {
                        return Err(DlogError::QuorumUnavailable {
                            operation: "recovery InstallCopies",
                            needed: self.opts.config.n,
                            available: installed,
                        });
                    };
                    self.stats.switches += 1;
                    self.targets[idx] = replacement;
                }
            }
        }
        Ok(())
    }

    fn stage_and_install(&mut self, server: ServerId, copies: &[LogRecord]) -> Result<()> {
        // Chunk the copies to fit packets.
        let mut chunk: Vec<LogRecord> = Vec::new();
        let mut bytes = 0usize;
        let flush_chunk = |net: &mut ClientNet<E>, chunk: &mut Vec<LogRecord>| -> Result<()> {
            if chunk.is_empty() {
                return Ok(());
            }
            let resp = net.rpc(
                server,
                Request::CopyLog {
                    client: self.id,
                    epoch: self.epoch,
                    records: std::mem::take(chunk),
                },
            )?;
            match resp {
                Response::Ok => Ok(()),
                Response::Err { code, detail } if code == codes::STALE_EPOCH => Err(
                    DlogError::Protocol(format!("stale epoch at {server}: {detail}")),
                ),
                other => Err(DlogError::Protocol(format!(
                    "CopyLog: unexpected {other:?}"
                ))),
            }
        };
        for rec in copies {
            let cost = rec.data.len() + 32;
            if bytes + cost > dlog_net::MAX_PACKET_BYTES - 256 && !chunk.is_empty() {
                flush_chunk(&mut self.net, &mut chunk)?;
                bytes = 0;
            }
            chunk.push(rec.clone());
            bytes += cost;
        }
        flush_chunk(&mut self.net, &mut chunk)?;
        match self.net.rpc(
            server,
            Request::InstallCopies {
                client: self.id,
                epoch: self.epoch,
            },
        )? {
            Response::Ok => Ok(()),
            other => Err(DlogError::Protocol(format!(
                "InstallCopies: unexpected {other:?}"
            ))),
        }
    }

    /// `WriteLog` (§3.1): append a record, returning its LSN. The record
    /// is buffered locally — group records and call
    /// [`ReplicatedLog::force`] when durability is required, exactly as a
    /// recovery manager distinguishes buffered from forced writes (§4.1).
    ///
    /// # Errors
    /// [`DlogError::NotInitialized`] before initialization.
    pub fn write(&mut self, data: impl Into<LogData>) -> Result<Lsn> {
        if !self.initialized {
            return Err(DlogError::NotInitialized);
        }
        let span = self.obs.start();
        let data = data.into();
        let lsn = self.next_lsn;
        self.next_lsn = lsn.next();
        self.stats.records_written += 1;
        self.stats.bytes_written += data.len() as u64;
        self.obs
            .event(dlog_obs::Stage::ClientWrite, lsn.0, data.len() as u64);
        self.buffer.push_back((lsn, data));
        self.obs.sample_since(dlog_obs::Stage::ClientWrite, span);
        Ok(lsn)
    }

    /// Send buffered records as asynchronous `WriteLog` messages without
    /// waiting for full replication (except when the δ window forces
    /// flow-control waits).
    ///
    /// # Errors
    /// Propagates quorum loss and transport failures.
    pub fn flush(&mut self) -> Result<()> {
        if !self.initialized {
            return Err(DlogError::NotInitialized);
        }
        self.pump(false)
    }

    /// Force: every record written so far is on N servers when this
    /// returns. Returns the highest durable LSN.
    ///
    /// # Errors
    /// [`DlogError::QuorumUnavailable`] when fewer than N servers can be
    /// made to hold the records.
    pub fn force(&mut self) -> Result<Lsn> {
        if !self.initialized {
            return Err(DlogError::NotInitialized);
        }
        self.stats.forces += 1;
        // End-to-end force latency lands in this client handle's Force
        // histogram; no trace event is emitted (the storage layer's Force
        // event is the one the ack invariant keys on).
        let span = self.obs.start();
        self.pump(true)?;
        self.obs.sample_since(dlog_obs::Stage::Force, span);
        Ok(Lsn(self.next_lsn.0 - 1))
    }

    /// `EndOfLog` (§3.1): the LSN of the most recently written record.
    ///
    /// # Errors
    /// [`DlogError::NotInitialized`] before initialization.
    pub fn end_of_log(&self) -> Result<Lsn> {
        if !self.initialized {
            return Err(DlogError::NotInitialized);
        }
        Ok(Lsn(self.next_lsn.0 - 1))
    }

    /// `ReadLog` (§3.1): fetch the record at `lsn` using a single server
    /// (plus failover), the read cache, or the local write buffer.
    ///
    /// # Errors
    /// [`DlogError::NoSuchRecord`] for never-written LSNs,
    /// [`DlogError::NotPresent`] for records masked by recovery,
    /// [`DlogError::QuorumUnavailable`] when no holder responds.
    pub fn read(&mut self, lsn: Lsn) -> Result<LogData> {
        if !self.initialized {
            return Err(DlogError::NotInitialized);
        }
        self.stats.reads += 1;
        if lsn == Lsn::ZERO || lsn >= self.next_lsn {
            return Err(DlogError::NoSuchRecord { lsn });
        }
        // Local sources first: write buffer, in-flight window, cache.
        if let Some((_, d)) = self.buffer.iter().find(|(l, _)| *l == lsn) {
            self.stats.read_cache_hits += 1;
            return Ok(d.clone());
        }
        if let Some((_, d)) = self.in_flight.iter().find(|(l, _)| *l == lsn) {
            self.stats.read_cache_hits += 1;
            return Ok(d.clone());
        }
        if let Some(rec) = self.read_cache.get(&lsn) {
            self.stats.read_cache_hits += 1;
            return if rec.present {
                Ok(rec.data.clone())
            } else {
                Err(DlogError::NotPresent { lsn })
            };
        }
        let rec = self.fetch_remote(lsn)?;
        if rec.present {
            Ok(rec.data)
        } else {
            Err(DlogError::NotPresent { lsn })
        }
    }

    /// `ReadLogBackward` (§4.2): fetch up to `max` records ending at
    /// `lsn`, in descending LSN order, packed per server round trip — the
    /// access pattern of a recovery manager scanning from `EndOfLog`.
    /// Records masked *not present* are included (the caller skips them);
    /// the scan stops at LSN 1 or at a never-written LSN.
    ///
    /// # Errors
    /// Propagates server unavailability; an out-of-range starting `lsn`
    /// yields [`DlogError::NoSuchRecord`].
    pub fn read_backward(&mut self, lsn: Lsn, max: u32) -> Result<Vec<LogRecord>> {
        if !self.initialized {
            return Err(DlogError::NotInitialized);
        }
        if lsn == Lsn::ZERO || lsn >= self.next_lsn {
            return Err(DlogError::NoSuchRecord { lsn });
        }
        let mut out: Vec<LogRecord> = Vec::new();
        let mut cursor = Some(lsn);
        while let Some(cur) = cursor {
            if out.len() as u32 >= max || cur == Lsn::ZERO {
                break;
            }
            // Local window first (buffered/in-flight records).
            if let Some((_, d)) = self
                .buffer
                .iter()
                .chain(self.in_flight.iter())
                .find(|(l, _)| *l == cur)
            {
                out.push(LogRecord::present(cur, self.epoch, d.clone()));
                cursor = cur.prev();
                continue;
            }
            let Some((servers, _)) = self.view.locate(cur) else {
                break;
            };
            let candidates: Vec<ServerId> = servers.to_vec();
            let mut got_any = false;
            for s in candidates {
                let want = (max - out.len() as u32).min(self.opts.read_ahead);
                match self.net.rpc(
                    s,
                    Request::ReadLogBackward {
                        client: self.id,
                        lsn: cur,
                        max_records: want,
                    },
                ) {
                    Ok(Response::Records { records }) if !records.is_empty() => {
                        // The server packs descending records but only
                        // holds its own intervals; accept the contiguous
                        // descending prefix starting at the cursor.
                        let mut expected = cur;
                        for rec in records {
                            if rec.lsn != expected {
                                break;
                            }
                            self.read_cache.insert(rec.lsn, rec.clone());
                            out.push(rec);
                            got_any = true;
                            match expected.prev() {
                                Some(p) => expected = p,
                                None => break,
                            }
                        }
                        if got_any {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if !got_any {
                break;
            }
            cursor = out.last().and_then(|r| r.lsn.prev());
        }
        Ok(out)
    }

    /// Fetch a record from one of the servers the view names for it,
    /// populating the read-ahead cache.
    fn fetch_remote(&mut self, lsn: Lsn) -> Result<LogRecord> {
        let Some((servers, _epoch)) = self.view.locate(lsn) else {
            return Err(DlogError::NoSuchRecord { lsn });
        };
        let candidates: Vec<ServerId> = servers.to_vec();
        let mut last_err: Option<DlogError> = None;
        for s in candidates {
            match self.net.rpc(
                s,
                Request::ReadLogForward {
                    client: self.id,
                    lsn,
                    max_records: self.opts.read_ahead,
                },
            ) {
                Ok(Response::Records { records }) => {
                    let mut hit: Option<LogRecord> = None;
                    for rec in records {
                        if rec.lsn == lsn {
                            hit = Some(rec.clone());
                        }
                        self.read_cache.insert(rec.lsn, rec);
                    }
                    // Bound the cache.
                    while self.read_cache.len() > 4096 {
                        let k = *self.read_cache.keys().next().expect("nonempty");
                        self.read_cache.remove(&k);
                    }
                    if let Some(rec) = hit {
                        return Ok(rec);
                    }
                    // Server no longer stores it (shed/garbage-collected):
                    // try the next candidate.
                }
                Ok(other) => {
                    last_err = Some(DlogError::Protocol(format!("read: unexpected {other:?}")));
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or(DlogError::QuorumUnavailable {
            operation: "ReadLog",
            needed: 1,
            available: 0,
        }))
    }

    /// Move buffered records through the δ window to the targets; when
    /// `drain` is set, do not return until everything is on N servers.
    fn pump(&mut self, drain: bool) -> Result<()> {
        let mut demanded_ack = false;
        loop {
            // Admit buffered records into the δ window.
            let mut fresh: Vec<(Lsn, LogData)> = Vec::new();
            while (self.in_flight.len() as u64) < self.opts.config.delta {
                match self.buffer.pop_front() {
                    Some(r) => {
                        self.in_flight.push_back(r.clone());
                        fresh.push(r);
                    }
                    None => break,
                }
            }
            let window_full =
                (self.in_flight.len() as u64) >= self.opts.config.delta && !self.buffer.is_empty();
            if window_full {
                self.stats.window_stalls += 1;
            }
            let need_ack = drain || window_full;
            if !fresh.is_empty() {
                self.transmit(&fresh, need_ack)?;
                if need_ack {
                    demanded_ack = true;
                }
            } else if need_ack && !demanded_ack && !self.in_flight.is_empty() {
                // The whole window went out earlier as asynchronous
                // WriteLog, so the servers owe us nothing. An empty
                // ForceLog demands the force and its ack without
                // resending a single record — this replaces a silent
                // full-timeout wait for acks that were never coming.
                let targets = self.targets.clone();
                self.net.send_many(
                    &targets,
                    Message::ForceLog {
                        client: self.id,
                        epoch: self.epoch,
                        records: Vec::new(),
                    },
                )?;
                demanded_ack = true;
            }
            if need_ack {
                // Fully drain only on the final round of a force; flow
                // control just waits until the window dips below δ.
                self.await_acks(drain && self.buffer.is_empty())?;
            } else {
                // Asynchronous flush: absorb whatever acks arrived.
                let _ = self.net.poll(Duration::ZERO)?;
                self.harvest_completions();
            }
            if self.buffer.is_empty() && (!drain || self.in_flight.is_empty()) {
                return Ok(());
            }
        }
    }

    /// Send records to every target, as `ForceLog` when an ack is needed.
    /// Each batch is encoded once and fanned out: the replicas receive
    /// byte-identical packets, so the message is built and serialized a
    /// single time regardless of the replica count.
    fn transmit(&mut self, records: &[(Lsn, LogData)], force: bool) -> Result<()> {
        let targets = self.targets.clone();
        let batches = dlog_net::wire::pack_batches(records);
        for batch in batches {
            let msg = if force {
                Message::ForceLog {
                    client: self.id,
                    epoch: self.epoch,
                    records: batch,
                }
            } else {
                Message::WriteLog {
                    client: self.id,
                    epoch: self.epoch,
                    records: batch,
                }
            };
            self.net.send_many(&targets, msg)?;
        }
        Ok(())
    }

    /// Block until the window drains (`drain`: fully; otherwise: below δ).
    ///
    /// Waits follow a jittered exponential backoff from
    /// [`ClientOptions::retry_base`] up to the [`ClientOptions::ack_timeout`]
    /// cap: fixed-interval retries convoy under loss (every waiter
    /// re-fires in lockstep, and a single lost ack costs a whole
    /// period), while small first retries recover in milliseconds and
    /// the cap bounds the tail.
    fn await_acks(&mut self, drain: bool) -> Result<()> {
        let mut attempts: HashMap<ServerId, u32> = HashMap::new();
        let mut round: u32 = 0;
        // With most servers unreachable, target switching would otherwise
        // ping-pong among dead candidates forever; bound the churn per
        // wait and report the quorum loss instead.
        let mut switch_budget = 2 * self.opts.config.m() as u32 + 2;
        loop {
            self.harvest_completions();
            let done = if drain {
                self.in_flight.is_empty()
            } else {
                (self.in_flight.len() as u64) < self.opts.config.delta
            };
            if done {
                return Ok(());
            }
            let wait = backoff_wait(
                self.opts.retry_base,
                self.opts.ack_timeout,
                round,
                &mut self.jitter,
            );
            let progressed = self.net.poll(wait)?;
            self.process_naks()?;
            self.harvest_completions();
            if progressed {
                round = 0;
                continue;
            }
            // Timeout: re-send each laggard the window suffix it has not
            // acknowledged, eventually switching. A laggard has not
            // acknowledged the newest *sent* record (or does not cover
            // the window head at all). Switching is charged only for
            // capped-length waits — early, milliseconds-long rounds must
            // not evict a merely slow server.
            let at_cap = backoff_at_cap(self.opts.retry_base, self.opts.ack_timeout, round);
            round = round.saturating_add(1);
            let newest_sent = self.in_flight.back().expect("in-flight nonempty").0;
            let laggards: Vec<ServerId> = self
                .targets
                .iter()
                .copied()
                .filter(|&t| self.net.acked(t) < newest_sent)
                .collect();
            for t in laggards {
                let n = attempts.entry(t).or_insert(0);
                if at_cap {
                    *n += 1;
                }
                if *n > self.opts.force_retries {
                    if switch_budget == 0 {
                        return Err(DlogError::QuorumUnavailable {
                            operation: "WriteLog",
                            needed: self.opts.config.n,
                            available: self
                                .targets
                                .iter()
                                .filter(|&&t| self.net.acked(t) >= newest_sent)
                                .count(),
                        });
                    }
                    switch_budget -= 1;
                    self.switch_target(t)?;
                    attempts.remove(&t);
                } else {
                    let from = self.net.acked(t).next();
                    self.resend_from(t, from, true)?;
                }
            }
        }
    }

    /// Apply pending NAKs: a NAK names the first gap the server sees, and
    /// a server refuses everything after a gap — so the window suffix
    /// from the gap's low edge is exactly what it is missing.
    fn process_naks(&mut self) -> Result<()> {
        while let Some(nak) = self.net.take_nak() {
            let start = self.in_flight.front().map_or(self.next_lsn, |(l, _)| *l);
            let resend_lo = if nak.lo < start {
                // The gap predates the window: those records are already
                // on N other servers; skip them on this one.
                self.net.send(
                    nak.server,
                    Message::NewInterval {
                        client: self.id,
                        epoch: self.epoch,
                        starting_lsn: start,
                    },
                )?;
                self.covers_from.insert(nak.server, start);
                start
            } else {
                nak.lo
            };
            self.resend_from(nak.server, resend_lo, true)?;
        }
        Ok(())
    }

    /// Selective retransmit: resend the in-flight suffix starting at
    /// `from`. Window slots below `from` are skipped — the server either
    /// acknowledged them already (timeout path: `from` is its acked
    /// high-water mark + 1) or was told to start a fresh interval past
    /// them (NAK path) — which is what keeps retransmission cost
    /// proportional to what was actually lost.
    fn resend_from(&mut self, server: ServerId, from: Lsn, force: bool) -> Result<()> {
        let records: Vec<(Lsn, LogData)> = self
            .in_flight
            .iter()
            .filter(|(l, _)| *l >= from)
            .cloned()
            .collect();
        if records.is_empty() {
            return Ok(());
        }
        self.stats.resends += records.len() as u64;
        for batch in dlog_net::wire::pack_batches(&records) {
            let msg = if force {
                Message::ForceLog {
                    client: self.id,
                    epoch: self.epoch,
                    records: batch,
                }
            } else {
                Message::WriteLog {
                    client: self.id,
                    epoch: self.epoch,
                    records: batch,
                }
            };
            self.net.send(server, msg)?;
        }
        Ok(())
    }

    /// Replace a failed target ("clients will simply assume that the
    /// server has failed and will take their logging elsewhere", §4.2).
    fn switch_target(&mut self, failed: ServerId) -> Result<()> {
        let Some(replacement) = self.opts.strategy.replacement(
            self.id,
            &self.opts.config.servers,
            &self.targets,
            failed,
        ) else {
            return Err(DlogError::QuorumUnavailable {
                operation: "WriteLog",
                needed: self.opts.config.n,
                available: self.targets.len() - 1,
            });
        };
        self.stats.switches += 1;
        if let Some(slot) = self.targets.iter_mut().find(|t| **t == failed) {
            *slot = replacement;
        }
        let start = self.in_flight.front().map_or(self.next_lsn, |(l, _)| *l);
        self.net.send(
            replacement,
            Message::NewInterval {
                client: self.id,
                epoch: self.epoch,
                starting_lsn: start,
            },
        )?;
        self.covers_from.insert(replacement, start);
        // A replacement starts cold: it needs the whole window.
        self.resend_from(replacement, start, true)?;
        Ok(())
    }

    /// Query a server's operational status snapshot (the `Status` RPC);
    /// works before initialization — observability must not depend on a
    /// healthy quorum.
    ///
    /// # Errors
    /// [`DlogError::ServerUnavailable`] when the server does not answer.
    /// A sharded server answers with one gauge row per shard; the rows
    /// are merged here (counters summed, `last_manifest_lsn` taken as
    /// the max) so callers see one server-wide snapshot either way. Use
    /// [`ReplicatedLog::server_status_shards`] for the per-shard rows.
    pub fn server_status(&mut self, server: ServerId) -> Result<Response> {
        let rows = self.server_status_shards(server)?;
        Ok(merge_status_rows(rows))
    }

    /// Per-shard `Status` rows from `server`, one per shard event loop
    /// (a single row from an unsharded server).
    ///
    /// # Errors
    /// [`DlogError::ServerUnavailable`] when the server does not answer.
    pub fn server_status_shards(&mut self, server: ServerId) -> Result<Vec<Response>> {
        self.net.rpc_all(server, Request::Status)
    }

    /// Query a server's observability snapshot (the `Stats` RPC): per-stage
    /// latency histograms and trace counters. Like
    /// [`ReplicatedLog::server_status`], works before initialization.
    ///
    /// # Errors
    /// [`DlogError::ServerUnavailable`] when the server does not answer.
    /// Per-shard rows are merged: stage entries are concatenated (the
    /// stage id travels with each entry, so histogram merging stays a
    /// consumer-side fold) and the trace/alloc counters summed.
    pub fn server_stats(&mut self, server: ServerId) -> Result<Response> {
        let rows = self.net.rpc_all(server, Request::Stats)?;
        Ok(merge_stats_rows(rows))
    }

    // ---- helpers for the repair module (§5.3) ----

    pub(crate) fn ensure_initialized(&self) -> Result<()> {
        if self.initialized {
            Ok(())
        } else {
            Err(DlogError::NotInitialized)
        }
    }

    pub(crate) fn has_pending_records(&self) -> bool {
        !self.buffer.is_empty() || !self.in_flight.is_empty()
    }

    pub(crate) fn options(&self) -> &ClientOptions {
        &self.opts
    }

    pub(crate) fn net_mut(&mut self) -> &mut ClientNet<E> {
        &mut self.net
    }

    /// Fetch one record from any of `holders` (for re-replication).
    pub(crate) fn fetch_for_repair(&mut self, lsn: Lsn, holders: &[ServerId]) -> Result<LogRecord> {
        for &s in holders {
            if let Ok(Response::Records { records }) = self.net.rpc(
                s,
                Request::ReadLogForward {
                    client: self.id,
                    lsn,
                    max_records: 1,
                },
            ) {
                if let Some(rec) = records.into_iter().find(|r| r.lsn == lsn) {
                    return Ok(rec);
                }
            }
        }
        Err(DlogError::Corrupt(format!(
            "record {lsn} has lost every copy; media recovery from dumps required"
        )))
    }

    /// After a repair pass: adopt the repair epoch, refresh the view, and
    /// re-anchor the write stream on the current targets.
    pub(crate) fn adopt_epoch_after_repair(&mut self, epoch: Epoch) -> Result<()> {
        self.epoch = epoch;
        // Refresh the merged view from live servers.
        let mut lists: Vec<(ServerId, IntervalList)> = Vec::new();
        for &s in &self.opts.config.servers.clone() {
            if let Ok(Response::Intervals { intervals }) =
                self.net.rpc(s, Request::IntervalList { client: self.id })
            {
                lists.push((s, intervals));
            }
        }
        self.view = MergedView::merge(&lists);
        self.read_cache.clear();
        // Future records start a declared fresh interval on each target.
        for &t in &self.targets.clone() {
            self.net.send(
                t,
                Message::NewInterval {
                    client: self.id,
                    epoch,
                    starting_lsn: self.next_lsn,
                },
            )?;
            self.covers_from.insert(t, self.next_lsn);
        }
        Ok(())
    }

    /// Pop fully replicated records off the window head and note them in
    /// the view.
    fn harvest_completions(&mut self) {
        while let Some(&(lsn, _)) = self.in_flight.front() {
            let holders: Vec<ServerId> = self
                .covers_from
                .iter()
                .filter(|(s, &from)| from <= lsn && self.net.acked(**s) >= lsn)
                .map(|(s, _)| *s)
                .collect();
            if holders.len() >= self.opts.config.n {
                self.view.note_write(lsn, self.epoch, &holders);
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
    }
}

/// Fold per-shard `Status` rows into one server-wide row: counters sum
/// (every gauge but one is a monotone counter), `last_manifest_lsn` is
/// the max across shards, and the merged row reports `shard: 0` with
/// the server's true shard count. A single unsharded row passes through
/// unchanged.
fn merge_status_rows(rows: Vec<Response>) -> Response {
    let mut it = rows.into_iter();
    let Some(mut acc) = it.next() else {
        return Response::Err {
            code: 0,
            detail: "no status rows".into(),
        };
    };
    for row in it {
        if let (
            Response::Status {
                records_stored,
                duplicates_ignored,
                naks_sent,
                writes_shed,
                rpcs,
                forces_acked,
                clients,
                on_disk_bytes,
                tracks_flushed,
                archived_bytes,
                pending_upload_bytes,
                last_manifest_lsn,
                upload_retries,
                coalesced_forces,
                group_commits,
                shard: _,
                shards,
            },
            Response::Status {
                records_stored: b_records_stored,
                duplicates_ignored: b_duplicates_ignored,
                naks_sent: b_naks_sent,
                writes_shed: b_writes_shed,
                rpcs: b_rpcs,
                forces_acked: b_forces_acked,
                clients: b_clients,
                on_disk_bytes: b_on_disk_bytes,
                tracks_flushed: b_tracks_flushed,
                archived_bytes: b_archived_bytes,
                pending_upload_bytes: b_pending_upload_bytes,
                last_manifest_lsn: b_last_manifest_lsn,
                upload_retries: b_upload_retries,
                coalesced_forces: b_coalesced_forces,
                group_commits: b_group_commits,
                shard: _,
                shards: b_shards,
            },
        ) = (&mut acc, row)
        {
            *records_stored += b_records_stored;
            *duplicates_ignored += b_duplicates_ignored;
            *naks_sent += b_naks_sent;
            *writes_shed += b_writes_shed;
            *rpcs += b_rpcs;
            *forces_acked += b_forces_acked;
            *clients += b_clients;
            *on_disk_bytes += b_on_disk_bytes;
            *tracks_flushed += b_tracks_flushed;
            *archived_bytes += b_archived_bytes;
            *pending_upload_bytes += b_pending_upload_bytes;
            *last_manifest_lsn = (*last_manifest_lsn).max(b_last_manifest_lsn);
            *upload_retries += b_upload_retries;
            *coalesced_forces += b_coalesced_forces;
            *group_commits += b_group_commits;
            *shards = (*shards).max(b_shards);
        }
    }
    if let Response::Status { shard, shards, .. } = &mut acc {
        if *shards > 1 {
            *shard = 0;
        }
    }
    acc
}

/// Fold per-shard `Stats` rows: stage entries concatenate (each entry
/// carries its stage id, so per-stage histogram merging stays a
/// consumer-side fold) and the trace/alloc counters sum.
fn merge_stats_rows(rows: Vec<Response>) -> Response {
    let mut it = rows.into_iter();
    let Some(mut acc) = it.next() else {
        return Response::Err {
            code: 0,
            detail: "no stats rows".into(),
        };
    };
    for row in it {
        if let (
            Response::Stats {
                stages,
                trace_events,
                trace_dropped,
                ingest_allocs,
                ingest_records,
                shard: _,
                shards,
            },
            Response::Stats {
                stages: b_stages,
                trace_events: b_trace_events,
                trace_dropped: b_trace_dropped,
                ingest_allocs: b_ingest_allocs,
                ingest_records: b_ingest_records,
                shard: _,
                shards: b_shards,
            },
        ) = (&mut acc, row)
        {
            stages.extend(b_stages);
            *trace_events += b_trace_events;
            *trace_dropped += b_trace_dropped;
            *ingest_allocs += b_ingest_allocs;
            *ingest_records += b_ingest_records;
            *shards = (*shards).max(b_shards);
        }
    }
    if let Response::Stats { shard, shards, .. } = &mut acc {
        if *shards > 1 {
            *shard = 0;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: Duration = Duration::from_millis(2);
    const CAP: Duration = Duration::from_millis(120);

    #[test]
    fn backoff_stays_within_jitter_bounds_per_round() {
        let mut state = 7u64;
        for round in 0..20 {
            let nominal = BASE.saturating_mul(1u32 << round.min(16)).min(CAP);
            let w = backoff_wait(BASE, CAP, round, &mut state);
            assert!(
                w >= nominal.mul_f64(0.74) && w <= nominal.mul_f64(1.26),
                "round {round}: {w:?} outside jitter bounds of {nominal:?}"
            );
        }
    }

    #[test]
    fn backoff_caps_at_ack_timeout() {
        let mut state = 3u64;
        for round in 0..64 {
            let w = backoff_wait(BASE, CAP, round, &mut state);
            assert!(w <= CAP.mul_f64(1.26), "round {round}: {w:?} exceeds cap");
        }
        assert!(!backoff_at_cap(BASE, CAP, 0));
        assert!(backoff_at_cap(BASE, CAP, 6));
        assert!(backoff_at_cap(BASE, CAP, 63));
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let mut a = 42u64;
        let mut b = 42u64;
        for round in 0..12 {
            assert_eq!(
                backoff_wait(BASE, CAP, round, &mut a),
                backoff_wait(BASE, CAP, round, &mut b),
            );
        }
        // And actually jittered: two rounds at the cap differ.
        let w1 = backoff_wait(BASE, CAP, 10, &mut a);
        let w2 = backoff_wait(BASE, CAP, 10, &mut a);
        assert_ne!(w1, w2, "jitter stream should not repeat immediately");
    }

    #[test]
    fn backoff_survives_degenerate_options() {
        let mut state = 0u64; // zero seed must not wedge xorshift
        let w = backoff_wait(Duration::ZERO, Duration::ZERO, 40, &mut state);
        assert!(w > Duration::ZERO);
        assert!(w <= Duration::from_micros(130));
        assert_ne!(state, 0);
    }
}
