//! **dlog-core** — the replicated log of Daniels, Spector & Thompson,
//! *Distributed Logging for Transaction Processing* (SIGMOD 1987).
//!
//! A [`ReplicatedLog`] is an append-only sequence of records used by a
//! *single* transaction-processing client and stored on **N of M** shared
//! log-server nodes. The replication algorithm is a specialized quorum
//! consensus (§3.1) that exploits the single-writer property:
//!
//! * `WriteLog` sends each record to N servers; consecutive records go to
//!   the same servers when possible, so servers hold long *intervals*;
//! * `ReadLog` contacts only **one** server, because all read-side voting
//!   was done once, at client restart: [`ReplicatedLog::initialize`]
//!   merges the interval lists of `M − N + 1` servers, keeping for each
//!   LSN only the entries with the highest *crash epoch*;
//! * the restart procedure makes interrupted writes atomic: the last δ
//!   records are re-copied under a fresh epoch (obtained from the
//!   Appendix I replicated identifier generator, [`epoch`]), δ records
//!   marked *not present* are appended after them, and an `InstallCopies`
//!   call publishes the rewrite atomically on each server.
//!
//! The client groups records and streams them to servers with the §4.2
//! protocol: buffered `WriteLog` messages, `ForceLog` when durability is
//! required, `NewHighLSN` acknowledgments, `MissingInterval` NAKs, and
//! server switching with `NewInterval` when a server fails or sheds load.
//!
//! Additional design elements from the paper:
//!
//! * [`split`] — §5.2 log-record splitting: redo components stream to the
//!   servers, undo components stay in a client-side cache until commit,
//!   abort, or page cleaning;
//! * [`assign`] — §5.4 load assignment strategies for picking the N
//!   target servers among the M available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod client;
pub mod epoch;
pub mod net;
pub mod repair;
pub mod split;

pub use client::{ClientOptions, ClientStats, ReplicatedLog};
pub use epoch::EpochGenerator;
