//! Client-side network machinery: one endpoint multiplexing asynchronous
//! acknowledgments/NAKs and strict RPC round trips across all M servers.
//!
//! The paper's client has a *single logging process* (§3.1); likewise this
//! state machine is single-threaded. RPCs retry on timeout; asynchronous
//! `NewHighLSN` / `MissingInterval` messages received while waiting are
//! absorbed into client state rather than dropped.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use dlog_net::wire::{Message, NodeAddr, Packet, Request, Response};
use dlog_net::Endpoint;
use dlog_types::{DlogError, Lsn, Result, ServerId};

/// Client-side network counters (used by the E3 capacity experiment).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetClientStats {
    /// Packets sent.
    pub packets_out: u64,
    /// Packets received.
    pub packets_in: u64,
    /// RPC retries after timeouts.
    pub rpc_retries: u64,
    /// RPCs that exhausted their retries.
    pub rpc_failures: u64,
    /// `MissingInterval` NAKs received.
    pub naks_in: u64,
    /// `NewHighLSN` acknowledgments received.
    pub acks_in: u64,
}

/// A pending NAK from a server: the range it is missing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Nak {
    /// Server reporting the gap.
    pub server: ServerId,
    /// First missing LSN.
    pub lo: Lsn,
    /// Last missing LSN.
    pub hi: Lsn,
}

/// Endpoint + directory + dispatch state.
pub struct ClientNet<E: Endpoint> {
    endpoint: E,
    addrs: HashMap<ServerId, NodeAddr>,
    rev: HashMap<NodeAddr, ServerId>,
    next_rpc_id: u64,
    /// Highest LSN each server has acknowledged durable.
    acks: HashMap<ServerId, Lsn>,
    /// Unprocessed NAKs, in arrival order.
    naks: VecDeque<Nak>,
    /// Round-trip budget per RPC attempt.
    pub rpc_timeout: Duration,
    /// Attempts per RPC before declaring the server unavailable.
    pub rpc_retries: u32,
    stats: NetClientStats,
}

impl<E: Endpoint> ClientNet<E> {
    /// Wrap an endpoint with a server directory.
    #[must_use]
    pub fn new(endpoint: E, addrs: HashMap<ServerId, NodeAddr>) -> Self {
        let rev = addrs.iter().map(|(s, a)| (*a, *s)).collect();
        ClientNet {
            endpoint,
            addrs,
            rev,
            next_rpc_id: 1,
            acks: HashMap::new(),
            naks: VecDeque::new(),
            rpc_timeout: Duration::from_millis(250),
            rpc_retries: 4,
            stats: NetClientStats::default(),
        }
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> NetClientStats {
        self.stats
    }

    /// The servers in the directory.
    #[must_use]
    pub fn known_servers(&self) -> Vec<ServerId> {
        let mut v: Vec<_> = self.addrs.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Fire-and-forget an asynchronous message to `server`.
    ///
    /// # Errors
    /// Only local send failures; network loss is silent.
    pub fn send(&mut self, server: ServerId, msg: Message) -> Result<()> {
        let addr = self.addr_of(server)?;
        self.stats.packets_out += 1;
        self.endpoint
            .send(addr, &Packet::stamped(msg))
            .map_err(DlogError::Io)
    }

    /// Fire-and-forget the same message to several servers with one
    /// encode: the replication fan-out sends byte-identical packets, so
    /// the endpoint serializes once and fans the buffer out.
    ///
    /// # Errors
    /// Only local send failures; network loss is silent.
    pub fn send_many(&mut self, servers: &[ServerId], msg: Message) -> Result<()> {
        let mut addrs = [NodeAddr(0); 16];
        let mut chunk = servers;
        let packet = Packet::stamped(msg);
        // Fixed-size scratch keeps this allocation-free for any realistic
        // replica set; larger sets just fan out in chunks.
        while !chunk.is_empty() {
            let n = chunk.len().min(addrs.len());
            for (slot, server) in addrs.iter_mut().zip(&chunk[..n]) {
                *slot = self.addr_of(*server)?;
            }
            self.stats.packets_out += n as u64;
            self.endpoint
                .send_many(&addrs[..n], &packet)
                .map_err(DlogError::Io)?;
            chunk = &chunk[n..];
        }
        Ok(())
    }

    /// Highest LSN `server` has acknowledged.
    #[must_use]
    pub fn acked(&self, server: ServerId) -> Lsn {
        self.acks.get(&server).copied().unwrap_or(Lsn::ZERO)
    }

    /// Pop the next pending NAK, if any.
    pub fn take_nak(&mut self) -> Option<Nak> {
        self.naks.pop_front()
    }

    /// Receive and dispatch packets for up to `timeout`. Returns `true` if
    /// at least one packet was absorbed.
    ///
    /// # Errors
    /// Propagates endpoint failures.
    pub fn poll(&mut self, timeout: Duration) -> Result<bool> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self
                .endpoint
                .recv(remaining.max(Duration::from_millis(1)))?
            {
                Some((from, pkt)) => {
                    self.dispatch(from, pkt.msg, None);
                    // Drain whatever else is immediately available.
                    while let Some((from, pkt)) = self.endpoint.recv(Duration::ZERO)? {
                        self.dispatch(from, pkt.msg, None);
                    }
                    return Ok(true);
                }
                None => {
                    if Instant::now() >= deadline {
                        return Ok(false);
                    }
                }
            }
        }
    }

    /// Perform a strict RPC with retries. Asynchronous messages arriving
    /// meanwhile are dispatched, not lost.
    ///
    /// # Errors
    /// [`DlogError::ServerUnavailable`] after the retry budget.
    pub fn rpc(&mut self, server: ServerId, req: Request) -> Result<Response> {
        let addr = self.addr_of(server)?;
        let id = self.next_rpc_id;
        self.next_rpc_id += 1;
        for attempt in 0..=self.rpc_retries {
            if attempt > 0 {
                self.stats.rpc_retries += 1;
            }
            self.stats.packets_out += 1;
            self.endpoint
                .send(
                    addr,
                    &Packet::stamped(Message::Request {
                        id,
                        body: req.clone(),
                    }),
                )
                .map_err(DlogError::Io)?;
            let deadline = Instant::now() + self.rpc_timeout;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                let Some((from, pkt)) = self.endpoint.recv(remaining)? else {
                    break;
                };
                let mut hit: Option<Response> = None;
                self.dispatch(from, pkt.msg, Some((id, &mut hit)));
                if let Some(resp) = hit {
                    return Ok(resp);
                }
            }
        }
        self.stats.rpc_failures += 1;
        Err(DlogError::ServerUnavailable { server })
    }

    /// Perform a shard-agnostic RPC (`Status` / `Stats`) against every
    /// shard of `server` and collect one response per shard. A sharded
    /// server broadcasts such requests internally and each shard answers
    /// stamped with its `shard` / `shards` gauges; the first response
    /// tells us how many rows to expect, and duplicate rows (datagram
    /// duplication, retries) are dropped by shard index. An unsharded
    /// server yields exactly one row, making this a drop-in superset of
    /// [`ClientNet::rpc`] for these two requests.
    ///
    /// # Errors
    /// [`DlogError::ServerUnavailable`] when no shard answers within the
    /// retry budget. A partial row set (some shards answered, the rest
    /// timed out) is returned as-is rather than failing — observability
    /// must degrade, not disappear.
    pub fn rpc_all(&mut self, server: ServerId, req: Request) -> Result<Vec<Response>> {
        let addr = self.addr_of(server)?;
        let id = self.next_rpc_id;
        self.next_rpc_id += 1;
        for attempt in 0..=self.rpc_retries {
            if attempt > 0 {
                self.stats.rpc_retries += 1;
            }
            self.stats.packets_out += 1;
            self.endpoint
                .send(
                    addr,
                    &Packet::stamped(Message::Request {
                        id,
                        body: req.clone(),
                    }),
                )
                .map_err(DlogError::Io)?;
            let mut rows: Vec<Response> = Vec::new();
            let mut seen_shards: Vec<u64> = Vec::new();
            let mut want = 1usize;
            let deadline = Instant::now() + self.rpc_timeout;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                let Some((from, pkt)) = self.endpoint.recv(remaining)? else {
                    break;
                };
                let mut hit: Option<Response> = None;
                self.dispatch(from, pkt.msg, Some((id, &mut hit)));
                let Some(resp) = hit else { continue };
                let key = match &resp {
                    Response::Status { shard, shards, .. }
                    | Response::Stats { shard, shards, .. } => {
                        want = (*shards).max(1) as usize;
                        *shard
                    }
                    _ => rows.len() as u64,
                };
                if seen_shards.contains(&key) {
                    continue;
                }
                seen_shards.push(key);
                rows.push(resp);
                if rows.len() >= want {
                    return Ok(rows);
                }
            }
            if !rows.is_empty() {
                return Ok(rows);
            }
        }
        self.stats.rpc_failures += 1;
        Err(DlogError::ServerUnavailable { server })
    }

    fn dispatch(
        &mut self,
        from: NodeAddr,
        msg: Message,
        rpc: Option<(u64, &mut Option<Response>)>,
    ) {
        self.stats.packets_in += 1;
        let server = self.rev.get(&from).copied();
        match msg {
            Message::NewHighLsn { lsn, .. } => {
                if let Some(s) = server {
                    self.stats.acks_in += 1;
                    let e = self.acks.entry(s).or_insert(Lsn::ZERO);
                    *e = (*e).max(lsn);
                }
            }
            Message::MissingInterval { lo, hi, .. } => {
                if let Some(s) = server {
                    self.stats.naks_in += 1;
                    self.naks.push_back(Nak { server: s, lo, hi });
                }
            }
            Message::Response { id, body } => {
                if let Some((want, slot)) = rpc {
                    if id == want {
                        *slot = Some(body);
                    }
                    // Stale response to a retried/abandoned RPC: drop.
                }
            }
            _ => {} // server-bound traffic echoed back: ignore
        }
    }

    fn addr_of(&self, server: ServerId) -> Result<NodeAddr> {
        self.addrs
            .get(&server)
            .copied()
            .ok_or(DlogError::ServerUnavailable { server })
    }
}
