//! Log repair — §5.3's "repair of a log when one redundant copy is lost".
//!
//! When a log server is lost for good (media failure), the records it
//! held survive on their other holders, but with reduced redundancy. The
//! repair operation restores the invariant "every record on N live
//! servers": it re-reads every under-replicated record from a surviving
//! holder and re-replicates it under a fresh crash epoch using the same
//! `CopyLog` / `InstallCopies` machinery the restart procedure uses — a
//! higher-epoch copy wins every future interval-list merge, so the
//! repaired replicas become the record's authoritative homes.
//!
//! Repair runs on the (single) owning client, between its own writes.

use dlog_net::wire::{Request, Response};
use dlog_net::Endpoint;
use dlog_types::interval::MergedView;
use dlog_types::{DlogError, IntervalList, LogRecord, Lsn, Result, ServerId};

use crate::client::ReplicatedLog;
use crate::epoch::EpochGenerator;

/// Outcome of a repair pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Log servers that answered the liveness probe.
    pub live_servers: usize,
    /// Records examined (the whole merged log).
    pub records_examined: u64,
    /// Records found on fewer than N live servers.
    pub under_replicated: u64,
    /// Records re-replicated.
    pub records_copied: u64,
}

impl<E: Endpoint> ReplicatedLog<E> {
    /// Repair the log: ensure every record is stored on at least N *live*
    /// servers, re-replicating under-replicated records under a fresh
    /// epoch.
    ///
    /// Requires a quiescent client: all writes forced
    /// ([`ReplicatedLog::force`]) before repairing.
    ///
    /// # Errors
    /// Fails when unforced records are pending, when fewer than the init
    /// quorum of servers respond (the survivors cannot prove coverage), or
    /// when a record has lost *all* its copies.
    pub fn repair(&mut self) -> Result<RepairReport> {
        self.ensure_initialized()?;
        if self.has_pending_records() {
            return Err(DlogError::Protocol(
                "repair requires a quiescent log: force() first".into(),
            ));
        }
        let n = self.options().config.n;
        let need = self.options().config.init_quorum();

        // 1. Probe: which servers are alive, and what do they hold?
        let me = self.client_id();
        let mut lists: Vec<(ServerId, IntervalList)> = Vec::new();
        for &s in &self.options().config.servers.clone() {
            if let Ok(Response::Intervals { intervals }) =
                self.net_mut().rpc(s, Request::IntervalList { client: me })
            {
                lists.push((s, intervals));
            }
        }
        if lists.len() < need {
            return Err(DlogError::QuorumUnavailable {
                operation: "repair",
                needed: need,
                available: lists.len(),
            });
        }
        let live: Vec<ServerId> = lists.iter().map(|(s, _)| *s).collect();
        let view = MergedView::merge(&lists);

        let mut report = RepairReport {
            live_servers: live.len(),
            ..RepairReport::default()
        };

        // 2. Find under-replicated ranges.
        let mut to_copy: Vec<(Lsn, Vec<ServerId>)> = Vec::new();
        for seg in view.segments() {
            for lsn in seg.lo.0..=seg.hi.0 {
                report.records_examined += 1;
                // seg.servers are holders among the *live* respondents.
                if seg.servers.len() < n {
                    report.under_replicated += 1;
                    to_copy.push((Lsn(lsn), seg.servers.clone()));
                }
            }
        }
        if to_copy.is_empty() {
            return Ok(report);
        }

        // 3. Fresh epoch strictly above everything in use.
        let reps = if self.options().epoch_representatives.is_empty() {
            self.options().config.servers.clone()
        } else {
            self.options().epoch_representatives.clone()
        };
        let generator = EpochGenerator::new(self.client_id().0, reps);
        let mut repair_epoch = generator.new_epoch(self.net_mut())?;
        while repair_epoch <= self.epoch() {
            repair_epoch = generator.new_epoch(self.net_mut())?;
        }

        // 4. Re-replicate each record to N live servers (preferring its
        // current holders so data movement is minimal, then filling with
        // other live servers).
        let mut staged_on: Vec<ServerId> = Vec::new();
        for (lsn, holders) in &to_copy {
            let record = self.fetch_for_repair(*lsn, holders)?;
            let mut targets: Vec<ServerId> = holders.clone();
            for &s in &live {
                if targets.len() >= n {
                    break;
                }
                if !targets.contains(&s) {
                    targets.push(s);
                }
            }
            if targets.len() < n {
                return Err(DlogError::QuorumUnavailable {
                    operation: "repair re-replication",
                    needed: n,
                    available: targets.len(),
                });
            }
            let copy = LogRecord {
                lsn: *lsn,
                epoch: repair_epoch,
                present: record.present,
                data: record.data,
            };
            for &t in &targets {
                match self.net_mut().rpc(
                    t,
                    Request::CopyLog {
                        client: me,
                        epoch: repair_epoch,
                        records: vec![copy.clone()],
                    },
                )? {
                    Response::Ok => {
                        if !staged_on.contains(&t) {
                            staged_on.push(t);
                        }
                    }
                    other => {
                        return Err(DlogError::Protocol(format!(
                            "repair CopyLog on {t}: unexpected {other:?}"
                        )))
                    }
                }
            }
            report.records_copied += 1;
        }

        // 5. Atomically install on every touched server.
        for &t in &staged_on {
            match self.net_mut().rpc(
                t,
                Request::InstallCopies {
                    client: me,
                    epoch: repair_epoch,
                },
            )? {
                Response::Ok => {}
                other => {
                    return Err(DlogError::Protocol(format!(
                        "repair InstallCopies on {t}: unexpected {other:?}"
                    )))
                }
            }
        }

        // 6. Adopt the repair epoch for future writes and re-anchor the
        // stream on the current targets (their last interval is now the
        // repair epoch, so the next write needs a declared new interval).
        self.adopt_epoch_after_repair(repair_epoch)?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    // Repair is exercised end-to-end in `tests/repair.rs` (it needs a
    // live cluster); unit coverage of the helpers lives in client.rs.
}
