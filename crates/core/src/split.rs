//! Log-record splitting and undo caching (§5.2).
//!
//! "Often, log records written by a recovery manager contain independent
//! redo and undo components. The redo component must be written stably to
//! the log before transaction commit. The undo component does not need to
//! be written until just before the pages referenced are written to
//! non-volatile storage. ... The volume of logged data may be reduced if
//! log records can be *split*: redo components are sent to log servers as
//! they are generated; undo components are *cached* in virtual memory at
//! client nodes."
//!
//! Cached undo components are released at commit (never logged at all),
//! spilled to the log when their page is about to be cleaned or when the
//! cache overflows, and consumed locally on abort — which both saves log
//! volume and turns aborts into local operations ("the cached log records
//! will speed up aborts and relieve disk arm movement contention on log
//! servers because log reads will go to the caches at the clients").

use std::collections::VecDeque;

use dlog_types::{LogData, Lsn, Result};

/// Transaction identifier within one client node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxnId(pub u64);

/// Anything that accepts log records; implemented by
/// [`crate::ReplicatedLog`] and by the local duplexed log baseline.
pub trait LogSink {
    /// Append a record (buffered).
    ///
    /// # Errors
    /// Propagates sink failures.
    fn write(&mut self, data: LogData) -> Result<Lsn>;

    /// Make everything appended so far durable.
    ///
    /// # Errors
    /// Propagates sink failures.
    fn force(&mut self) -> Result<Lsn>;
}

impl<E: dlog_net::Endpoint> LogSink for crate::ReplicatedLog<E> {
    fn write(&mut self, data: LogData) -> Result<Lsn> {
        crate::ReplicatedLog::write(self, data)
    }

    fn force(&mut self) -> Result<Lsn> {
        crate::ReplicatedLog::force(self)
    }
}

/// A split-record as encoded into the log stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SplitRecord {
    /// Redo component: must be durable before commit.
    Redo {
        /// Owning transaction.
        txn: TxnId,
        /// Page the update applies to.
        page: u64,
        /// After-image bytes.
        data: LogData,
    },
    /// Undo component: logged only when spilled (page cleaning or cache
    /// pressure).
    Undo {
        /// Owning transaction.
        txn: TxnId,
        /// Page the before-image restores.
        page: u64,
        /// Before-image bytes.
        data: LogData,
    },
    /// Commit record (forced).
    Commit {
        /// Committing transaction.
        txn: TxnId,
    },
    /// Abort record.
    Abort {
        /// Aborting transaction.
        txn: TxnId,
    },
    /// Partial rollback: annul the transaction's updates logged after its
    /// savepoint `ordinal` (§2's long design transactions "use frequent
    /// save points" precisely so aborts need not discard everything).
    RollbackTo {
        /// Rolling-back transaction.
        txn: TxnId,
        /// Savepoint ordinal to rewind to.
        ordinal: u32,
    },
}

impl SplitRecord {
    /// Encode to log-record payload bytes.
    #[must_use]
    pub fn encode(&self) -> LogData {
        let mut out = Vec::new();
        match self {
            SplitRecord::Redo { txn, page, data } => {
                out.push(1);
                out.extend_from_slice(&txn.0.to_le_bytes());
                out.extend_from_slice(&page.to_le_bytes());
                out.extend_from_slice(data.as_bytes());
            }
            SplitRecord::Undo { txn, page, data } => {
                out.push(2);
                out.extend_from_slice(&txn.0.to_le_bytes());
                out.extend_from_slice(&page.to_le_bytes());
                out.extend_from_slice(data.as_bytes());
            }
            SplitRecord::Commit { txn } => {
                out.push(3);
                out.extend_from_slice(&txn.0.to_le_bytes());
            }
            SplitRecord::Abort { txn } => {
                out.push(4);
                out.extend_from_slice(&txn.0.to_le_bytes());
            }
            SplitRecord::RollbackTo { txn, ordinal } => {
                out.push(5);
                out.extend_from_slice(&txn.0.to_le_bytes());
                out.extend_from_slice(&ordinal.to_le_bytes());
            }
        }
        LogData::from(out)
    }

    /// Decode from payload bytes.
    #[must_use]
    pub fn decode(data: &LogData) -> Option<SplitRecord> {
        let b = data.as_bytes();
        let kind = *b.first()?;
        let txn = TxnId(u64::from_le_bytes(b.get(1..9)?.try_into().ok()?));
        match kind {
            1 | 2 => {
                let page = u64::from_le_bytes(b.get(9..17)?.try_into().ok()?);
                let payload = LogData::from(b.get(17..)?);
                Some(if kind == 1 {
                    SplitRecord::Redo {
                        txn,
                        page,
                        data: payload,
                    }
                } else {
                    SplitRecord::Undo {
                        txn,
                        page,
                        data: payload,
                    }
                })
            }
            3 => Some(SplitRecord::Commit { txn }),
            4 => Some(SplitRecord::Abort { txn }),
            5 => {
                let ordinal = u32::from_le_bytes(b.get(9..13)?.try_into().ok()?);
                Some(SplitRecord::RollbackTo { txn, ordinal })
            }
            _ => None,
        }
    }
}

/// A cached undo component.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UndoEntry {
    /// Owning transaction.
    pub txn: TxnId,
    /// Page the before-image restores.
    pub page: u64,
    /// Before-image bytes.
    pub data: LogData,
}

/// Splitting statistics (experiment E9).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SplitStats {
    /// Redo bytes sent to the log.
    pub redo_bytes_logged: u64,
    /// Undo bytes spilled to the log (page cleaning / cache pressure).
    pub undo_bytes_logged: u64,
    /// Undo bytes released at commit without ever being logged.
    pub undo_bytes_saved: u64,
    /// Aborts satisfied entirely from the cache (no server reads).
    pub local_aborts: u64,
    /// Aborts that needed spilled undo records from the log.
    pub remote_aborts: u64,
    /// Undo entries spilled due to cache pressure.
    pub cache_spills: u64,
    /// Undo entries spilled because their page was cleaned.
    pub page_clean_spills: u64,
}

/// The splitting layer over a log sink.
pub struct SplitLogger<S: LogSink> {
    sink: S,
    cache: VecDeque<UndoEntry>,
    cache_bytes: usize,
    budget: usize,
    /// Transactions with at least one spilled undo component: their aborts
    /// need the log, not just the cache.
    spilled_txns: Vec<u64>,
    stats: SplitStats,
}

impl<S: LogSink> SplitLogger<S> {
    /// Wrap `sink` with an undo cache of `budget` bytes.
    #[must_use]
    pub fn new(sink: S, budget: usize) -> Self {
        SplitLogger {
            sink,
            cache: VecDeque::new(),
            cache_bytes: 0,
            budget,
            spilled_txns: Vec::new(),
            stats: SplitStats::default(),
        }
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> SplitStats {
        self.stats
    }

    /// Access the wrapped sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Bytes currently cached.
    #[must_use]
    pub fn cached_bytes(&self) -> usize {
        self.cache_bytes
    }

    /// Log an update: the redo component goes to the log immediately, the
    /// undo component enters the cache.
    ///
    /// # Errors
    /// Propagates sink failures.
    pub fn update(
        &mut self,
        txn: TxnId,
        page: u64,
        redo: impl Into<LogData>,
        undo: impl Into<LogData>,
    ) -> Result<Lsn> {
        let redo = redo.into();
        let undo = undo.into();
        self.stats.redo_bytes_logged += redo.len() as u64;
        let lsn = self.sink.write(
            SplitRecord::Redo {
                txn,
                page,
                data: redo,
            }
            .encode(),
        )?;
        self.cache_bytes += undo.len();
        self.cache.push_back(UndoEntry {
            txn,
            page,
            data: undo,
        });
        while self.cache_bytes > self.budget {
            let entry = self.cache.pop_front().expect("cache nonempty over budget");
            self.spill(&entry)?;
            self.stats.cache_spills += 1;
        }
        Ok(lsn)
    }

    /// Commit: write and force the commit record, then release the
    /// transaction's cached undo components — they are never logged.
    ///
    /// # Errors
    /// Propagates sink failures.
    pub fn commit(&mut self, txn: TxnId) -> Result<Lsn> {
        self.sink.write(SplitRecord::Commit { txn }.encode())?;
        let lsn = self.sink.force()?;
        let saved: u64 = self
            .cache
            .iter()
            .filter(|e| e.txn == txn)
            .map(|e| e.data.len() as u64)
            .sum();
        self.stats.undo_bytes_saved += saved;
        self.drop_txn(txn);
        Ok(lsn)
    }

    /// Abort: return the cached undo components (newest first) for local
    /// rollback. When some components were spilled, the caller must also
    /// scan the log; the second element reports how many bytes were
    /// cached vs. the transaction's whole undo volume is unknown here, so
    /// the flag simply says whether the abort was fully local.
    ///
    /// # Errors
    /// Propagates sink failures (the abort record is written, unforced).
    pub fn abort(&mut self, txn: TxnId) -> Result<(Vec<UndoEntry>, bool)> {
        self.sink.write(SplitRecord::Abort { txn }.encode())?;
        let mut entries: Vec<UndoEntry> = self
            .cache
            .iter()
            .filter(|e| e.txn == txn)
            .cloned()
            .collect();
        entries.reverse(); // undo newest-first
        self.drop_txn(txn);
        // If every update of the txn is still cached, the abort is local.
        // We track spills per entry implicitly: a spilled entry left the
        // cache, so "fully local" means no spill ever touched this txn.
        let fully_local = !self.spilled_txns.contains(&txn.0);
        self.spilled_txns.retain(|&t| t != txn.0);
        if fully_local {
            self.stats.local_aborts += 1;
        } else {
            self.stats.remote_aborts += 1;
        }
        Ok((entries, fully_local))
    }

    /// The buffer manager is about to clean `page`: spill every cached
    /// undo component referencing it (WAL rule, §5.2).
    ///
    /// # Errors
    /// Propagates sink failures. Forces the log before returning.
    pub fn clean_page(&mut self, page: u64) -> Result<()> {
        let mut keep = VecDeque::with_capacity(self.cache.len());
        let mut spilled_any = false;
        while let Some(entry) = self.cache.pop_front() {
            if entry.page == page {
                self.spill(&entry)?;
                self.stats.page_clean_spills += 1;
                spilled_any = true;
            } else {
                keep.push_back(entry);
            }
        }
        self.cache = keep;
        self.cache_bytes = self.cache.iter().map(|e| e.data.len()).sum();
        if spilled_any {
            self.sink.force()?;
        }
        Ok(())
    }

    /// Partial rollback support: remove and return the newest `n` cached
    /// undo entries of `txn` (newest first), for local unapplication.
    /// Fewer may be returned when some entries were spilled.
    pub fn take_newest(&mut self, txn: TxnId, n: usize) -> Vec<UndoEntry> {
        let mut taken = Vec::with_capacity(n);
        let mut idx = self.cache.len();
        while idx > 0 && taken.len() < n {
            idx -= 1;
            if self.cache[idx].txn == txn {
                let entry = self.cache.remove(idx).expect("index in range");
                self.cache_bytes -= entry.data.len();
                taken.push(entry);
            }
        }
        taken
    }

    /// Log a partial-rollback record for `txn` back to savepoint
    /// `ordinal`.
    ///
    /// # Errors
    /// Propagates sink failures.
    pub fn rollback_to(&mut self, txn: TxnId, ordinal: u32) -> Result<Lsn> {
        self.sink
            .write(SplitRecord::RollbackTo { txn, ordinal }.encode())
    }

    fn spill(&mut self, entry: &UndoEntry) -> Result<()> {
        self.cache_bytes -= entry.data.len();
        self.stats.undo_bytes_logged += entry.data.len() as u64;
        if !self.spilled_txns.contains(&entry.txn.0) {
            self.spilled_txns.push(entry.txn.0);
        }
        self.sink.write(
            SplitRecord::Undo {
                txn: entry.txn,
                page: entry.page,
                data: entry.data.clone(),
            }
            .encode(),
        )?;
        Ok(())
    }

    fn drop_txn(&mut self, txn: TxnId) {
        let mut bytes = 0usize;
        self.cache.retain(|e| {
            if e.txn == txn {
                bytes += e.data.len();
                false
            } else {
                true
            }
        });
        self.cache_bytes -= bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlog_types::DlogError;

    /// In-memory sink for unit tests.
    #[derive(Default)]
    struct VecSink {
        records: Vec<LogData>,
        forces: u64,
    }

    impl LogSink for VecSink {
        fn write(&mut self, data: LogData) -> Result<Lsn> {
            self.records.push(data);
            Ok(Lsn(self.records.len() as u64))
        }
        fn force(&mut self) -> Result<Lsn> {
            self.forces += 1;
            if self.records.is_empty() {
                return Err(DlogError::Protocol("force of empty log".into()));
            }
            Ok(Lsn(self.records.len() as u64))
        }
    }

    fn decode_all(sink: &VecSink) -> Vec<SplitRecord> {
        sink.records
            .iter()
            .map(|d| SplitRecord::decode(d).unwrap())
            .collect()
    }

    #[test]
    fn record_roundtrip() {
        for rec in [
            SplitRecord::Redo {
                txn: TxnId(1),
                page: 7,
                data: LogData::from(vec![1, 2, 3]),
            },
            SplitRecord::Undo {
                txn: TxnId(1),
                page: 7,
                data: LogData::from(vec![4, 5]),
            },
            SplitRecord::Commit { txn: TxnId(9) },
            SplitRecord::Abort { txn: TxnId(9) },
            SplitRecord::RollbackTo {
                txn: TxnId(9),
                ordinal: 3,
            },
        ] {
            assert_eq!(SplitRecord::decode(&rec.encode()), Some(rec));
        }
        assert_eq!(SplitRecord::decode(&LogData::from(vec![99u8; 20])), None);
        assert_eq!(SplitRecord::decode(&LogData::empty()), None);
    }

    #[test]
    fn commit_saves_undo_volume() {
        let mut s = SplitLogger::new(VecSink::default(), 1 << 20);
        let t = TxnId(1);
        s.update(t, 1, vec![1u8; 100], vec![2u8; 80]).unwrap();
        s.update(t, 2, vec![1u8; 100], vec![2u8; 80]).unwrap();
        s.commit(t).unwrap();
        let stats = s.stats();
        assert_eq!(stats.redo_bytes_logged, 200);
        assert_eq!(stats.undo_bytes_logged, 0);
        assert_eq!(stats.undo_bytes_saved, 160);
        // The log holds exactly 2 redos + 1 commit; no undo ever travelled.
        let recs = decode_all(&s.sink);
        assert_eq!(recs.len(), 3);
        assert!(matches!(recs[2], SplitRecord::Commit { .. }));
        assert_eq!(s.sink.forces, 1, "commit forces once");
        assert_eq!(s.cached_bytes(), 0);
    }

    #[test]
    fn abort_is_local_when_cached() {
        let mut s = SplitLogger::new(VecSink::default(), 1 << 20);
        let t = TxnId(2);
        s.update(t, 1, vec![0u8; 10], vec![11u8; 10]).unwrap();
        s.update(t, 2, vec![0u8; 10], vec![22u8; 10]).unwrap();
        let (undos, local) = s.abort(t).unwrap();
        assert!(local);
        assert_eq!(undos.len(), 2);
        // Newest first.
        assert_eq!(undos[0].page, 2);
        assert_eq!(undos[1].page, 1);
        assert_eq!(s.stats().local_aborts, 1);
        assert_eq!(s.cached_bytes(), 0);
    }

    #[test]
    fn page_clean_spills_undo_and_forces() {
        let mut s = SplitLogger::new(VecSink::default(), 1 << 20);
        let t = TxnId(3);
        s.update(t, 7, vec![0u8; 10], vec![1u8; 30]).unwrap();
        s.update(t, 8, vec![0u8; 10], vec![1u8; 30]).unwrap();
        s.clean_page(7).unwrap();
        assert_eq!(s.stats().page_clean_spills, 1);
        assert_eq!(s.stats().undo_bytes_logged, 30);
        assert_eq!(s.sink.forces, 1);
        assert_eq!(s.cached_bytes(), 30); // page 8's undo still cached
                                          // Cleaning an untouched page does nothing.
        s.clean_page(99).unwrap();
        assert_eq!(s.sink.forces, 1);
    }

    #[test]
    fn cache_pressure_spills_oldest() {
        let mut s = SplitLogger::new(VecSink::default(), 100);
        let t = TxnId(4);
        s.update(t, 1, vec![0u8; 1], vec![1u8; 60]).unwrap();
        s.update(t, 2, vec![0u8; 1], vec![1u8; 60]).unwrap(); // 120 > 100
        assert_eq!(s.stats().cache_spills, 1);
        assert_eq!(s.stats().undo_bytes_logged, 60);
        assert!(s.cached_bytes() <= 100);
        // The abort is no longer fully local.
        let (_, local) = s.abort(t).unwrap();
        assert!(!local);
        assert_eq!(s.stats().remote_aborts, 1);
    }

    #[test]
    fn independent_transactions() {
        let mut s = SplitLogger::new(VecSink::default(), 1 << 20);
        s.update(TxnId(1), 1, vec![0u8; 5], vec![1u8; 50]).unwrap();
        s.update(TxnId(2), 2, vec![0u8; 5], vec![1u8; 70]).unwrap();
        s.commit(TxnId(1)).unwrap();
        assert_eq!(s.stats().undo_bytes_saved, 50);
        assert_eq!(s.cached_bytes(), 70);
        let (undos, local) = s.abort(TxnId(2)).unwrap();
        assert!(local);
        assert_eq!(undos.len(), 1);
    }
}
