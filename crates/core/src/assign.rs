//! Load-assignment strategies (§5.4): how a client picks the N target
//! servers among the M available, and how it picks a replacement when a
//! target fails or sheds load.
//!
//! "Ideally, clients should distribute their load evenly among log servers
//! so as to minimize response times. ... Presumably, simple decentralized
//! strategies for assigning loads fairly can be used." The paper leaves
//! the strategy open; we implement the obvious candidates, and experiment
//! E10 compares their behaviour (server-switch rates, interval-list
//! lengths) under load shedding.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use dlog_types::{ClientId, LogId, ServerId};

/// A strategy for choosing write targets.
#[derive(Clone, Debug)]
pub enum AssignStrategy {
    /// Always prefer the lowest-numbered servers (pathological hot-spot
    /// baseline).
    Fixed,
    /// Deterministic spread: client *c* starts at position `c mod M` and
    /// takes N consecutive servers (round-robin striping). The simple
    /// decentralized strategy the paper anticipates.
    Striped,
    /// Uniformly random initial choice, seeded per client.
    Random {
        /// RNG seed (combined with the client id).
        seed: u64,
    },
}

impl AssignStrategy {
    /// Choose the initial N targets from `servers` for `client` —
    /// placement is keyed by the client's logical log, so the same
    /// choice falls out for any holder of that log.
    ///
    /// # Panics
    /// Panics if `n > servers.len()` (configurations are validated before
    /// this point).
    #[must_use]
    pub fn initial(&self, client: ClientId, servers: &[ServerId], n: usize) -> Vec<ServerId> {
        self.initial_for_log(LogId::for_client(client), servers, n)
    }

    /// [`AssignStrategy::initial`], keyed directly by logical log.
    ///
    /// # Panics
    /// Panics if `n > servers.len()`.
    #[must_use]
    pub fn initial_for_log(&self, log: LogId, servers: &[ServerId], n: usize) -> Vec<ServerId> {
        assert!(n <= servers.len(), "N exceeds M");
        match self {
            AssignStrategy::Fixed => servers[..n].to_vec(),
            AssignStrategy::Striped => {
                let m = servers.len();
                let start = (log.0 as usize) % m;
                (0..n).map(|i| servers[(start + i) % m]).collect()
            }
            AssignStrategy::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(seed ^ log.0.wrapping_mul(0x9E37_79B9));
                let mut pool = servers.to_vec();
                pool.shuffle(&mut rng);
                pool.truncate(n);
                pool
            }
        }
    }

    /// Choose a replacement for `failed`, avoiding `current` targets.
    /// Returns `None` when every server is already a target.
    #[must_use]
    pub fn replacement(
        &self,
        client: ClientId,
        servers: &[ServerId],
        current: &[ServerId],
        failed: ServerId,
    ) -> Option<ServerId> {
        self.replacement_for_log(LogId::for_client(client), servers, current, failed)
    }

    /// [`AssignStrategy::replacement`], keyed directly by logical log.
    #[must_use]
    pub fn replacement_for_log(
        &self,
        log: LogId,
        servers: &[ServerId],
        current: &[ServerId],
        failed: ServerId,
    ) -> Option<ServerId> {
        let m = servers.len();
        let start = servers.iter().position(|&s| s == failed).unwrap_or(0);
        // Walk the ring from the failed server, skipping current targets;
        // randomized strategies jitter the starting point by log.
        let offset = match self {
            AssignStrategy::Fixed => 1,
            AssignStrategy::Striped => 1,
            AssignStrategy::Random { seed } => 1 + ((seed ^ log.0) as usize % m.max(1)),
        };
        for i in 0..m {
            let cand = servers[(start + offset + i) % m];
            if cand != failed && !current.contains(&cand) {
                return Some(cand);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn servers(m: u64) -> Vec<ServerId> {
        (1..=m).map(ServerId).collect()
    }

    #[test]
    fn fixed_prefers_prefix() {
        let s = AssignStrategy::Fixed;
        assert_eq!(
            s.initial(ClientId(9), &servers(5), 2),
            vec![ServerId(1), ServerId(2)]
        );
    }

    #[test]
    fn striped_spreads_clients() {
        let s = AssignStrategy::Striped;
        let all = servers(5);
        let t0 = s.initial(ClientId(0), &all, 2);
        let t1 = s.initial(ClientId(1), &all, 2);
        let t4 = s.initial(ClientId(4), &all, 2);
        assert_eq!(t0, vec![ServerId(1), ServerId(2)]);
        assert_eq!(t1, vec![ServerId(2), ServerId(3)]);
        assert_eq!(t4, vec![ServerId(5), ServerId(1)]); // wraps
    }

    #[test]
    fn random_is_deterministic_per_seed_and_valid() {
        let s = AssignStrategy::Random { seed: 7 };
        let all = servers(6);
        let a = s.initial(ClientId(3), &all, 3);
        let b = s.initial(ClientId(3), &all, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "targets must be distinct");
    }

    #[test]
    fn replacement_avoids_current_and_failed() {
        let all = servers(4);
        for s in [
            AssignStrategy::Fixed,
            AssignStrategy::Striped,
            AssignStrategy::Random { seed: 3 },
        ] {
            let current = vec![ServerId(1), ServerId(2)];
            let r = s
                .replacement(ClientId(1), &all, &current, ServerId(2))
                .unwrap();
            assert!(!current.contains(&r));
            assert_ne!(r, ServerId(2));
        }
    }

    #[test]
    fn replacement_none_when_exhausted() {
        let all = servers(2);
        let s = AssignStrategy::Striped;
        let current = vec![ServerId(1), ServerId(2)];
        assert_eq!(
            s.replacement(ClientId(1), &all, &current, ServerId(1)),
            None
        );
    }
}
