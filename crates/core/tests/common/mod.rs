//! Shared harness: an in-process cluster of log servers behind a
//! fault-injectable network, plus client construction helpers.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dlog_core::assign::AssignStrategy;
use dlog_core::client::{ClientOptions, ReplicatedLog};
use dlog_core::net::ClientNet;
use dlog_net::wire::NodeAddr;
use dlog_net::{FaultPlan, MemEndpoint, MemNetwork};
use dlog_server::gen::GenStore;
use dlog_server::runner::ServerRunner;
use dlog_server::{LogServer, ServerConfig};
use dlog_storage::{LogStore, NvramDevice, StoreOptions};
use dlog_types::{ClientId, ReplicationConfig, ServerId};

static CASE: AtomicU64 = AtomicU64::new(0);

/// Server addresses are their ids; clients live at 1000+.
pub fn server_addr(s: ServerId) -> NodeAddr {
    NodeAddr(s.0)
}

pub fn client_addr(c: ClientId) -> NodeAddr {
    NodeAddr(1000 + c.0)
}

pub struct Cluster {
    pub net: MemNetwork,
    pub dirs: Vec<PathBuf>,
    pub servers: Vec<ServerId>,
    pub runners: HashMap<ServerId, ServerRunner>,
    pub nvrams: HashMap<ServerId, NvramDevice>,
    root: PathBuf,
}

impl Cluster {
    /// Start `m` servers on a network with the given fault plan.
    pub fn start(tag: &str, m: u64, plan: FaultPlan) -> Cluster {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir()
            .join("dlog-core-it")
            .join(format!("{tag}-{}-{case}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let net = MemNetwork::new(plan);
        let mut cluster = Cluster {
            net,
            dirs: Vec::new(),
            servers: (1..=m).map(ServerId).collect(),
            runners: HashMap::new(),
            nvrams: HashMap::new(),
            root,
        };
        for i in 1..=m {
            let sid = ServerId(i);
            let dir = cluster.root.join(format!("server-{i}"));
            cluster.dirs.push(dir.clone());
            let nvram = NvramDevice::new(1 << 20);
            cluster.nvrams.insert(sid, nvram.clone());
            cluster.boot_server(sid);
        }
        cluster
    }

    fn server_dir(&self, sid: ServerId) -> PathBuf {
        self.root.join(format!("server-{}", sid.0))
    }

    /// (Re)start one server from its on-disk + NVRAM state.
    pub fn boot_server(&mut self, sid: ServerId) {
        let dir = self.server_dir(sid);
        let opts = StoreOptions {
            fsync: false,
            checkpoint_every: 0,
            ..StoreOptions::default()
        };
        let nvram = self.nvrams.get(&sid).expect("nvram registered").clone();
        let store = LogStore::open(&dir, opts, nvram).expect("open store");
        let gens = GenStore::open(dir.join("gens")).expect("open gens");
        let server = LogServer::new(ServerConfig::new(sid), store, gens).expect("construct server");
        let ep = self.net.endpoint(server_addr(sid));
        self.net.set_down(server_addr(sid), false);
        self.runners.insert(sid, ServerRunner::spawn(server, ep));
    }

    /// Take a server down (network drop + thread stop).
    pub fn kill_server(&mut self, sid: ServerId) {
        self.net.set_down(server_addr(sid), true);
        if let Some(r) = self.runners.remove(&sid) {
            r.crash();
        }
    }

    /// Build a client over this cluster with the given N and δ.
    pub fn client(&self, id: u64, n: usize, delta: u64) -> ReplicatedLog<MemEndpoint> {
        let cid = ClientId(id);
        let ep = self.net.endpoint(client_addr(cid));
        let addrs: HashMap<ServerId, NodeAddr> =
            self.servers.iter().map(|&s| (s, server_addr(s))).collect();
        let net = ClientNet::new(ep, addrs);
        let config = ReplicationConfig::new(self.servers.clone(), n, delta).expect("valid config");
        let mut opts = ClientOptions::new(config);
        opts.strategy = AssignStrategy::Fixed; // deterministic targets for tests
        ReplicatedLog::new(cid, opts, net)
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for (_, r) in self.runners.drain() {
            drop(r);
        }
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Payload helper: a recognizable pattern per LSN.
pub fn payload(i: u64, len: usize) -> Vec<u8> {
    let mut v = vec![(i % 251) as u8; len];
    if let Some(first) = v.first_mut() {
        *first = (i % 127) as u8;
    }
    v
}
