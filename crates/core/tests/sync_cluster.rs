//! Deterministic protocol tests: the client runs against *synchronous*
//! sans-I/O log servers (no threads, no timing), with scripted fault
//! switches — pinpointing the NAK/resend/switch logic that the threaded
//! integration tests exercise under real concurrency.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dlog_core::assign::AssignStrategy;
use dlog_core::client::{ClientOptions, ReplicatedLog};
use dlog_core::net::ClientNet;
use dlog_net::wire::{NodeAddr, Packet};
use dlog_net::Endpoint;
use dlog_server::gen::GenStore;
use dlog_server::{LogServer, ServerConfig};
use dlog_storage::{LogStore, NvramDevice, StoreOptions};
use dlog_types::{ClientId, DlogError, Lsn, ReplicationConfig, ServerId};

/// Shared scripted-cluster state.
struct SyncClusterState {
    servers: HashMap<ServerId, LogServer>,
    /// Packets queued for the client.
    inbox: VecDeque<(NodeAddr, Packet)>,
    /// Servers currently unreachable.
    muted: HashSet<ServerId>,
    /// Drop the next `n` client->server packets (loss injection).
    drop_next: u32,
}

#[derive(Clone)]
struct SyncCluster {
    state: Arc<Mutex<SyncClusterState>>,
    root: PathBuf,
}

/// Endpoint that dispatches to the servers synchronously.
struct SyncEndpoint {
    cluster: SyncCluster,
}

impl Endpoint for SyncEndpoint {
    fn local_addr(&self) -> NodeAddr {
        NodeAddr(1000)
    }

    fn send(&self, to: NodeAddr, packet: &Packet) -> io::Result<()> {
        let mut st = self.cluster.state.lock().unwrap();
        if st.drop_next > 0 {
            st.drop_next -= 1;
            return Ok(());
        }
        let sid = ServerId(to.0);
        if st.muted.contains(&sid) {
            return Ok(()); // silently lost
        }
        // Round-trip through the wire format for fidelity.
        let decoded = Packet::decode(&packet.encode()).expect("wire roundtrip");
        let Some(server) = st.servers.get_mut(&sid) else {
            return Ok(());
        };
        let replies = server.handle(NodeAddr(1000), &decoded);
        for (addr, reply) in replies {
            st.inbox.push_back((
                to,
                Packet::decode(&reply.encode()).expect("reply roundtrip"),
            ));
            debug_assert_eq!(addr, NodeAddr(1000));
        }
        Ok(())
    }

    fn recv(&self, _timeout: Duration) -> io::Result<Option<(NodeAddr, Packet)>> {
        Ok(self.cluster.state.lock().unwrap().inbox.pop_front())
    }
}

impl SyncCluster {
    fn start(tag: &str, m: u64) -> SyncCluster {
        let root = std::env::temp_dir()
            .join("dlog-sync-cluster")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut servers = HashMap::new();
        for i in 1..=m {
            let sid = ServerId(i);
            let dir = root.join(format!("server-{i}"));
            let opts = StoreOptions {
                fsync: false,
                checkpoint_every: 0,
                ..StoreOptions::default()
            };
            let store = LogStore::open(&dir, opts, NvramDevice::new(1 << 20)).unwrap();
            let gens = GenStore::open(dir.join("gens")).unwrap();
            servers.insert(
                sid,
                LogServer::new(ServerConfig::new(sid), store, gens).unwrap(),
            );
        }
        SyncCluster {
            state: Arc::new(Mutex::new(SyncClusterState {
                servers,
                inbox: VecDeque::new(),
                muted: HashSet::new(),
                drop_next: 0,
            })),
            root,
        }
    }

    fn client(&self, n: usize, delta: u64) -> ReplicatedLog<SyncEndpoint> {
        let m = self.state.lock().unwrap().servers.len() as u64;
        let ids: Vec<ServerId> = (1..=m).map(ServerId).collect();
        let addrs: HashMap<ServerId, NodeAddr> = ids.iter().map(|&s| (s, NodeAddr(s.0))).collect();
        let ep = SyncEndpoint {
            cluster: self.clone(),
        };
        let mut net = ClientNet::new(ep, addrs);
        // Everything is synchronous: zero waiting.
        net.rpc_timeout = Duration::from_millis(1);
        net.rpc_retries = 1;
        let config = ReplicationConfig::new(ids, n, delta).unwrap();
        let mut opts = ClientOptions::new(config);
        opts.strategy = AssignStrategy::Fixed;
        opts.ack_timeout = Duration::from_millis(1);
        opts.force_retries = 1;
        ReplicatedLog::new(ClientId(1), opts, net)
    }

    fn mute(&self, s: ServerId) {
        self.state.lock().unwrap().muted.insert(s);
    }

    fn unmute(&self, s: ServerId) {
        self.state.lock().unwrap().muted.remove(&s);
    }

    fn drop_next(&self, n: u32) {
        self.state.lock().unwrap().drop_next = n;
    }

    fn server_stats(&self, s: ServerId) -> dlog_server::ServerStats {
        self.state.lock().unwrap().servers.get(&s).unwrap().stats()
    }
}

impl Drop for SyncCluster {
    fn drop(&mut self) {
        if Arc::strong_count(&self.state) == 1 {
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }
}

#[test]
fn deterministic_roundtrip() {
    let cluster = SyncCluster::start("roundtrip", 3);
    let mut log = cluster.client(2, 4);
    log.initialize().unwrap();
    for i in 1..=10u64 {
        log.write(vec![i as u8; 30]).unwrap();
    }
    assert_eq!(log.force().unwrap(), Lsn(10));
    for i in 1..=10u64 {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            vec![i as u8; 30].as_slice()
        );
    }
}

#[test]
fn lost_batch_is_naked_and_resent() {
    let cluster = SyncCluster::start("nak", 3);
    let mut log = cluster.client(2, 4);
    log.initialize().unwrap();
    log.write(vec![1u8; 20]).unwrap();
    log.force().unwrap();

    // Lose the next batch to BOTH targets (2 packets), then the following
    // force triggers the gap NAK path on the servers.
    cluster.drop_next(2);
    log.write(vec![2u8; 20]).unwrap();
    log.flush().unwrap(); // silently lost
    log.write(vec![3u8; 20]).unwrap();
    log.force().unwrap(); // servers see a gap, NAK, client resends

    let naks =
        cluster.server_stats(ServerId(1)).naks_sent + cluster.server_stats(ServerId(2)).naks_sent;
    assert!(naks >= 1, "servers must NAK the gap");
    assert!(log.stats().resends >= 1, "client must resend");
    for i in 1..=3u64 {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            vec![i as u8; 20].as_slice()
        );
    }
}

#[test]
fn silent_server_causes_switch_with_new_interval() {
    let cluster = SyncCluster::start("switch", 3);
    let mut log = cluster.client(2, 4);
    log.initialize().unwrap();
    log.write(vec![1u8; 20]).unwrap();
    log.force().unwrap();
    let victim = log.targets()[1];

    cluster.mute(victim);
    log.write(vec![2u8; 20]).unwrap();
    log.force().unwrap();
    assert!(log.stats().switches >= 1);
    assert!(!log.targets().contains(&victim));
    // The replacement (server 3) holds a fresh interval (NewInterval path).
    let s3 = ServerId(3);
    assert!(log.targets().contains(&s3));
    assert!(cluster.server_stats(s3).records_stored >= 1);

    cluster.unmute(victim);
    for i in 1..=2u64 {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            vec![i as u8; 20].as_slice()
        );
    }
}

#[test]
fn duplicate_force_is_idempotent() {
    let cluster = SyncCluster::start("dupforce", 3);
    let mut log = cluster.client(2, 4);
    log.initialize().unwrap();
    log.write(vec![1u8; 20]).unwrap();
    log.force().unwrap();
    log.force().unwrap(); // nothing new: no-op
    log.force().unwrap();
    let stored = cluster.server_stats(ServerId(1)).records_stored
        + cluster.server_stats(ServerId(2)).records_stored;
    assert_eq!(stored, 2, "one record on two servers, no duplicates");
}

#[test]
fn below_write_quorum_errors_cleanly() {
    let cluster = SyncCluster::start("noquorum", 3);
    let mut log = cluster.client(2, 4);
    log.initialize().unwrap();
    log.write(vec![1u8; 20]).unwrap();
    log.force().unwrap();

    // Mute two servers: only one remains — below N = 2.
    cluster.mute(ServerId(2));
    cluster.mute(ServerId(3));
    log.write(vec![2u8; 20]).unwrap();
    match log.force() {
        Err(DlogError::QuorumUnavailable { .. }) => {}
        other => panic!("expected quorum failure, got {other:?}"),
    }

    // Healing lets a later force complete (the record is still queued).
    cluster.unmute(ServerId(2));
    cluster.unmute(ServerId(3));
    log.force().unwrap();
    assert_eq!(
        log.read(Lsn(2)).unwrap().as_bytes(),
        vec![2u8; 20].as_slice()
    );
}
