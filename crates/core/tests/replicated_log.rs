//! End-to-end tests of the replicated log against live in-process log
//! servers: the paper's §3.1 semantics, the §3.1.2 restart procedure, and
//! the §4.2 failure-handling protocol.

mod common;

use common::{payload, Cluster};
use dlog_net::FaultPlan;
use dlog_types::{DlogError, Lsn, ServerId};

#[test]
fn write_force_read_roundtrip() {
    let cluster = Cluster::start("roundtrip", 3, FaultPlan::reliable());
    let mut log = cluster.client(1, 2, 4);
    log.initialize().unwrap();

    let mut lsns = Vec::new();
    for i in 1..=20u64 {
        lsns.push(log.write(payload(i, 100)).unwrap());
    }
    assert_eq!(lsns.first(), Some(&Lsn(1)));
    assert_eq!(lsns.last(), Some(&Lsn(20)));
    let high = log.force().unwrap();
    assert_eq!(high, Lsn(20));
    assert_eq!(log.end_of_log().unwrap(), Lsn(20));

    for i in 1..=20u64 {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            payload(i, 100).as_slice()
        );
    }
    assert!(matches!(
        log.read(Lsn(21)),
        Err(DlogError::NoSuchRecord { .. })
    ));
    assert!(matches!(
        log.read(Lsn(0)),
        Err(DlogError::NoSuchRecord { .. })
    ));
}

#[test]
fn consecutive_lsns_across_forces() {
    let cluster = Cluster::start("consecutive", 3, FaultPlan::reliable());
    let mut log = cluster.client(1, 2, 2);
    log.initialize().unwrap();
    let mut prev = Lsn::ZERO;
    for i in 1..=30u64 {
        let lsn = log.write(payload(i, 40)).unwrap();
        assert!(prev.precedes(lsn), "WriteLog must return increasing LSNs");
        prev = lsn;
        if i % 7 == 0 {
            log.force().unwrap();
        }
    }
    log.force().unwrap();
}

#[test]
fn operations_require_initialization() {
    let cluster = Cluster::start("noinit", 3, FaultPlan::reliable());
    let mut log = cluster.client(1, 2, 4);
    assert!(matches!(
        log.write(vec![1u8]),
        Err(DlogError::NotInitialized)
    ));
    assert!(matches!(log.force(), Err(DlogError::NotInitialized)));
    assert!(matches!(log.read(Lsn(1)), Err(DlogError::NotInitialized)));
    assert!(matches!(log.end_of_log(), Err(DlogError::NotInitialized)));
}

#[test]
fn restart_preserves_log_and_masks_tail() {
    let cluster = Cluster::start("restart", 3, FaultPlan::reliable());
    let delta = 3u64;
    {
        let mut log = cluster.client(1, 2, delta);
        log.initialize().unwrap();
        for i in 1..=10u64 {
            log.write(payload(i, 80)).unwrap();
        }
        log.force().unwrap();
        // Client crashes here (dropped).
    }
    let mut log = cluster.client(1, 2, delta);
    log.initialize().unwrap();
    // Recovery appended δ not-present records after the old end (10).
    assert_eq!(log.end_of_log().unwrap(), Lsn(10 + delta));
    for i in 1..=10u64 {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            payload(i, 80).as_slice(),
            "lsn {i}"
        );
    }
    for i in 11..=(10 + delta) {
        assert!(
            matches!(log.read(Lsn(i)), Err(DlogError::NotPresent { .. })),
            "lsn {i} must be masked"
        );
    }
    // New writes continue after the masked range.
    let lsn = log.write(payload(99, 10)).unwrap();
    assert_eq!(lsn, Lsn(10 + delta + 1));
    log.force().unwrap();
    assert_eq!(
        log.read(lsn).unwrap().as_bytes(),
        payload(99, 10).as_slice()
    );
}

#[test]
fn epochs_increase_across_restarts() {
    let cluster = Cluster::start("epochs", 3, FaultPlan::reliable());
    let mut seen = Vec::new();
    for _ in 0..3 {
        let mut log = cluster.client(1, 2, 1);
        log.initialize().unwrap();
        log.write(vec![1u8; 10]).unwrap();
        log.force().unwrap();
        seen.push(log.epoch());
    }
    assert!(
        seen[0] < seen[1] && seen[1] < seen[2],
        "epochs must increase: {seen:?}"
    );
}

#[test]
fn partial_write_is_atomic_after_restart() {
    // A client streams records that reach only one of the two targets
    // (the other is partitioned), then crashes. After restart, the log
    // must be consistent: each LSN either reads back or is NotPresent /
    // NoSuchRecord — and stays that way.
    let cluster = Cluster::start("partial", 3, FaultPlan::reliable());
    {
        let mut log = cluster.client(1, 2, 8);
        log.initialize().unwrap();
        for i in 1..=5u64 {
            log.write(payload(i, 60)).unwrap();
        }
        log.force().unwrap(); // 1..=5 fully replicated

        // Cut the second target off, then stream more records without
        // waiting for completion.
        let t2 = log.targets()[1];
        cluster.net.partition(
            common::client_addr(log.client_id()),
            common::server_addr(t2),
        );
        for i in 6..=8u64 {
            log.write(payload(i, 60)).unwrap();
        }
        log.flush().unwrap(); // async: reaches target 1 only
        std::thread::sleep(std::time::Duration::from_millis(100));
        // Crash before the force completes.
    }
    let mut log = cluster.client(1, 2, 8);
    log.initialize().unwrap();
    let end = log.end_of_log().unwrap();
    // Records 1..=5 must have survived.
    for i in 1..=5u64 {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            payload(i, 60).as_slice(),
            "lsn {i}"
        );
    }
    // Everything between 6 and end is *consistently* readable or masked;
    // reading twice gives the same answer.
    for i in 6..=end.0 {
        let a = log.read(Lsn(i)).map(|d| d.as_bytes().to_vec());
        let b = log.read(Lsn(i)).map(|d| d.as_bytes().to_vec());
        match (&a, &b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y),
            (Err(DlogError::NotPresent { .. }), Err(DlogError::NotPresent { .. })) => {}
            other => panic!("inconsistent reads for lsn {i}: {other:?}"),
        }
    }
    // The log remains writable.
    log.write(vec![7u8; 10]).unwrap();
    log.force().unwrap();
}

#[test]
fn server_failure_triggers_switch() {
    let mut cluster = Cluster::start("switch", 4, FaultPlan::reliable());
    let mut log = cluster.client(1, 2, 4);
    log.initialize().unwrap();
    for i in 1..=5u64 {
        log.write(payload(i, 50)).unwrap();
    }
    log.force().unwrap();

    // Kill one of the targets mid-stream.
    let victim = log.targets()[0];
    cluster.kill_server(victim);
    for i in 6..=12u64 {
        log.write(payload(i, 50)).unwrap();
    }
    log.force().unwrap();
    assert!(
        log.stats().switches >= 1,
        "client must switch away from the dead server"
    );
    assert!(!log.targets().contains(&victim));

    // All records still readable (reads fail over to live holders).
    for i in 1..=12u64 {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            payload(i, 50).as_slice(),
            "lsn {i}"
        );
    }
}

#[test]
fn reads_fail_over_to_any_holder() {
    let mut cluster = Cluster::start("readover", 3, FaultPlan::reliable());
    let mut log = cluster.client(1, 2, 4);
    log.initialize().unwrap();
    for i in 1..=6u64 {
        log.write(payload(i, 70)).unwrap();
    }
    log.force().unwrap();
    // Down the first target; reads must come from the second.
    let t0 = log.targets()[0];
    cluster.kill_server(t0);
    for i in 1..=6u64 {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            payload(i, 70).as_slice()
        );
    }
}

#[test]
fn init_fails_below_quorum() {
    let mut cluster = Cluster::start("quorum", 3, FaultPlan::reliable());
    // M=3, N=2 ⇒ init quorum = 2. Kill two servers.
    cluster.kill_server(ServerId(1));
    cluster.kill_server(ServerId(2));
    let mut log = cluster.client(1, 2, 1);
    match log.initialize() {
        Err(DlogError::QuorumUnavailable {
            needed, available, ..
        }) => {
            assert_eq!(needed, 2);
            assert!(available < 2);
        }
        other => panic!("expected quorum failure, got {other:?}"),
    }
}

#[test]
fn survives_lossy_network() {
    // 5% loss + duplication + reordering: the NAK/retry machinery must
    // deliver every record to N servers anyway.
    let cluster = Cluster::start(
        "lossy",
        3,
        FaultPlan {
            loss: 0.05,
            duplicate: 0.03,
            reorder: 0.05,
            seed: 1234,
        },
    );
    let mut log = cluster.client(1, 2, 4);
    log.initialize().unwrap();
    for i in 1..=60u64 {
        log.write(payload(i, 64)).unwrap();
        if i % 5 == 0 {
            log.force().unwrap();
        }
    }
    log.force().unwrap();
    for i in 1..=60u64 {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            payload(i, 64).as_slice(),
            "lsn {i}"
        );
    }
}

#[test]
fn restart_after_lossy_run_is_consistent() {
    let cluster = Cluster::start(
        "lossyrestart",
        3,
        FaultPlan {
            loss: 0.08,
            duplicate: 0.02,
            reorder: 0.08,
            seed: 99,
        },
    );
    {
        let mut log = cluster.client(1, 2, 4);
        log.initialize().unwrap();
        for i in 1..=30u64 {
            log.write(payload(i, 64)).unwrap();
        }
        log.force().unwrap();
    }
    let mut log = cluster.client(1, 2, 4);
    log.initialize().unwrap();
    for i in 1..=30u64 {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            payload(i, 64).as_slice(),
            "lsn {i}"
        );
    }
}

#[test]
fn triple_replication() {
    let cluster = Cluster::start("triple", 5, FaultPlan::reliable());
    let mut log = cluster.client(1, 3, 2);
    log.initialize().unwrap();
    for i in 1..=10u64 {
        log.write(payload(i, 90)).unwrap();
    }
    log.force().unwrap();
    // Every record must be on 3 servers: check the view's holder counts.
    for i in 1..=10u64 {
        let (holders, _) = log.view().locate(Lsn(i)).expect("record in view");
        assert!(holders.len() >= 3, "lsn {i} on {} servers", holders.len());
    }
}

#[test]
fn buffered_records_readable_before_force() {
    let cluster = Cluster::start("buffered", 3, FaultPlan::reliable());
    let mut log = cluster.client(1, 2, 4);
    log.initialize().unwrap();
    let lsn = log.write(payload(1, 30)).unwrap();
    // Never flushed: served from the local buffer.
    assert_eq!(log.read(lsn).unwrap().as_bytes(), payload(1, 30).as_slice());
    assert!(log.stats().read_cache_hits >= 1);
}

#[test]
fn server_restart_preserves_its_copies() {
    // Stop a server gracefully, restart it, and confirm it still serves
    // its intervals (recovery of the store through the runner cycle).
    let mut cluster = Cluster::start("srvrestart", 3, FaultPlan::reliable());
    let mut log = cluster.client(1, 2, 2);
    log.initialize().unwrap();
    for i in 1..=8u64 {
        log.write(payload(i, 40)).unwrap();
    }
    log.force().unwrap();
    let t0 = log.targets()[0];
    let t1 = log.targets()[1];

    // Bounce t0, kill t1: reads must then be served by the restarted t0.
    cluster.kill_server(t0);
    cluster.boot_server(t0);
    cluster.kill_server(t1);
    for i in 1..=8u64 {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            payload(i, 40).as_slice(),
            "lsn {i}"
        );
    }
}
