//! Guarded little-endian byte readers.
//!
//! Every decode path in the workspace parses length-prefixed binary
//! formats from untrusted bytes (the wire, the disk, the archive). The
//! `panic-freedom` lint forbids `unwrap()` and bare indexing on those
//! paths, so the common "read a fixed-width integer at an offset"
//! operation lives here once, returning `None` on any out-of-bounds
//! access instead of panicking. Callers map `None` to their own
//! corruption error.

/// The byte at `off`, if in bounds.
#[must_use]
pub fn u8_at(b: &[u8], off: usize) -> Option<u8> {
    b.get(off).copied()
}

/// Little-endian `u32` at `off`, if all four bytes are in bounds.
#[must_use]
pub fn u32_le_at(b: &[u8], off: usize) -> Option<u32> {
    let s = b.get(off..off.checked_add(4)?)?;
    let arr: [u8; 4] = s.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

/// Little-endian `u64` at `off`, if all eight bytes are in bounds.
#[must_use]
pub fn u64_le_at(b: &[u8], off: usize) -> Option<u64> {
    let s = b.get(off..off.checked_add(8)?)?;
    let arr: [u8; 8] = s.try_into().ok()?;
    Some(u64::from_le_bytes(arr))
}

/// The subslice `b[off..off + len]`, if in bounds (overflow-safe).
#[must_use]
pub fn slice_at(b: &[u8], off: usize, len: usize) -> Option<&[u8]> {
    b.get(off..off.checked_add(len)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_bounds_reads() {
        let b = [1u8, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 9];
        assert_eq!(u8_at(&b, 12), Some(9));
        assert_eq!(u32_le_at(&b, 0), Some(1));
        assert_eq!(u64_le_at(&b, 4), Some(2));
        assert_eq!(slice_at(&b, 4, 2), Some(&b[4..6]));
    }

    #[test]
    fn out_of_bounds_is_none() {
        let b = [0u8; 8];
        assert_eq!(u8_at(&b, 8), None);
        assert_eq!(u32_le_at(&b, 5), None);
        assert_eq!(u64_le_at(&b, 1), None);
        assert_eq!(slice_at(&b, 4, 5), None);
        // Offset + len overflow must not panic.
        assert_eq!(u32_le_at(&b, usize::MAX), None);
        assert_eq!(slice_at(&b, usize::MAX, 2), None);
    }
}
