//! Log sequence numbers, epochs, and log records.

use std::fmt;
use std::sync::Arc;

/// A *log sequence number*: the position of a record in a replicated log.
///
/// LSNs are increasing integers assigned by `WriteLog` (§3.1). The first
/// record of a log has LSN 1; [`Lsn::ZERO`] is a sentinel meaning "before
/// the first record" and is never assigned to a record.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Lsn(pub u64);

impl Lsn {
    /// Sentinel preceding the first valid LSN.
    pub const ZERO: Lsn = Lsn(0);
    /// The LSN of the first record ever written to a log.
    pub const FIRST: Lsn = Lsn(1);
    /// Largest representable LSN.
    pub const MAX: Lsn = Lsn(u64::MAX);

    /// The next LSN in sequence.
    ///
    /// # Panics
    /// Panics on overflow (an append-only log of 2^64 records is
    /// unreachable in practice; overflow indicates a logic error).
    #[must_use]
    pub fn next(self) -> Lsn {
        Lsn(self.0.checked_add(1).expect("LSN overflow"))
    }

    /// The previous LSN, or `None` at [`Lsn::ZERO`].
    #[must_use]
    pub fn prev(self) -> Option<Lsn> {
        self.0.checked_sub(1).map(Lsn)
    }

    /// True if `self` immediately precedes `other`.
    #[must_use]
    pub fn precedes(self, other: Lsn) -> bool {
        self.0 + 1 == other.0
    }

    /// Number of LSNs in the closed range `self..=other`, or 0 if
    /// `other < self`.
    #[must_use]
    pub fn span_to(self, other: Lsn) -> u64 {
        other
            .0
            .saturating_sub(self.0)
            .saturating_add(u64::from(other.0 >= self.0))
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lsn({})", self.0)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Lsn {
    fn from(v: u64) -> Self {
        Lsn(v)
    }
}

/// A *crash epoch* number.
///
/// All log records written between two client restarts carry the same epoch
/// (§3.1.1). Epochs are obtained from the replicated increasing
/// unique-identifier generator of Appendix I and are strictly increasing
/// across restarts of one client, though not necessarily consecutive.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Epoch(pub u64);

impl Epoch {
    /// Sentinel: smaller than every epoch a generator can issue.
    pub const ZERO: Epoch = Epoch(0);

    /// The next epoch in sequence (generators may skip values; this is a
    /// convenience for tests and in-process generators).
    #[must_use]
    pub fn next(self) -> Epoch {
        Epoch(self.0.checked_add(1).expect("epoch overflow"))
    }
}

impl fmt::Debug for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Epoch({})", self.0)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Epoch {
    fn from(v: u64) -> Self {
        Epoch(v)
    }
}

/// Unique identifier of a stored record: the `<LSN, Epoch>` pair of §3.1.1.
///
/// Two stored records with the same LSN but different epochs can coexist on
/// one server (the higher epoch wins at merge time); the pair is unique.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RecordId {
    /// Position in the replicated log.
    pub lsn: Lsn,
    /// Crash epoch the record was written in.
    pub epoch: Epoch,
}

impl RecordId {
    /// Construct a record id.
    #[must_use]
    pub fn new(lsn: Lsn, epoch: Epoch) -> Self {
        RecordId { lsn, epoch }
    }
}

impl fmt::Debug for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{}>", self.lsn, self.epoch)
    }
}

/// Ordering for record ids follows server storage order: non-decreasing
/// LSN, ties broken by epoch. This matches the order in which a single
/// server writes records (§3.1.1: "successive records on a log server are
/// written with non-decreasing LSNs and non-decreasing epoch numbers").
impl PartialOrd for RecordId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RecordId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.lsn, self.epoch).cmp(&(other.lsn, other.epoch))
    }
}

/// Immutable, cheaply clonable log-record payload.
///
/// Log data is opaque to the logging service: "the data stored in a log
/// record depends on the precise recovery and transaction management
/// algorithms used by the client node" (§3.1). Payloads are shared between
/// the client's in-flight queue, its undo cache, and the wire encoder, so
/// they are reference counted.
///
/// A payload is a *view* into a shared buffer: `(Arc<Vec<u8>>, start,
/// len)`. The wire decoder exploits this to borrow record payloads
/// directly out of a pooled receive buffer ([`LogData::slice_of`])
/// instead of copying each record — the zero-copy receive path. The
/// buffer behind a view returns to its pool once every view on it is
/// dropped (pools reuse buffers whose `Arc` refcount is back to one).
#[derive(Clone)]
pub struct LogData {
    buf: Arc<Vec<u8>>,
    start: usize,
    len: usize,
}

/// Shared empty buffer so [`LogData::empty`] (and `Default`) never
/// allocate — not-present records are constructed on the recovery hot
/// path.
fn empty_buf() -> Arc<Vec<u8>> {
    static EMPTY: std::sync::OnceLock<Arc<Vec<u8>>> = std::sync::OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::default())))
}

impl LogData {
    /// Wrap a byte vector as log data.
    #[must_use]
    pub fn new(bytes: impl Into<Vec<u8>>) -> Self {
        let v = bytes.into();
        let len = v.len();
        LogData {
            buf: Arc::new(v),
            start: 0,
            len,
        }
    }

    /// Empty payload (used for records marked *not present*). Never
    /// allocates: all empty payloads share one static buffer.
    #[must_use]
    pub fn empty() -> Self {
        LogData {
            buf: empty_buf(),
            start: 0,
            len: 0,
        }
    }

    /// A zero-copy view of `buf[start..start + len]`, sharing ownership
    /// of the buffer. Returns `None` when the range is out of bounds.
    ///
    /// This is the receive path's borrow: the wire decoder hands out
    /// views into the receive buffer instead of copying each record's
    /// bytes.
    #[must_use]
    pub fn slice_of(buf: &Arc<Vec<u8>>, start: usize, len: usize) -> Option<Self> {
        let end = start.checked_add(len)?;
        if end > buf.len() {
            return None;
        }
        Some(LogData {
            buf: Arc::clone(buf),
            start,
            len,
        })
    }

    /// Another view of the same shared bytes. Semantically identical to
    /// `clone()`, but named for what it is: a refcount bump, never a
    /// byte copy or heap allocation — the form the hot-path allocation
    /// lint budget expects on ingest and response-assembly paths.
    #[must_use]
    pub fn share(&self) -> Self {
        LogData {
            buf: Arc::clone(&self.buf),
            start: self.start,
            len: self.len,
        }
    }

    /// The payload bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        // The range was validated at construction; the guarded access
        // keeps this panic-free by contract anyway.
        self.buf
            .get(self.start..self.start.saturating_add(self.len))
            .unwrap_or(&[])
    }

    /// Payload length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the payload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for LogData {
    fn default() -> Self {
        LogData::empty()
    }
}

/// Equality is over the payload *bytes*: two views of different buffers
/// with the same contents are equal (records survive re-encoding).
impl PartialEq for LogData {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for LogData {}

impl std::hash::Hash for LogData {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_bytes().hash(state);
    }
}

impl fmt::Debug for LogData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LogData({} bytes)", self.len)
    }
}

impl From<Vec<u8>> for LogData {
    fn from(v: Vec<u8>) -> Self {
        LogData::new(v)
    }
}

impl From<&[u8]> for LogData {
    fn from(v: &[u8]) -> Self {
        LogData::new(v.to_vec())
    }
}

impl AsRef<[u8]> for LogData {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

/// A log record as stored on a log server (§3.1.1).
///
/// In addition to the client-visible `(lsn, data)` pair, stored records
/// carry the crash [`Epoch`] they were written in and a **present flag**.
/// Records with `present == false` are written by the client-restart
/// recovery procedure to mask possibly-partially-written records; no data
/// need be stored for them.
#[derive(Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Position in the replicated log.
    pub lsn: Lsn,
    /// Crash epoch the record was written in.
    pub epoch: Epoch,
    /// Whether the record is *present* in the replicated log. Not-present
    /// records exist only to win merge votes against partially written
    /// records of earlier epochs.
    pub present: bool,
    /// Opaque payload (empty when `present` is false).
    pub data: LogData,
}

impl LogRecord {
    /// A present record carrying `data`.
    #[must_use]
    pub fn present(lsn: Lsn, epoch: Epoch, data: impl Into<LogData>) -> Self {
        LogRecord {
            lsn,
            epoch,
            present: true,
            data: data.into(),
        }
    }

    /// A non-allocating copy of this record: scalars are `Copy` and the
    /// payload is shared ([`LogData::share`]) rather than duplicated.
    /// Semantically identical to `clone()` — spelled differently so the
    /// hot-path allocation lint can tell the two apart.
    #[must_use]
    pub fn share(&self) -> Self {
        LogRecord {
            lsn: self.lsn,
            epoch: self.epoch,
            present: self.present,
            data: self.data.share(),
        }
    }

    /// A record marked *not present* (empty payload).
    #[must_use]
    pub fn not_present(lsn: Lsn, epoch: Epoch) -> Self {
        LogRecord {
            lsn,
            epoch,
            present: false,
            data: LogData::empty(),
        }
    }

    /// The record's unique `<LSN, Epoch>` identifier.
    #[must_use]
    pub fn id(&self) -> RecordId {
        RecordId::new(self.lsn, self.epoch)
    }
}

impl fmt::Debug for LogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LogRecord(<{},{}> {} {}B)",
            self.lsn,
            self.epoch,
            if self.present {
                "present"
            } else {
                "not-present"
            },
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsn_next_prev() {
        assert_eq!(Lsn::ZERO.next(), Lsn::FIRST);
        assert_eq!(Lsn(41).next(), Lsn(42));
        assert_eq!(Lsn(42).prev(), Some(Lsn(41)));
        assert_eq!(Lsn::ZERO.prev(), None);
    }

    #[test]
    fn lsn_precedes() {
        assert!(Lsn(1).precedes(Lsn(2)));
        assert!(!Lsn(1).precedes(Lsn(3)));
        assert!(!Lsn(2).precedes(Lsn(2)));
        assert!(!Lsn(3).precedes(Lsn(2)));
    }

    #[test]
    fn lsn_span() {
        assert_eq!(Lsn(3).span_to(Lsn(5)), 3);
        assert_eq!(Lsn(5).span_to(Lsn(5)), 1);
        assert_eq!(Lsn(6).span_to(Lsn(5)), 0);
    }

    #[test]
    #[should_panic(expected = "LSN overflow")]
    fn lsn_overflow_panics() {
        let _ = Lsn::MAX.next();
    }

    #[test]
    fn record_id_orders_by_lsn_then_epoch() {
        let a = RecordId::new(Lsn(3), Epoch(1));
        let b = RecordId::new(Lsn(3), Epoch(3));
        let c = RecordId::new(Lsn(4), Epoch(1));
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn log_data_sharing() {
        let d = LogData::from(vec![1u8, 2, 3]);
        let e = d.clone();
        assert_eq!(d.as_bytes(), e.as_bytes());
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert!(LogData::empty().is_empty());
    }

    #[test]
    fn record_constructors() {
        let r = LogRecord::present(Lsn(7), Epoch(2), vec![9u8; 100]);
        assert!(r.present);
        assert_eq!(r.data.len(), 100);
        assert_eq!(r.id(), RecordId::new(Lsn(7), Epoch(2)));

        let np = LogRecord::not_present(Lsn(8), Epoch(4));
        assert!(!np.present);
        assert!(np.data.is_empty());
    }
}
