//! Common types for the `dlog` distributed logging system.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: log sequence numbers ([`Lsn`]), crash epochs ([`Epoch`]),
//! node identifiers, log records with *present flags* ([`LogRecord`]), and
//! the *interval lists* ([`IntervalList`]) that log servers report to
//! restarting clients.
//!
//! The terminology follows §3.1 of Daniels, Spector & Thompson,
//! *Distributed Logging for Transaction Processing* (SIGMOD 1987):
//!
//! * a **replicated log** is an append-only sequence of records identified
//!   by increasing [`Lsn`]s, used by exactly one client node;
//! * records stored on a log server additionally carry an [`Epoch`] number
//!   (non-decreasing across client restarts) and a boolean **present flag**;
//! * a record is uniquely identified by an `<LSN, Epoch>` pair
//!   ([`RecordId`]);
//! * log servers group records into consecutive sequences with equal epoch
//!   ([`Interval`]) and report them via the `IntervalList` operation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod config;
pub mod error;
pub mod ids;
pub mod interval;
pub mod namebuf;
pub mod record;

pub use config::ReplicationConfig;
pub use error::{DlogError, Result};
pub use ids::{ClientId, LogId, ServerId};
pub use interval::{Interval, IntervalList};
pub use record::{Epoch, LogData, LogRecord, Lsn, RecordId};
