//! Error types shared across the workspace.

use std::fmt;
use std::io;

use crate::{Epoch, Lsn, ServerId};

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, DlogError>;

/// Errors surfaced by the distributed logging service.
#[derive(Debug)]
pub enum DlogError {
    /// `ReadLog` was called with an LSN that has never been returned by a
    /// preceding `WriteLog` (§3.1: "an exception is signaled").
    NoSuchRecord {
        /// The offending LSN.
        lsn: Lsn,
    },
    /// The record at this LSN exists on servers but is marked *not
    /// present*: it was masked by the client-restart recovery procedure and
    /// is not part of the replicated log.
    NotPresent {
        /// The masked LSN.
        lsn: Lsn,
    },
    /// Too few log servers responded to perform the operation (fewer than N
    /// for writes, fewer than M−N+1 for client initialization, none holding
    /// the record for reads).
    QuorumUnavailable {
        /// What was being attempted.
        operation: &'static str,
        /// How many servers were needed.
        needed: usize,
        /// How many were reachable.
        available: usize,
    },
    /// A server rejected an operation because it arrived with a stale epoch
    /// (smaller than one it has already stored for a later write).
    StaleEpoch {
        /// Epoch supplied by the caller.
        given: Epoch,
        /// Minimum epoch the server will accept.
        current: Epoch,
    },
    /// A specific server did not respond within the retry budget.
    ServerUnavailable {
        /// The unresponsive server.
        server: ServerId,
    },
    /// The on-disk log stream is corrupt (bad checksum, truncated frame,
    /// impossible ordering). Carries a human-readable description.
    Corrupt(String),
    /// A guarded NVRAM write presented a stale seal: foreign code wrote
    /// the device behind the store's back (§5.1). Structured so the hot
    /// insert path can construct it without formatting a message.
    GuardViolation {
        /// The seal the writer presented.
        presented: u64,
        /// The seal the device actually holds.
        current: u64,
    },
    /// The NVRAM buffer cannot accept an insert of this size. Structured
    /// so the hot insert path can construct it without formatting.
    NvramFull {
        /// Bytes the caller tried to insert.
        requested: usize,
        /// Bytes currently free.
        available: usize,
    },
    /// Protocol violation detected by the packet layer.
    Protocol(String),
    /// Invalid configuration (e.g. N > M, N = 0, δ = 0).
    Config(String),
    /// The client attempted an operation before `initialize` completed.
    /// The recovery manager "will not act on any log records prior to the
    /// completion of the recovery procedure" (§3.1.2).
    NotInitialized,
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for DlogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlogError::NoSuchRecord { lsn } => {
                write!(f, "no record with LSN {lsn} has been written")
            }
            DlogError::NotPresent { lsn } => {
                write!(f, "record {lsn} is marked not present in the replicated log")
            }
            DlogError::QuorumUnavailable { operation, needed, available } => write!(
                f,
                "{operation}: quorum unavailable ({available} of required {needed} servers reachable)"
            ),
            DlogError::StaleEpoch { given, current } => {
                write!(f, "stale epoch {given}; server requires at least {current}")
            }
            DlogError::ServerUnavailable { server } => {
                write!(f, "log server {server} is unavailable")
            }
            DlogError::Corrupt(msg) => write!(f, "log storage corrupt: {msg}"),
            DlogError::GuardViolation { presented, current } => write!(
                f,
                "nvram guard violation: presented seal {presented:#x}, device seal \
                 {current:#x} (foreign write detected)"
            ),
            DlogError::NvramFull { requested, available } => write!(
                f,
                "nvram full: requested {requested} bytes, {available} available"
            ),
            DlogError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            DlogError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            DlogError::NotInitialized => {
                write!(f, "replicated log used before client initialization completed")
            }
            DlogError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DlogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DlogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DlogError {
    fn from(e: io::Error) -> Self {
        DlogError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DlogError::NoSuchRecord { lsn: Lsn(9) };
        assert!(e.to_string().contains("LSN 9"));

        let e = DlogError::QuorumUnavailable {
            operation: "WriteLog",
            needed: 2,
            available: 1,
        };
        assert!(e.to_string().contains("WriteLog"));
        assert!(e.to_string().contains("1 of required 2"));

        let e = DlogError::StaleEpoch {
            given: Epoch(2),
            current: Epoch(5),
        };
        assert!(e.to_string().contains('2'));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn io_conversion_preserves_source() {
        let e: DlogError = io::Error::other("boom").into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("boom"));
    }
}
