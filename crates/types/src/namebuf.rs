//! Fixed-capacity, stack-allocated string formatting.
//!
//! The hot paths format small on-disk file names (`seg-00000042.seg`,
//! `gen-7.val`) on every segment open and generator write. Routing those
//! through `format!` costs a heap allocation per call; a [`NameBuf`]
//! holds the formatted text in an inline byte array instead, so name
//! construction is allocation-free. Overflow is reported through the
//! `fmt::Write` error path rather than by truncating silently — pick `N`
//! large enough for the worst case (a `u64` needs at most 20 digits).

use std::fmt::{self, Write as _};

/// A fixed-capacity string built with [`std::fmt::Write`].
#[derive(Debug, Clone, Copy)]
pub struct NameBuf<const N: usize> {
    buf: [u8; N],
    len: usize,
}

impl<const N: usize> NameBuf<N> {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> NameBuf<N> {
        NameBuf {
            buf: [0; N],
            len: 0,
        }
    }

    /// Format `args` into a fresh buffer. Returns `None` when the
    /// rendered text does not fit in `N` bytes.
    #[must_use]
    pub fn format(args: fmt::Arguments<'_>) -> Option<NameBuf<N>> {
        let mut out = NameBuf::new();
        out.write_fmt(args).ok()?;
        Some(out)
    }

    /// The formatted text.
    #[must_use]
    pub fn as_str(&self) -> &str {
        // The buffer only ever receives whole `&str`s, so the prefix is
        // valid UTF-8; the fallback is unreachable.
        self.buf
            .get(..self.len)
            .and_then(|b| std::str::from_utf8(b).ok())
            .unwrap_or("")
    }

    /// Length of the formatted text in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<const N: usize> Default for NameBuf<N> {
    fn default() -> NameBuf<N> {
        NameBuf::new()
    }
}

impl<const N: usize> fmt::Write for NameBuf<N> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        let end = self.len.checked_add(s.len()).ok_or(fmt::Error)?;
        let slot = self.buf.get_mut(self.len..end).ok_or(fmt::Error)?;
        slot.copy_from_slice(s.as_bytes());
        self.len = end;
        Ok(())
    }
}

impl<const N: usize> fmt::Display for NameBuf<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl<const N: usize> AsRef<str> for NameBuf<N> {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl<const N: usize> AsRef<std::path::Path> for NameBuf<N> {
    fn as_ref(&self) -> &std::path::Path {
        std::path::Path::new(self.as_str())
    }
}

/// Format into a [`NameBuf`], falling back to an empty buffer on
/// overflow. Use when the call site can prove the capacity bound (e.g. a
/// `u64` segment index renders in ≤ 20 digits).
#[macro_export]
macro_rules! namebuf {
    ($n:literal, $($arg:tt)*) => {
        $crate::namebuf::NameBuf::<$n>::format(core::format_args!($($arg)*))
            .unwrap_or_default()
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_inline() {
        let n: NameBuf<32> = namebuf!(32, "seg-{:08}.seg", 42u64);
        assert_eq!(n.as_str(), "seg-00000042.seg");
        assert_eq!(n.len(), 16);
        assert!(!n.is_empty());
    }

    #[test]
    fn max_u64_fits_in_32() {
        let n: NameBuf<32> = namebuf!(32, "seg-{:08}.seg", u64::MAX);
        assert_eq!(n.as_str(), format!("seg-{:08}.seg", u64::MAX));
    }

    #[test]
    fn overflow_is_empty_not_truncated() {
        let n: NameBuf<4> = namebuf!(4, "too long for four");
        assert!(n.is_empty());
        assert_eq!(n.as_str(), "");
    }

    #[test]
    fn as_ref_path_joins() {
        let n: NameBuf<32> = namebuf!(32, "gen-{}.val", 7u64);
        let p = std::path::Path::new("/tmp").join(n);
        assert_eq!(p, std::path::Path::new("/tmp/gen-7.val"));
    }
}
