//! Node identifiers.

use std::fmt;

/// Identifier of a transaction-processing client node.
///
/// A replicated log is used by exactly one client (§3.1); log servers key
/// all stored state by `ClientId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClientId(pub u64);

impl ClientId {
    /// Construct a client id.
    #[must_use]
    pub fn new(v: u64) -> Self {
        ClientId(v)
    }
}

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Client({})", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Identifier of a log-server node.
///
/// Clients address the M servers of a replicated-log configuration by
/// `ServerId`; transports map server ids to endpoints.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServerId(pub u64);

impl ServerId {
    /// Construct a server id.
    #[must_use]
    pub fn new(v: u64) -> Self {
        ServerId(v)
    }
}

impl fmt::Debug for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Server({})", self.0)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Identifier of a *logical log*: the routing key of the sharded server
/// core.
///
/// The paper binds one replicated log to one client node; the sharded
/// server multiplexes many logical logs over one process, hashing each
/// `LogId` to a shard at ingest. `LogId(0)` is reserved to mean "no
/// routing hint" on the wire — such packets fall back to a body-derived
/// key (or shard 0 for control traffic).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogId(pub u64);

impl LogId {
    /// The reserved "no routing hint" id.
    pub const NONE: LogId = LogId(0);

    /// Construct a logical-log id.
    #[must_use]
    pub fn new(v: u64) -> Self {
        LogId(v)
    }

    /// The logical log owned by a client node (the degenerate one-log-
    /// per-client mapping of §3.1, used until callers mint finer ids).
    #[must_use]
    pub fn for_client(client: ClientId) -> Self {
        LogId(client.0)
    }

    /// The shard this log hashes to among `shards` shards.
    ///
    /// Uses the splitmix64 finalizer so consecutive ids spread evenly;
    /// with `shards <= 1` every log lands on shard 0. The mapping is a
    /// pure function of `(self, shards)` — the router, the placement
    /// layer, and the model checker must all agree on it.
    #[must_use]
    pub fn shard(self, shards: usize) -> usize {
        if shards <= 1 {
            return 0;
        }
        let mut z = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % shards as u64) as usize
    }
}

impl fmt::Debug for LogId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Log({})", self.0)
    }
}

impl fmt::Display for LogId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ClientId(3).to_string(), "C3");
        assert_eq!(ServerId(5).to_string(), "S5");
        assert_eq!(LogId(7).to_string(), "L7");
        assert_eq!(format!("{:?}", ClientId(3)), "Client(3)");
        assert_eq!(format!("{:?}", ServerId(5)), "Server(5)");
        assert_eq!(format!("{:?}", LogId(7)), "Log(7)");
    }

    #[test]
    fn ordering() {
        assert!(ServerId(1) < ServerId(2));
        assert!(ClientId(1) < ClientId(2));
        assert!(LogId(1) < LogId(2));
    }

    #[test]
    fn shard_mapping_is_stable_and_bounded() {
        for id in 0..1000u64 {
            assert_eq!(LogId(id).shard(1), 0);
            let s = LogId(id).shard(4);
            assert!(s < 4);
            assert_eq!(s, LogId(id).shard(4), "mapping must be deterministic");
        }
    }

    #[test]
    fn shard_mapping_spreads_consecutive_ids() {
        // 256 consecutive logical logs over 4 shards: the splitmix64
        // finalizer must not leave any shard starved (a modulo of the
        // raw id would alias patterns like all-even ids onto 2 shards).
        let mut counts = [0usize; 4];
        for id in 1..=256u64 {
            counts[LogId(id).shard(4)] += 1;
        }
        for (shard, &n) in counts.iter().enumerate() {
            assert!(n >= 32, "shard {shard} starved: {counts:?}");
        }
    }
}
