//! Node identifiers.

use std::fmt;

/// Identifier of a transaction-processing client node.
///
/// A replicated log is used by exactly one client (§3.1); log servers key
/// all stored state by `ClientId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClientId(pub u64);

impl ClientId {
    /// Construct a client id.
    #[must_use]
    pub fn new(v: u64) -> Self {
        ClientId(v)
    }
}

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Client({})", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Identifier of a log-server node.
///
/// Clients address the M servers of a replicated-log configuration by
/// `ServerId`; transports map server ids to endpoints.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServerId(pub u64);

impl ServerId {
    /// Construct a server id.
    #[must_use]
    pub fn new(v: u64) -> Self {
        ServerId(v)
    }
}

impl fmt::Debug for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Server({})", self.0)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ClientId(3).to_string(), "C3");
        assert_eq!(ServerId(5).to_string(), "S5");
        assert_eq!(format!("{:?}", ClientId(3)), "Client(3)");
        assert_eq!(format!("{:?}", ServerId(5)), "Server(5)");
    }

    #[test]
    fn ordering() {
        assert!(ServerId(1) < ServerId(2));
        assert!(ClientId(1) < ClientId(2));
    }
}
