//! Replication configuration: the `M`, `N`, and δ parameters.

use crate::error::{DlogError, Result};
use crate::ServerId;

/// Parameters of a replicated log (§3.1, §4.2).
///
/// * `servers` — the `M` log servers available to the client;
/// * `n` — every record is written to `N` of them (`2 ≤ N ≤ M` in
///   practice; the paper constrains N "to values of two or three" for cost,
///   but any `1 ≤ N ≤ M` is accepted here, N = 1 being useful for tests);
/// * `delta` — the bound δ on records that may be in flight
///   (unacknowledged) at once, which is also the number of records the
///   restart procedure must rewrite (§4.2).
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReplicationConfig {
    /// The M log servers the client may use.
    pub servers: Vec<ServerId>,
    /// Replication degree N: copies per record.
    pub n: usize,
    /// Bound δ on simultaneously unacknowledged records.
    pub delta: u64,
}

impl ReplicationConfig {
    /// Validated constructor.
    ///
    /// # Errors
    /// Rejects `n == 0`, `n > M`, duplicate server ids, and `delta == 0`.
    pub fn new(servers: Vec<ServerId>, n: usize, delta: u64) -> Result<Self> {
        if n == 0 {
            return Err(DlogError::Config(
                "replication degree N must be at least 1".into(),
            ));
        }
        if servers.is_empty() {
            return Err(DlogError::Config(
                "at least one log server is required".into(),
            ));
        }
        if n > servers.len() {
            return Err(DlogError::Config(format!(
                "N = {n} exceeds the number of servers M = {}",
                servers.len()
            )));
        }
        let mut dedup = servers.clone();
        dedup.sort_unstable();
        dedup.dedup();
        if dedup.len() != servers.len() {
            return Err(DlogError::Config(
                "duplicate server ids in configuration".into(),
            ));
        }
        if delta == 0 {
            return Err(DlogError::Config("delta must be at least 1".into()));
        }
        Ok(ReplicationConfig { servers, n, delta })
    }

    /// Convenience constructor with δ = 1 (strictly synchronous WriteLog,
    /// as in §3.1.2 where "there is at most one log record that has been
    /// written to fewer than N log servers").
    ///
    /// # Errors
    /// Same as [`ReplicationConfig::new`].
    pub fn synchronous(servers: Vec<ServerId>, n: usize) -> Result<Self> {
        ReplicationConfig::new(servers, n, 1)
    }

    /// Total number of servers, M.
    #[must_use]
    pub fn m(&self) -> usize {
        self.servers.len()
    }

    /// The size of a client-initialization read quorum: `M − N + 1`
    /// (§3.1.2). Merging this many interval lists "guarantees that a merged
    /// set of interval lists will contain at least one server storing each
    /// log record".
    #[must_use]
    pub fn init_quorum(&self) -> usize {
        self.m() - self.n + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> Vec<ServerId> {
        (1..=n).map(ServerId).collect()
    }

    #[test]
    fn valid_config() {
        let c = ReplicationConfig::new(ids(5), 2, 8).unwrap();
        assert_eq!(c.m(), 5);
        assert_eq!(c.init_quorum(), 4);
    }

    #[test]
    fn quorum_overlap_invariant() {
        // For every legal (M, N): a write quorum (N) and an init quorum
        // (M−N+1) must intersect — that is the correctness core of §3.1.2.
        for m in 1..=8u64 {
            for n in 1..=m as usize {
                let c = ReplicationConfig::new(ids(m), n, 1).unwrap();
                assert!(c.n + c.init_quorum() > c.m(), "no overlap for M={m} N={n}");
            }
        }
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(ReplicationConfig::new(ids(3), 0, 1).is_err());
        assert!(ReplicationConfig::new(ids(3), 4, 1).is_err());
        assert!(ReplicationConfig::new(vec![], 1, 1).is_err());
        assert!(ReplicationConfig::new(ids(3), 2, 0).is_err());
        assert!(ReplicationConfig::new(vec![ServerId(1), ServerId(1)], 1, 1).is_err());
    }

    #[test]
    fn synchronous_sets_delta_one() {
        let c = ReplicationConfig::synchronous(ids(3), 2).unwrap();
        assert_eq!(c.delta, 1);
    }
}
