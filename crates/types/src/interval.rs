//! Intervals of consecutive log records, per-server interval lists, and the
//! highest-epoch-wins merge used at client initialization (§3.1.2).
//!
//! A log server groups the records it stores for one client into
//! *intervals*: maximal sequences with the same epoch number and
//! consecutive LSNs (§3.1.1). The `IntervalList` server operation reports
//! these, and a restarting client merges the lists of at least `M − N + 1`
//! servers, keeping for each LSN only entries with the highest epoch. The
//! merge result ([`MergedView`]) is the client's read cache: it tells the
//! client the end of the log and which server to ask for any record.

use std::fmt;

use crate::{Epoch, Lsn, ServerId};

/// A maximal run of records with equal epoch and consecutive LSNs, stored
/// on one log server. The range is closed: `lo..=hi`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Interval {
    /// Epoch of every record in the run.
    pub epoch: Epoch,
    /// First LSN of the run.
    pub lo: Lsn,
    /// Last LSN of the run (inclusive).
    pub hi: Lsn,
}

impl Interval {
    /// Construct an interval.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `lo` is the [`Lsn::ZERO`] sentinel.
    #[must_use]
    pub fn new(epoch: Epoch, lo: Lsn, hi: Lsn) -> Self {
        assert!(lo <= hi, "interval lo {lo} > hi {hi}");
        assert!(
            lo > Lsn::ZERO,
            "interval may not contain the LSN 0 sentinel"
        );
        Interval { epoch, lo, hi }
    }

    /// A single-record interval.
    #[must_use]
    pub fn point(epoch: Epoch, lsn: Lsn) -> Self {
        Interval::new(epoch, lsn, lsn)
    }

    /// Number of records in the interval.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.hi.0 - self.lo.0 + 1
    }

    /// Intervals are never empty; provided for API symmetry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if `lsn` falls within the interval.
    #[must_use]
    pub fn contains(&self, lsn: Lsn) -> bool {
        self.lo <= lsn && lsn <= self.hi
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(<{},{}>..<{},{}>)",
            self.lo, self.epoch, self.hi, self.epoch
        )
    }
}

/// The ordered list of intervals a log server stores for one client, in
/// storage (write) order.
///
/// Invariants maintained by [`IntervalList::push`] / [`IntervalList::append_record`]
/// (from §3.1.1, "successive records on a log server are written with
/// non-decreasing LSNs and non-decreasing epoch numbers"):
///
/// * epochs are non-decreasing along the list;
/// * two intervals with the same epoch do not overlap and appear in
///   increasing LSN order.
///
/// Note that an interval with a *higher* epoch may cover LSNs lower than
/// its predecessors (the recovery procedure's `CopyLog` rewrites do this,
/// cf. Figure 3-3).
#[derive(Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IntervalList {
    intervals: Vec<Interval>,
}

impl IntervalList {
    /// An empty list.
    #[must_use]
    pub fn new() -> Self {
        IntervalList::default()
    }

    /// Build from a vector of intervals, validating the invariants.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn from_intervals(intervals: Vec<Interval>) -> Result<Self, String> {
        let mut list = IntervalList::new();
        for iv in intervals {
            list.push(iv)?;
        }
        Ok(list)
    }

    /// Append a whole interval, validating ordering invariants.
    ///
    /// # Errors
    /// Returns a description of the violated invariant, leaving the list
    /// unchanged.
    pub fn push(&mut self, iv: Interval) -> Result<(), String> {
        // Static violation descriptions: push is on the per-record ingest
        // path (via append_record), and the caller knows the interval.
        if let Some(last) = self.intervals.last() {
            if iv.epoch < last.epoch {
                return Err("epoch regression between intervals".into());
            }
            if iv.epoch == last.epoch && iv.lo <= last.hi {
                return Err("interval overlap within an epoch".into());
            }
        }
        self.intervals.push(iv);
        Ok(())
    }

    /// Record a single stored record `<lsn, epoch>`: extends the last
    /// interval when the record is contiguous with it in the same epoch,
    /// otherwise starts a new interval (§3.1.2: "if a server has received a
    /// log record in the same epoch with an LSN immediately preceding the
    /// sequence number of the new log record, it extends its current
    /// sequence ... otherwise it creates a new sequence").
    ///
    /// # Errors
    /// Returns an error when the record violates server storage order.
    pub fn append_record(&mut self, lsn: Lsn, epoch: Epoch) -> Result<(), String> {
        if let Some(last) = self.intervals.last_mut() {
            if epoch == last.epoch && last.hi.precedes(lsn) {
                last.hi = lsn;
                return Ok(());
            }
        }
        self.push(Interval::point(epoch, lsn))
    }

    /// The intervals in storage order.
    #[must_use]
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Number of intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True if the server stores nothing for the client.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Total number of records covered (LSNs may be counted once per epoch).
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.intervals.iter().map(Interval::len).sum()
    }

    /// Highest `<LSN, epoch>` stored, i.e. the most recently written record.
    #[must_use]
    pub fn last(&self) -> Option<Interval> {
        self.intervals.last().copied()
    }

    /// The highest-epoch entry covering `lsn`, if any.
    #[must_use]
    pub fn lookup(&self, lsn: Lsn) -> Option<Epoch> {
        // Later intervals have higher (or equal) epochs, so scan backwards
        // and take the first hit.
        self.intervals
            .iter()
            .rev()
            .find(|iv| iv.contains(lsn))
            .map(|iv| iv.epoch)
    }
}

impl fmt::Debug for IntervalList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(&self.intervals).finish()
    }
}

impl<'a> IntoIterator for &'a IntervalList {
    type Item = &'a Interval;
    type IntoIter = std::slice::Iter<'a, Interval>;
    fn into_iter(self) -> Self::IntoIter {
        self.intervals.iter()
    }
}

/// A maximal LSN range over which the winning epoch and server set are
/// constant, in a [`MergedView`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MergedSegment {
    /// First LSN of the segment.
    pub lo: Lsn,
    /// Last LSN of the segment (inclusive).
    pub hi: Lsn,
    /// The winning (highest) epoch over this range.
    pub epoch: Epoch,
    /// Servers storing the records of this range at the winning epoch,
    /// sorted by id.
    pub servers: Vec<ServerId>,
}

/// The client's merged read cache: the result of merging the interval
/// lists of `M − N + 1` (or more) servers, keeping for each LSN only the
/// entries with the highest epoch (§3.1.2).
///
/// "In effect, this replication algorithm performs the voting needed to
/// achieve quorum consensus for all ReadLog operations at client node
/// initialization time."
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct MergedView {
    /// Disjoint segments in increasing LSN order.
    segments: Vec<MergedSegment>,
}

impl MergedView {
    /// An empty view (fresh log).
    #[must_use]
    pub fn new() -> Self {
        MergedView::default()
    }

    /// Merge per-server interval lists into a view.
    ///
    /// For every LSN covered by any list, the entry (or entries) with the
    /// highest epoch win; all servers reporting that `<LSN, epoch>` are
    /// retained as read candidates.
    #[must_use]
    pub fn merge(lists: &[(ServerId, IntervalList)]) -> Self {
        // Collect every (server, interval) entry and the set of range
        // boundaries, then decide the winner on each elementary range.
        // Interval lists are short by design (§4.3: "an essential
        // assumption of the replicated logging algorithm is that interval
        // lists are short"), so the O(E²) sweep is cheap.
        let mut entries: Vec<(ServerId, Interval)> = Vec::new();
        for (sid, list) in lists {
            for iv in list {
                entries.push((*sid, *iv));
            }
        }
        if entries.is_empty() {
            return MergedView::new();
        }

        let mut bounds: Vec<u64> = Vec::with_capacity(entries.len() * 2);
        for (_, iv) in &entries {
            bounds.push(iv.lo.0);
            bounds.push(iv.hi.0 + 1); // exclusive end
        }
        bounds.sort_unstable();
        bounds.dedup();

        let mut segments: Vec<MergedSegment> = Vec::new();
        for w in bounds.windows(2) {
            let (lo, hi) = (Lsn(w[0]), Lsn(w[1].saturating_sub(1)));
            // Winning epoch on this elementary range.
            let mut best: Option<Epoch> = None;
            for (_, iv) in &entries {
                if iv.lo <= lo && hi <= iv.hi {
                    best = Some(best.map_or(iv.epoch, |b| b.max(iv.epoch)));
                }
            }
            let Some(epoch) = best else { continue };
            let mut servers: Vec<ServerId> = entries
                .iter()
                .filter(|(_, iv)| iv.epoch == epoch && iv.lo <= lo && hi <= iv.hi)
                .map(|(sid, _)| *sid)
                .collect();
            servers.sort_unstable();
            servers.dedup();

            // Coalesce with the previous segment when contiguous and equal.
            if let Some(prev) = segments.last_mut() {
                if prev.hi.precedes(lo) && prev.epoch == epoch && prev.servers == servers {
                    prev.hi = hi;
                    continue;
                }
            }
            segments.push(MergedSegment {
                lo,
                hi,
                epoch,
                servers,
            });
        }
        MergedView { segments }
    }

    /// The segments of the view, in increasing LSN order.
    #[must_use]
    pub fn segments(&self) -> &[MergedSegment] {
        &self.segments
    }

    /// The high LSN of the merged list — what `EndOfLog` returns
    /// (§3.1.2). [`Lsn::ZERO`] for an empty log.
    #[must_use]
    pub fn end_of_log(&self) -> Lsn {
        self.segments.last().map_or(Lsn::ZERO, |s| s.hi)
    }

    /// The winning epoch and candidate servers for `lsn`, or `None` when no
    /// merged entry covers it.
    #[must_use]
    pub fn locate(&self, lsn: Lsn) -> Option<(&[ServerId], Epoch)> {
        let idx = self.segments.partition_point(|s| s.hi < lsn);
        let seg = self.segments.get(idx)?;
        seg.contains(lsn)
            .then_some((seg.servers.as_slice(), seg.epoch))
    }

    /// True when some merged entry covers `lsn`.
    #[must_use]
    pub fn contains(&self, lsn: Lsn) -> bool {
        self.locate(lsn).is_some()
    }

    /// Extend the cached view after the client writes `<lsn, epoch>` to
    /// `servers` — keeps the cache current without re-merging.
    pub fn note_write(&mut self, lsn: Lsn, epoch: Epoch, servers: &[ServerId]) {
        let mut sv = servers.to_vec();
        sv.sort_unstable();
        sv.dedup();
        if let Some(last) = self.segments.last_mut() {
            debug_assert!(last.hi < lsn, "note_write must move forward");
            if last.hi.precedes(lsn) && last.epoch == epoch && last.servers == sv {
                last.hi = lsn;
                return;
            }
        }
        self.segments.push(MergedSegment {
            lo: lsn,
            hi: lsn,
            epoch,
            servers: sv,
        });
    }

    /// True when the view covers no LSNs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

impl MergedSegment {
    /// True if `lsn` falls inside the segment.
    #[must_use]
    pub fn contains(&self, lsn: Lsn) -> bool {
        self.lo <= lsn && lsn <= self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn il(entries: &[(u64, u64, u64)]) -> IntervalList {
        // (epoch, lo, hi)
        IntervalList::from_intervals(
            entries
                .iter()
                .map(|&(e, lo, hi)| Interval::new(Epoch(e), Lsn(lo), Lsn(hi)))
                .collect(),
        )
        .expect("valid test interval list")
    }

    #[test]
    fn interval_basics() {
        let iv = Interval::new(Epoch(3), Lsn(3), Lsn(9));
        assert_eq!(iv.len(), 7);
        assert!(iv.contains(Lsn(3)));
        assert!(iv.contains(Lsn(9)));
        assert!(!iv.contains(Lsn(10)));
        assert!(!iv.is_empty());
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn interval_rejects_reversed_range() {
        let _ = Interval::new(Epoch(1), Lsn(5), Lsn(4));
    }

    #[test]
    fn push_rejects_epoch_regression() {
        let mut l = il(&[(3, 1, 5)]);
        assert!(l.push(Interval::new(Epoch(2), Lsn(6), Lsn(7))).is_err());
    }

    #[test]
    fn push_rejects_same_epoch_overlap() {
        let mut l = il(&[(3, 1, 5)]);
        assert!(l.push(Interval::new(Epoch(3), Lsn(5), Lsn(7))).is_err());
        // A gap in the same epoch is fine (client switched servers and came
        // back — cf. Server 3 in Figure 3-1).
        assert!(l.push(Interval::new(Epoch(3), Lsn(8), Lsn(9))).is_ok());
    }

    #[test]
    fn higher_epoch_may_rewind_lsn() {
        // Figure 3-3, Server 1: ... <9,3> then <9,4>, <10,4>.
        let mut l = il(&[(1, 1, 3), (3, 3, 9)]);
        assert!(l.push(Interval::new(Epoch(4), Lsn(9), Lsn(10))).is_ok());
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn append_record_extends_and_breaks() {
        let mut l = IntervalList::new();
        l.append_record(Lsn(1), Epoch(1)).unwrap();
        l.append_record(Lsn(2), Epoch(1)).unwrap();
        l.append_record(Lsn(3), Epoch(1)).unwrap();
        assert_eq!(l.len(), 1);
        // Same LSN, new epoch: new interval (Figure 3-1, Server 1).
        l.append_record(Lsn(3), Epoch(3)).unwrap();
        assert_eq!(l.len(), 2);
        l.append_record(Lsn(4), Epoch(3)).unwrap();
        assert_eq!(l.len(), 2);
        // Gap within an epoch: new interval.
        l.append_record(Lsn(9), Epoch(3)).unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l.record_count(), 3 + 2 + 1);
    }

    #[test]
    fn lookup_prefers_higher_epoch() {
        let l = il(&[(1, 1, 3), (3, 3, 9)]);
        assert_eq!(l.lookup(Lsn(3)), Some(Epoch(3)));
        assert_eq!(l.lookup(Lsn(2)), Some(Epoch(1)));
        assert_eq!(l.lookup(Lsn(10)), None);
    }

    /// The exact configuration of Figure 3-1: the replicated log must
    /// consist of (<1,1>..<2,1>), (<3,3>), (<5,3>..<9,3>) — record 4 is
    /// marked not-present (presence is checked at read time, not here) and
    /// every record appears on N=2 servers.
    #[test]
    fn figure_3_1_merge() {
        let s1 = il(&[(1, 1, 3), (3, 3, 9)]);
        let s2 = il(&[(1, 1, 3), (3, 6, 7)]);
        let s3 = il(&[(3, 3, 5), (3, 8, 9)]);
        let v = MergedView::merge(&[(ServerId(1), s1), (ServerId(2), s2), (ServerId(3), s3)]);

        assert_eq!(v.end_of_log(), Lsn(9));
        // LSNs 1..2: epoch 1 on servers 1 and 2.
        let (srv, ep) = v.locate(Lsn(1)).unwrap();
        assert_eq!(ep, Epoch(1));
        assert_eq!(srv, &[ServerId(1), ServerId(2)]);
        // LSN 3: epoch 3 wins (servers 1 and 3), epoch-1 copies lose.
        let (srv, ep) = v.locate(Lsn(3)).unwrap();
        assert_eq!(ep, Epoch(3));
        assert_eq!(srv, &[ServerId(1), ServerId(3)]);
        // LSN 6: epoch 3 on servers 1 and 2... and not 3 (gap there).
        let (srv, ep) = v.locate(Lsn(6)).unwrap();
        assert_eq!(ep, Epoch(3));
        assert_eq!(srv, &[ServerId(1), ServerId(2)]);
        // LSN 8: servers 1 and 3.
        let (srv, _) = v.locate(Lsn(8)).unwrap();
        assert_eq!(srv, &[ServerId(1), ServerId(3)]);
        assert!(!v.contains(Lsn(10)));
    }

    /// Figure 3-2 ⇒ 3-3: the partially written record 10 (only on server 3)
    /// is invisible when merging servers 1 and 2, and after recovery the
    /// epoch-4 rewrite of LSNs 9–10 wins over server 3's epoch-3 copy.
    #[test]
    fn figure_3_2_and_3_3_merge() {
        // Before recovery, merging only servers 1 and 2 (a legal quorum for
        // M=3, N=2: M−N+1 = 2):
        let s1 = il(&[(1, 1, 3), (3, 3, 9)]);
        let s2 = il(&[(1, 1, 3), (3, 6, 7)]);
        let v = MergedView::merge(&[(ServerId(1), s1), (ServerId(2), s2)]);
        assert_eq!(v.end_of_log(), Lsn(9)); // record 10 invisible

        // After the recovery procedure (Figure 3-3): servers 1 and 2 hold
        // <9,4> and the not-present <10,4>; server 3 still has <10,3>.
        let s1 = il(&[(1, 1, 3), (3, 3, 9), (4, 9, 10)]);
        let s2 = il(&[(1, 1, 3), (3, 6, 7), (4, 9, 10)]);
        let s3 = il(&[(3, 3, 5), (3, 8, 10)]);
        let v = MergedView::merge(&[(ServerId(1), s1), (ServerId(2), s2), (ServerId(3), s3)]);
        // Epoch 4 wins at LSNs 9 and 10 regardless of server 3's stale copy.
        let (srv, ep) = v.locate(Lsn(9)).unwrap();
        assert_eq!(ep, Epoch(4));
        assert_eq!(srv, &[ServerId(1), ServerId(2)]);
        let (_, ep) = v.locate(Lsn(10)).unwrap();
        assert_eq!(ep, Epoch(4));
        assert_eq!(v.end_of_log(), Lsn(10));
    }

    #[test]
    fn merge_empty() {
        let v = MergedView::merge(&[]);
        assert!(v.is_empty());
        assert_eq!(v.end_of_log(), Lsn::ZERO);
        assert!(v.locate(Lsn(1)).is_none());

        let v = MergedView::merge(&[(ServerId(1), IntervalList::new())]);
        assert!(v.is_empty());
    }

    #[test]
    fn note_write_extends_cache() {
        let mut v = MergedView::new();
        v.note_write(Lsn(1), Epoch(2), &[ServerId(1), ServerId(2)]);
        v.note_write(Lsn(2), Epoch(2), &[ServerId(2), ServerId(1)]);
        assert_eq!(
            v.segments().len(),
            1,
            "contiguous same-config writes coalesce"
        );
        v.note_write(Lsn(3), Epoch(2), &[ServerId(1), ServerId(3)]);
        assert_eq!(v.segments().len(), 2);
        assert_eq!(v.end_of_log(), Lsn(3));
        let (srv, _) = v.locate(Lsn(3)).unwrap();
        assert_eq!(srv, &[ServerId(1), ServerId(3)]);
    }
}
