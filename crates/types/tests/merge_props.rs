//! Property tests for the highest-epoch-wins interval merge (§3.1.2),
//! checked against a brute-force per-LSN reference model.

use proptest::prelude::*;

use dlog_types::interval::MergedView;
use dlog_types::{Epoch, Interval, IntervalList, Lsn, ServerId};

const MAX_LSN: u64 = 64;

/// Reference model: for each LSN, the set of (server, epoch) entries, from
/// which the winner is computed by scanning every record individually.
fn model_winner(lists: &[(ServerId, IntervalList)], lsn: Lsn) -> Option<(Vec<ServerId>, Epoch)> {
    let mut best: Option<Epoch> = None;
    for (_, list) in lists {
        for iv in list {
            if iv.contains(lsn) {
                best = Some(best.map_or(iv.epoch, |b| b.max(iv.epoch)));
            }
        }
    }
    let epoch = best?;
    let mut servers: Vec<ServerId> = lists
        .iter()
        .filter(|(_, list)| {
            list.intervals()
                .iter()
                .any(|iv| iv.epoch == epoch && iv.contains(lsn))
        })
        .map(|(sid, _)| *sid)
        .collect();
    servers.sort_unstable();
    servers.dedup();
    Some((servers, epoch))
}

/// Generate a valid interval list: non-decreasing epochs, no same-epoch
/// overlap. We mimic a server's life: a cursor walks forward within an
/// epoch; an epoch bump may rewind the cursor (CopyLog-style rewrites).
fn arb_interval_list() -> impl Strategy<Value = IntervalList> {
    proptest::collection::vec((1u64..4, 1u64..8, 0u64..6), 0..6).prop_map(|steps| {
        let mut list = IntervalList::new();
        let mut epoch = 1u64;
        let mut cursor = 1u64;
        for (epoch_bump, gap, len) in steps {
            let new_epoch = epoch + (epoch_bump - 1); // may stay equal
            if new_epoch > epoch {
                // Higher epochs may rewind the LSN cursor (recovery copies).
                cursor = cursor.saturating_sub(3).max(1);
            }
            epoch = new_epoch;
            let lo = cursor + if list.is_empty() { 0 } else { gap };
            let hi = (lo + len).min(MAX_LSN);
            if lo > MAX_LSN || lo > hi {
                continue;
            }
            let iv = Interval::new(Epoch(epoch), Lsn(lo), Lsn(hi));
            if list.push(iv).is_ok() {
                cursor = hi + 1;
            }
        }
        list
    })
}

fn arb_server_lists() -> impl Strategy<Value = Vec<(ServerId, IntervalList)>> {
    proptest::collection::vec(arb_interval_list(), 1..5).prop_map(|lists| {
        lists
            .into_iter()
            .enumerate()
            .map(|(i, l)| (ServerId(i as u64 + 1), l))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The sweep-line merge agrees with the per-LSN brute-force model on
    /// every LSN.
    #[test]
    fn merge_matches_model(lists in arb_server_lists()) {
        let view = MergedView::merge(&lists);
        for lsn in 1..=MAX_LSN {
            let lsn = Lsn(lsn);
            let expected = model_winner(&lists, lsn);
            let got = view.locate(lsn).map(|(s, e)| (s.to_vec(), e));
            prop_assert_eq!(got, expected, "disagreement at {}", lsn);
        }
        // end_of_log is the highest covered LSN.
        let expected_end = (1..=MAX_LSN)
            .rev()
            .find(|&l| model_winner(&lists, Lsn(l)).is_some())
            .map_or(Lsn::ZERO, Lsn);
        prop_assert_eq!(view.end_of_log(), expected_end);
    }

    /// Segments are disjoint, sorted, coalesced, and non-empty.
    #[test]
    fn merge_segments_canonical(lists in arb_server_lists()) {
        let view = MergedView::merge(&lists);
        let segs = view.segments();
        for s in segs {
            prop_assert!(s.lo <= s.hi);
            prop_assert!(!s.servers.is_empty());
        }
        for w in segs.windows(2) {
            prop_assert!(w[0].hi < w[1].lo, "segments overlap or are unsorted");
            // Adjacent equal segments must have been coalesced.
            if w[0].hi.precedes(w[1].lo) {
                prop_assert!(
                    w[0].epoch != w[1].epoch || w[0].servers != w[1].servers,
                    "uncoalesced adjacent segments"
                );
            }
        }
    }

    /// Merging is insensitive to the order in which server lists are given.
    #[test]
    fn merge_order_independent(mut lists in arb_server_lists()) {
        let a = MergedView::merge(&lists);
        lists.reverse();
        let b = MergedView::merge(&lists);
        prop_assert_eq!(a, b);
    }

    /// note_write on a merged view matches a re-merge that includes the new
    /// record appended to each written server's list.
    #[test]
    fn note_write_matches_remerge(lists in arb_server_lists()) {
        let mut view = MergedView::merge(&lists);
        let end = view.end_of_log();
        let lsn = end.next();
        // Write the next record at a high epoch to the first two servers.
        let epoch = Epoch(100);
        let targets: Vec<ServerId> = lists.iter().take(2).map(|(s, _)| *s).collect();
        view.note_write(lsn, epoch, &targets);

        let mut lists2 = lists.clone();
        for (sid, list) in &mut lists2 {
            if targets.contains(sid) {
                list.append_record(lsn, epoch).unwrap();
            }
        }
        let remerged = MergedView::merge(&lists2);
        prop_assert_eq!(view.end_of_log(), remerged.end_of_log());
        let (s1, e1) = view.locate(lsn).unwrap();
        let (s2, e2) = remerged.locate(lsn).unwrap();
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(e1, e2);
    }
}
