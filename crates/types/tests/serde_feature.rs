//! Serde round trips for the public config/report types (only compiled
//! with `--features serde`; CI runs `cargo test -p dlog-types --features
//! serde`).

#![cfg(feature = "serde")]

use dlog_types::{ClientId, Epoch, Interval, IntervalList, Lsn, ReplicationConfig, ServerId};

#[test]
fn scalar_newtypes_roundtrip() {
    // serde_json is not a workspace dependency; round-trip through the
    // token-level serde test channel instead: serialize to a JSON-like
    // string via serde's own derive through a minimal in-crate writer is
    // overkill, so assert the derives exist and are self-consistent by
    // serializing with `serde::Serialize` into a simple format we control.
    // The cheapest faithful check without extra deps: bincode-style
    // manual via serde_test-like asserts is unavailable too — so this
    // test simply exercises that the impls exist and are object-safe.
    fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    assert_serde::<Lsn>();
    assert_serde::<Epoch>();
    assert_serde::<ClientId>();
    assert_serde::<ServerId>();
    assert_serde::<Interval>();
    assert_serde::<IntervalList>();
    assert_serde::<ReplicationConfig>();
}
