//! Shard supervisor: N per-shard event loops behind one endpoint.
//!
//! The paper's log server is one sequential loop; this module splits it
//! into a thin **dispatcher** that owns the endpoint's receive side and N
//! **shard loops**, each owning a private [`LogServer`] (and therefore a
//! private `LogStore`, obligation table, and group-commit window). The
//! dispatcher decodes nothing itself — the endpoint already produced a
//! [`Packet`] whose record payloads are zero-copy views into the pooled
//! receive buffer — and moves the decoded packet to the queue of the
//! shard `LogId → shard` hashes to. The views survive the cross-thread
//! handoff: `LogData` is `Arc`-backed, so the pool's buffer stays parked
//! until the owning shard drops the last view.
//!
//! Routing rule (must match [`Packet::route_key`] and
//! [`LogId::shard`](dlog_types::LogId::shard)):
//!
//! * a nonzero `log` header field routes by that id;
//! * log traffic without a hint routes by the owning client's log;
//! * generator RPCs route by generator id;
//! * shard-agnostic control traffic (handshake, `Status`, `Stats`) is
//!   **broadcast** to every shard — each answers with its own `shard` /
//!   `shards` gauges so a collector can merge the rows.
//!
//! Replies go out through the same shared endpoint from every shard
//! (`Endpoint` sends are `&self`); the transports are `Sync`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dlog_net::wire::{NodeAddr, Packet};
use dlog_net::{Endpoint, RoutedEndpoint, ShardRx};

use crate::LogServer;

/// How many queued packets one shard-loop iteration may ingest before
/// replies are flushed — same bound (and same rationale) as the
/// single-loop runner's.
const INGEST_BATCH: usize = 32;

/// One shard's packet queue. The `sleepers` counter lets the dispatcher
/// skip the condvar syscall entirely while the shard loop is awake — the
/// common case under load, where the queue never runs dry.
struct ShardInbox {
    q: VecDeque<(NodeAddr, Packet)>,
    sleepers: u32,
}

struct ShardQueue {
    inbox: Mutex<ShardInbox>,
    available: Condvar,
}

impl ShardQueue {
    fn new() -> Self {
        ShardQueue {
            inbox: Mutex::new(ShardInbox {
                q: VecDeque::new(),
                sleepers: 0,
            }),
            available: Condvar::new(),
        }
    }

    fn push(&self, from: NodeAddr, pkt: Packet) {
        let Ok(mut inbox) = self.inbox.lock() else {
            return; // a poisoned queue means the shard loop died; drop
        };
        inbox.q.push_back((from, pkt));
        if inbox.sleepers > 0 {
            self.available.notify_one();
        }
    }

    /// Pop one packet, waiting up to `timeout`. `Duration::ZERO` never
    /// blocks (the shard loop polls with it while a group commit is
    /// pending, exactly like the runner's `recv(ZERO)`).
    fn pop(&self, timeout: Duration) -> Option<(NodeAddr, Packet)> {
        let mut inbox = self.inbox.lock().ok()?;
        if let Some(item) = inbox.q.pop_front() {
            return Some(item);
        }
        if timeout.is_zero() {
            return None;
        }
        inbox.sleepers += 1;
        let (mut inbox, _timed_out) =
            self.available
                .wait_timeout(inbox, timeout)
                .unwrap_or_else(|e| {
                    let (g, t) = e.into_inner();
                    (g, t)
                });
        inbox.sleepers = inbox.sleepers.saturating_sub(1);
        inbox.q.pop_front()
    }

    /// Wake every sleeper (shutdown path).
    fn wake_all(&self) {
        self.available.notify_all();
    }
}

/// Handle to a running sharded server: one dispatcher thread plus one
/// event loop per shard. The single-shard degenerate case behaves like
/// the plain [`crate::runner::ServerRunner`], with one extra queue hop.
pub struct ShardSupervisor {
    stop: Arc<AtomicBool>,
    queues: Vec<Arc<ShardQueue>>,
    dispatcher: Option<JoinHandle<()>>,
    shards: Vec<Option<JoinHandle<LogServer>>>,
}

impl ShardSupervisor {
    /// Spawn the dispatcher and one event loop per element of `servers`
    /// (shard k serves `servers[k]`; the caller stamps each config with
    /// [`crate::ServerConfig::for_shard`] and opens per-shard storage
    /// roots). The endpoint is shared: the dispatcher owns its receive
    /// side, every shard replies through it.
    ///
    /// # Panics
    /// Panics when `servers` is empty or a thread fails to spawn.
    #[must_use]
    pub fn spawn<E: Endpoint + Sync + 'static>(
        servers: Vec<LogServer>,
        endpoint: E,
    ) -> ShardSupervisor {
        assert!(!servers.is_empty(), "a sharded server needs >= 1 shard");
        let nshards = servers.len();
        let endpoint = Arc::new(endpoint);
        let stop = Arc::new(AtomicBool::new(false));
        let queues: Vec<Arc<ShardQueue>> =
            (0..nshards).map(|_| Arc::new(ShardQueue::new())).collect();

        let server_id = servers.first().map_or(0, |s| s.id().0);
        let mut shards = Vec::with_capacity(nshards);
        for (k, server) in servers.into_iter().enumerate() {
            let queue = queues.get(k).expect("queue per shard").clone();
            let ep = endpoint.clone();
            let stop2 = stop.clone();
            let handle = std::thread::Builder::new()
                .name(format!("log-server-{server_id}-s{k}"))
                .spawn(move || shard_loop(server, &stop2, &*ep, |t| queue.pop(t)))
                .expect("spawn shard thread");
            shards.push(Some(handle));
        }

        let stop2 = stop.clone();
        let routes: Vec<Arc<ShardQueue>> = queues.clone();
        let dispatcher = std::thread::Builder::new()
            .name(format!("log-shard-router-{server_id}"))
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match endpoint.recv(Duration::from_millis(20)) {
                        Ok(Some((from, pkt))) => match pkt.route_key() {
                            Some(id) => {
                                if let Some(q) = routes.get(id.shard(routes.len())) {
                                    q.push(from, pkt);
                                }
                            }
                            None => {
                                // Shard-agnostic control traffic: every
                                // shard sees it. Cloning the packet is a
                                // refcount bump per payload view, and
                                // control messages carry no records.
                                for q in &routes {
                                    q.push(from, pkt.clone());
                                }
                            }
                        },
                        Ok(None) => {}
                        Err(_) => break, // endpoint torn down
                    }
                }
            })
            .expect("spawn shard dispatcher");

        ShardSupervisor {
            stop,
            queues,
            dispatcher: Some(dispatcher),
            shards: shards.into_iter().collect(),
        }
    }

    /// Spawn one event loop per shard on a transport that routes frames
    /// itself ([`RoutedEndpoint`]): each shard loop receives straight
    /// from its own routed queue, so there is no dispatcher thread and a
    /// packet crosses exactly one thread boundary between sender and
    /// shard. Semantically identical to [`ShardSupervisor::spawn`] — the
    /// transport applies the same routing rule from the wire header's
    /// log hint before decode.
    ///
    /// # Panics
    /// Panics when `servers` is empty or a thread fails to spawn.
    #[must_use]
    pub fn spawn_routed<E>(servers: Vec<LogServer>, endpoint: E) -> ShardSupervisor
    where
        E: RoutedEndpoint + Sync + 'static,
    {
        assert!(!servers.is_empty(), "a sharded server needs >= 1 shard");
        let endpoint = Arc::new(endpoint);
        let stop = Arc::new(AtomicBool::new(false));
        let server_id = servers.first().map_or(0, |s| s.id().0);
        let rxs = endpoint.shard_rx(servers.len());
        let mut shards = Vec::with_capacity(servers.len());
        for (k, (mut rx, server)) in rxs.into_iter().zip(servers).enumerate() {
            let ep = endpoint.clone();
            let stop2 = stop.clone();
            let handle = std::thread::Builder::new()
                .name(format!("log-server-{server_id}-s{k}"))
                .spawn(move || shard_loop(server, &stop2, &*ep, |t| rx.recv(t).unwrap_or(None)))
                .expect("spawn shard thread");
            shards.push(Some(handle));
        }
        ShardSupervisor {
            stop,
            queues: Vec::new(),
            dispatcher: None,
            shards,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Stop every loop gracefully and recover the per-shard servers, in
    /// shard order. Each shard finishes its pending group commit and
    /// syncs its store, exactly like the single-loop runner's stop path.
    #[must_use]
    pub fn stop(mut self) -> Vec<LogServer> {
        self.shutdown();
        self.shards
            .iter_mut()
            .filter_map(|slot| slot.take())
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    }

    /// Simulate a hard crash of the whole process: every shard stops
    /// where it stands (no extra syncing beyond what already happened)
    /// and its store is dropped. Returns each shard's durable stream end
    /// at the moment of the crash, in shard order — per-shard recovery
    /// replays each shard's own storage root independently.
    pub fn crash(mut self) -> Vec<u64> {
        self.shutdown();
        self.shards
            .iter_mut()
            .filter_map(|slot| slot.take())
            .map(|h| {
                let mut server = h.join().expect("shard thread panicked");
                let end = server.store_mut().stream_end();
                drop(server);
                end
            })
            .collect()
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for q in &self.queues {
            q.wake_all();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ShardSupervisor {
    fn drop(&mut self) {
        self.shutdown();
        for slot in &mut self.shards {
            if let Some(h) = slot.take() {
                let _ = h.join();
            }
        }
    }
}

/// One shard's event loop, shared by the dispatcher-fed and
/// transport-routed spawn paths: `next` yields the shard's next packet
/// (queue pop or routed receive), everything else — ingest batching,
/// reply flushing, group-commit ticks, idle archive work, and the
/// final flush-and-sync on stop — is identical.
fn shard_loop<E: Endpoint + ?Sized>(
    mut server: LogServer,
    stop: &AtomicBool,
    ep: &E,
    mut next: impl FnMut(Duration) -> Option<(NodeAddr, Packet)>,
) -> LogServer {
    let mut replies = Vec::with_capacity(64);
    while !stop.load(Ordering::Relaxed) {
        let timeout = if server.has_pending_forces() {
            Duration::ZERO
        } else {
            Duration::from_millis(20)
        };
        match next(timeout) {
            Some((from, pkt)) => {
                replies.clear();
                server.handle_into(from, &pkt, &mut replies);
                for _ in 0..INGEST_BATCH - 1 {
                    match next(Duration::ZERO) {
                        Some((from, pkt)) => {
                            server.handle_into(from, &pkt, &mut replies);
                        }
                        None => break,
                    }
                }
                for (to, reply) in replies.drain(..) {
                    let _ = ep.send(to, &reply);
                }
                for (to, reply) in server.force_tick() {
                    let _ = ep.send(to, &reply);
                }
            }
            None => {
                if server.has_pending_forces() {
                    for (to, reply) in server.flush_pending_forces() {
                        let _ = ep.send(to, &reply);
                    }
                } else {
                    let _ = server.archive_tick();
                }
            }
        }
    }
    for (to, reply) in server.flush_pending_forces() {
        let _ = ep.send(to, &reply);
    }
    let _ = server.store_mut().sync();
    server
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenStore;
    use crate::ServerConfig;
    use dlog_net::wire::{Message, Request, Response};
    use dlog_net::{FaultPlan, MemNetwork};
    use dlog_storage::{LogStore, NvramDevice, StoreOptions};
    use dlog_types::{ClientId, Epoch, LogData, LogId, Lsn, ServerId};

    fn shard_server(root: &std::path::Path, shard: u64, shards: u64) -> LogServer {
        let dir = root.join(format!("shard-{shard}"));
        let opts = StoreOptions {
            fsync: false,
            ..StoreOptions::default()
        };
        let store = LogStore::open(&dir, opts, NvramDevice::new(1 << 20)).unwrap();
        let gens = GenStore::open(dir.join("gens")).unwrap();
        LogServer::new(
            ServerConfig::new(ServerId(1)).for_shard(shard, shards),
            store,
            gens,
        )
        .unwrap()
    }

    fn tmproot(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir()
            .join("dlog-shard-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn force_pkt(client: u64, lo: u64, hi: u64) -> Packet {
        let records: Vec<(Lsn, LogData)> = (lo..=hi)
            .map(|i| (Lsn(i), LogData::from(vec![i as u8; 10])))
            .collect();
        Packet::routed(
            LogId::for_client(ClientId(client)),
            Message::ForceLog {
                client: ClientId(client),
                epoch: Epoch(1),
                records,
            },
        )
    }

    #[test]
    fn routes_clients_to_distinct_shards_and_acks() {
        let root = tmproot("route");
        let servers = vec![shard_server(&root, 0, 2), shard_server(&root, 1, 2)];
        let net = MemNetwork::new(FaultPlan::reliable());
        let sup = ShardSupervisor::spawn(servers, net.endpoint(NodeAddr(1)));

        // Find two clients that hash to different shards.
        let c0 = 1u64;
        let c1 = (2..64)
            .find(|&c| LogId(c).shard(2) != LogId(c0).shard(2))
            .expect("some client maps to the other shard");

        let ep = net.endpoint(NodeAddr(100));
        ep.send(NodeAddr(1), &force_pkt(c0, 1, 3)).unwrap();
        ep.send(NodeAddr(1), &force_pkt(c1, 1, 5)).unwrap();
        let mut acks = std::collections::HashMap::new();
        for _ in 0..2 {
            let (_, pkt) = ep.recv(Duration::from_secs(5)).unwrap().expect("ack");
            if let Message::NewHighLsn { client, lsn } = pkt.msg {
                acks.insert(client.0, lsn.0);
            }
        }
        assert_eq!(acks.get(&c0), Some(&3));
        assert_eq!(acks.get(&c1), Some(&5));

        // Graceful stop: each shard holds exactly its own client's log,
        // under its own storage root.
        let recovered = sup.stop();
        assert_eq!(recovered.len(), 2);
        let total: u64 = recovered.iter().map(|s| s.stats().records_stored).sum();
        assert_eq!(total, 8);
        for s in &recovered {
            for c in s.store_stats().tracks_flushed..=0 {
                // no-op loop; records checked below via per-shard stats
                let _ = c;
            }
        }
        let per_shard: Vec<u64> = recovered.iter().map(|s| s.stats().records_stored).collect();
        assert!(
            per_shard.iter().all(|&n| n > 0),
            "both shards must have ingested: {per_shard:?}"
        );
    }

    #[test]
    fn routed_endpoint_path_matches_dispatcher_semantics() {
        // Same traffic as the dispatcher test, but over spawn_routed:
        // the transport steers frames from the wire header, no
        // dispatcher thread exists, and the acks and per-shard
        // placement come out identical.
        let root = tmproot("routed");
        let servers = vec![shard_server(&root, 0, 2), shard_server(&root, 1, 2)];
        let net = MemNetwork::new(FaultPlan::reliable());
        let sup = ShardSupervisor::spawn_routed(servers, net.endpoint(NodeAddr(1)));

        let c0 = 1u64;
        let c1 = (2..64)
            .find(|&c| LogId(c).shard(2) != LogId(c0).shard(2))
            .expect("some client maps to the other shard");

        let ep = net.endpoint(NodeAddr(100));
        ep.send(NodeAddr(1), &force_pkt(c0, 1, 3)).unwrap();
        ep.send(NodeAddr(1), &force_pkt(c1, 1, 5)).unwrap();
        let mut acks = std::collections::HashMap::new();
        for _ in 0..2 {
            let (_, pkt) = ep.recv(Duration::from_secs(5)).unwrap().expect("ack");
            if let Message::NewHighLsn { client, lsn } = pkt.msg {
                acks.insert(client.0, lsn.0);
            }
        }
        assert_eq!(acks.get(&c0), Some(&3));
        assert_eq!(acks.get(&c1), Some(&5));

        // A shard-agnostic Status request still fans out to every shard.
        ep.send(
            NodeAddr(1),
            &Packet::bare(Message::Request {
                id: 11,
                body: Request::Status,
            }),
        )
        .unwrap();
        let mut rows = std::collections::BTreeSet::new();
        for _ in 0..2 {
            let (_, pkt) = ep.recv(Duration::from_secs(5)).unwrap().expect("row");
            if let Message::Response {
                id: 11,
                body: Response::Status { shard, shards, .. },
            } = pkt.msg
            {
                assert_eq!(shards, 2);
                rows.insert(shard);
            }
        }
        assert_eq!(rows, [0u64, 1].into_iter().collect());

        let recovered = sup.stop();
        let per_shard: Vec<u64> = recovered.iter().map(|s| s.stats().records_stored).collect();
        assert_eq!(per_shard.iter().sum::<u64>(), 8);
        assert!(
            per_shard.iter().all(|&n| n > 0),
            "both shards must have ingested: {per_shard:?}"
        );
    }

    #[test]
    fn status_broadcast_returns_one_row_per_shard() {
        let root = tmproot("status");
        let servers = vec![
            shard_server(&root, 0, 3),
            shard_server(&root, 1, 3),
            shard_server(&root, 2, 3),
        ];
        let net = MemNetwork::new(FaultPlan::reliable());
        let sup = ShardSupervisor::spawn(servers, net.endpoint(NodeAddr(1)));

        let ep = net.endpoint(NodeAddr(100));
        ep.send(
            NodeAddr(1),
            &Packet::bare(Message::Request {
                id: 7,
                body: Request::Status,
            }),
        )
        .unwrap();
        let mut rows = std::collections::BTreeSet::new();
        for _ in 0..3 {
            let (_, pkt) = ep.recv(Duration::from_secs(5)).unwrap().expect("row");
            match pkt.msg {
                Message::Response {
                    id: 7,
                    body: Response::Status { shard, shards, .. },
                } => {
                    assert_eq!(shards, 3);
                    rows.insert(shard);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(rows, [0u64, 1, 2].into_iter().collect());
        drop(sup);
    }

    #[test]
    fn crash_and_per_shard_recovery_keep_forced_records() {
        let root = tmproot("crash");
        let servers = vec![shard_server(&root, 0, 2), shard_server(&root, 1, 2)];
        let net = MemNetwork::new(FaultPlan::reliable());
        let sup = ShardSupervisor::spawn(servers, net.endpoint(NodeAddr(1)));
        let ep = net.endpoint(NodeAddr(100));
        ep.send(NodeAddr(1), &force_pkt(1, 1, 4)).unwrap();
        let _ = ep.recv(Duration::from_secs(5)).unwrap().expect("ack");
        let ends = sup.crash();
        assert_eq!(ends.len(), 2);

        // Reboot: each shard recovers from its own root; the forced
        // records are there.
        let servers = vec![shard_server(&root, 0, 2), shard_server(&root, 1, 2)];
        let net = MemNetwork::new(FaultPlan::reliable());
        let sup = ShardSupervisor::spawn(servers, net.endpoint(NodeAddr(1)));
        let ep = net.endpoint(NodeAddr(100));
        ep.send(
            NodeAddr(1),
            &Packet::routed(
                LogId::for_client(ClientId(1)),
                Message::Request {
                    id: 9,
                    body: Request::ReadLogForward {
                        client: ClientId(1),
                        lsn: Lsn(1),
                        max_records: 16,
                    },
                },
            ),
        )
        .unwrap();
        let (_, pkt) = ep.recv(Duration::from_secs(5)).unwrap().expect("resp");
        match pkt.msg {
            Message::Response {
                id: 9,
                body: Response::Records { records },
            } => assert_eq!(records.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
        drop(sup);
    }
}
