//! Thread runner: drives a [`LogServer`] over any [`Endpoint`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dlog_net::Endpoint;

use crate::LogServer;

/// How many queued packets one poll may ingest before replies are
/// flushed. Bounds the extra latency a burst can impose on the first
/// sender's ack while still amortizing per-packet overhead.
const INGEST_BATCH: usize = 32;

/// Handle to a running server thread.
pub struct ServerRunner {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<LogServer>>,
}

impl ServerRunner {
    /// Spawn a thread that receives packets from `endpoint`, feeds them to
    /// `server`, and transmits its replies, until stopped.
    #[must_use]
    pub fn spawn<E: Endpoint + 'static>(mut server: LogServer, endpoint: E) -> ServerRunner {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name(format!("log-server-{}", server.id()))
            .spawn(move || {
                // One reply buffer for the life of the thread: handle_into
                // appends into it, so after warm-up the steady-state loop
                // issues no per-packet Vec allocations for replies.
                let mut replies = Vec::with_capacity(64);
                while !stop2.load(Ordering::Relaxed) {
                    // With forces waiting on a group commit, poll rather
                    // than block: the batch must flush the moment the
                    // inbox drains, so the coalescing window only adds
                    // latency while more work is actually arriving.
                    let timeout = if server.has_pending_forces() {
                        Duration::ZERO
                    } else {
                        Duration::from_millis(20)
                    };
                    match endpoint.recv(timeout) {
                        Ok(Some((from, pkt))) => {
                            // Batch ingest: after the first packet, drain
                            // whatever else is already queued (up to a cap
                            // that keeps force acks prompt) before sending
                            // replies, amortizing the send/recv syscall
                            // boundary across the burst.
                            replies.clear();
                            server.handle_into(from, &pkt, &mut replies);
                            for _ in 0..INGEST_BATCH - 1 {
                                match endpoint.recv(Duration::ZERO) {
                                    Ok(Some((from, pkt))) => {
                                        server.handle_into(from, &pkt, &mut replies);
                                    }
                                    _ => break,
                                }
                            }
                            for (to, reply) in replies.drain(..) {
                                // Send failures are network loss — the
                                // protocol recovers end to end.
                                let _ = endpoint.send(to, &reply);
                            }
                            for (to, reply) in server.force_tick() {
                                let _ = endpoint.send(to, &reply);
                            }
                        }
                        Ok(None) => {
                            if server.has_pending_forces() {
                                // Inbox drained: commit the group now.
                                for (to, reply) in server.flush_pending_forces() {
                                    let _ = endpoint.send(to, &reply);
                                }
                            } else {
                                // Idle: let the archive tier make progress.
                                // Upload failures are retried next interval.
                                let _ = server.archive_tick();
                            }
                        }
                        Err(_) => break, // endpoint torn down
                    }
                }
                // Never strand queued force obligations at shutdown: the
                // graceful path finishes the round and even tries to get
                // the acks out before the endpoint goes away.
                for (to, reply) in server.flush_pending_forces() {
                    let _ = endpoint.send(to, &reply);
                }
                // Leave storage clean on graceful shutdown.
                let _ = server.store_mut().sync();
                server
            })
            .expect("spawn server thread");
        ServerRunner {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the thread and recover the server (with its store).
    #[must_use]
    pub fn stop(mut self) -> LogServer {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("not yet stopped")
            .join()
            .expect("server thread panicked")
    }

    /// Simulate a hard crash: the thread stops without syncing anything
    /// beyond what already happened; the store is dropped where it stands.
    /// Returns the durable stream end at the moment of the crash, so
    /// harnesses can stamp a `Stage::Crash` trace event with it.
    pub fn crash(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        let Some(h) = self.handle.take() else {
            return 0;
        };
        let mut server = h.join().expect("server thread panicked");
        let end = server.store_mut().stream_end();
        // Drop without further syncing. (The graceful-path sync in the
        // thread already ran; true torn-write crashes are exercised at
        // the storage layer, where the disk state can be manipulated
        // directly.)
        drop(server);
        end
    }
}

impl Drop for ServerRunner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenStore;
    use crate::ServerConfig;
    use dlog_net::wire::{Message, NodeAddr, Packet, Request, Response};
    use dlog_net::{FaultPlan, MemNetwork};
    use dlog_storage::{LogStore, NvramDevice, StoreOptions};
    use dlog_types::{ClientId, Epoch, LogData, Lsn, ServerId};

    #[test]
    fn runner_serves_over_mem_network() {
        let dir = std::env::temp_dir()
            .join("dlog-runner-tests")
            .join(format!("serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = StoreOptions {
            fsync: false,
            ..StoreOptions::default()
        };
        let store = LogStore::open(&dir, opts, NvramDevice::new(1 << 20)).unwrap();
        let gens = GenStore::open(dir.join("gens")).unwrap();
        let server = LogServer::new(ServerConfig::new(ServerId(1)), store, gens).unwrap();

        let net = MemNetwork::new(FaultPlan::reliable());
        let server_ep = net.endpoint(NodeAddr(1));
        let client_ep = net.endpoint(NodeAddr(100));
        let runner = ServerRunner::spawn(server, server_ep);

        // Force three records and await the ack.
        let records: Vec<(Lsn, LogData)> = (1..=3)
            .map(|i| (Lsn(i), LogData::from(vec![i as u8; 10])))
            .collect();
        client_ep
            .send(
                NodeAddr(1),
                &Packet::bare(Message::ForceLog {
                    client: ClientId(9),
                    epoch: Epoch(1),
                    records,
                }),
            )
            .unwrap();
        let (_, pkt) = client_ep
            .recv(Duration::from_secs(2))
            .unwrap()
            .expect("ack");
        assert_eq!(
            pkt.msg,
            Message::NewHighLsn {
                client: ClientId(9),
                lsn: Lsn(3)
            }
        );

        // RPC round trip.
        client_ep
            .send(
                NodeAddr(1),
                &Packet::bare(Message::Request {
                    id: 77,
                    body: Request::IntervalList {
                        client: ClientId(9),
                    },
                }),
            )
            .unwrap();
        let (_, pkt) = client_ep
            .recv(Duration::from_secs(2))
            .unwrap()
            .expect("resp");
        match pkt.msg {
            Message::Response {
                id: 77,
                body: Response::Intervals { intervals },
            } => {
                assert_eq!(intervals.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }

        let server = runner.stop();
        assert_eq!(server.stats().records_stored, 3);
    }
}
