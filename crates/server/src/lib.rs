//! The log-server node: protocol handling on top of the storage engine.
//!
//! A log server implements the interface of Figure 4-1 (§4.2):
//!
//! * asynchronous `WriteLog` / `ForceLog` messages carrying batches of log
//!   records, acknowledged (for forces) by `NewHighLSN`;
//! * **gap detection**: a batch whose LSNs are not contiguous with the
//!   client's stored records is refused and answered with a prompt
//!   `MissingInterval` NAK; the client either resends the gap or
//!   authorizes a fresh interval with `NewInterval`;
//! * **duplicate suppression by LSN**: re-delivered records at or below
//!   the stored high LSN are ignored, which is the paper's lightweight
//!   alternative to connection state for small records;
//! * strict RPCs for the rare operations: `IntervalList`,
//!   `ReadLogForward` / `ReadLogBackward`, and the recovery pair
//!   `CopyLog` / `InstallCopies`;
//! * **load shedding**: an overloaded server "is free to ignore ForceLog
//!   and WriteLog messages", but always answers reads and interval lists;
//! * hosting of **generator state representatives** (Appendix I) so the
//!   replicated epoch generator needs no extra nodes.
//!
//! [`LogServer::handle`] is sans-I/O — it maps one incoming packet to a
//! list of outgoing packets — so the full protocol is unit-testable
//! without threads; [`runner::ServerRunner`] drives it over any
//! [`dlog_net::Endpoint`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod runner;
pub mod shard;

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dlog_archive::{merge_interval_lists, ArchiveReader, Archiver, ObjectStore};
use dlog_net::wire::{codes, Message, NodeAddr, Packet, Request, Response, MAX_PACKET_BYTES};
use dlog_storage::LogStore;
use dlog_types::{ClientId, DlogError, Epoch, LogData, LogRecord, Lsn, Result, ServerId};

use crate::gen::GenStore;

/// Per-client protocol state kept by the server.
#[derive(Debug, Default)]
struct Session {
    /// A `NewInterval` authorization: the next noncontiguous record the
    /// server will accept as the start of a fresh interval.
    pending_interval: Option<(Epoch, Lsn)>,
    /// Where acknowledgments should be sent (last address seen).
    last_addr: Option<NodeAddr>,
}

/// Server behaviour knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// This server's identity.
    pub id: ServerId,
    /// Push an unsolicited `NewHighLSN` after this many buffered (unforced)
    /// records from a client ("asynchronously requested positive
    /// acknowledgments", §4.2). 0 disables.
    pub ack_every: u64,
    /// Cap on records packed into a read response.
    pub read_batch: u32,
    /// Group-commit coalescing window: a `ForceLog` ack may be deferred
    /// up to this long so forces from concurrently-waiting clients share
    /// one physical durability round. The window is the *maximum* extra
    /// latency under sustained load — the runner flushes the pending
    /// batch as soon as its inbox drains. Zero (the default) keeps the
    /// fully synchronous force-per-message path.
    pub coalesce_window: Duration,
    /// Flush the pending group-commit batch early once this many clients
    /// are waiting, regardless of the window.
    pub coalesce_max_batch: usize,
    /// Index of the shard this instance serves (0 when unsharded). Only
    /// identity: routing happens in the [`shard`] supervisor before a
    /// packet reaches [`LogServer::handle_into`].
    pub shard: u64,
    /// Total shards in the owning process (1 when unsharded). Reported in
    /// `Status`/`Stats` so operators can tell a shard row from a whole
    /// server.
    pub shards: u64,
}

impl ServerConfig {
    /// Defaults for a server with the given id.
    #[must_use]
    pub fn new(id: ServerId) -> Self {
        ServerConfig {
            id,
            ack_every: 64,
            read_batch: 512,
            coalesce_window: Duration::ZERO,
            coalesce_max_batch: 64,
            shard: 0,
            shards: 1,
        }
    }

    /// The same configuration rebadged for shard `shard` of `shards`.
    #[must_use]
    pub fn for_shard(mut self, shard: u64, shards: u64) -> Self {
        self.shard = shard;
        self.shards = shards.max(1);
        self
    }
}

/// Protocol-level counters (fed into the E3 capacity experiment).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Packets handled.
    pub packets_in: u64,
    /// Packets emitted.
    pub packets_out: u64,
    /// Records accepted and stored.
    pub records_stored: u64,
    /// Duplicate records ignored (LSN-based duplicate suppression).
    pub duplicates_ignored: u64,
    /// `MissingInterval` NAKs sent.
    pub naks_sent: u64,
    /// Write/force messages dropped by load shedding.
    pub writes_shed: u64,
    /// RPC requests served.
    pub rpcs: u64,
    /// Forces acknowledged.
    pub forces_acked: u64,
    /// `ForceLog` requests whose ack was deferred into a group-commit
    /// batch (always 0 when `coalesce_window` is zero).
    pub coalesced_forces: u64,
    /// Physical group-commit rounds flushed. Amortization shows as
    /// `coalesced_forces / group_commits` > 1.
    pub group_commits: u64,
}

/// The archive tier attached to a server: the background archiver, a
/// reader over the newest manifest for serving pruned positions, and the
/// tick throttle.
struct ArchiveTier {
    archiver: Archiver,
    objects: Arc<dyn ObjectStore>,
    reader: Option<ArchiveReader>,
    interval: Duration,
    last_tick: Option<Instant>,
}

/// A log-server node.
pub struct LogServer {
    config: ServerConfig,
    store: LogStore,
    gens: GenStore,
    sessions: HashMap<ClientId, Session>,
    /// Unforced records per client since the last ack.
    unacked: HashMap<ClientId, u64>,
    shedding: bool,
    stats: ServerStats,
    archive: Option<ArchiveTier>,
    obs: dlog_obs::Obs,
    /// Clients whose `ForceLog` ack is deferred into the next group
    /// commit, with the address each ack must go to. A `Vec` (not a map)
    /// keeps the fan-out order deterministic: first-force order.
    pending_forces: Vec<(ClientId, NodeAddr)>,
    /// When the oldest pending force arrived; the coalescing window is
    /// measured from here.
    coalesce_since: Option<Instant>,
    /// Allocations observed on the handling thread during write/force
    /// ingest (`dlog-alloc` thread gauge deltas): the numerator of the
    /// `allocs_per_write` gauge served by `Request::Stats`.
    ingest_allocs: u64,
    /// Records offered to ingest (accepted + duplicates): the
    /// denominator of `allocs_per_write`.
    ingest_records: u64,
}

impl LogServer {
    /// Wrap a recovered [`LogStore`] with protocol state.
    ///
    /// # Errors
    /// Propagates generator-state load failures.
    pub fn new(config: ServerConfig, store: LogStore, gens: GenStore) -> Result<LogServer> {
        Ok(LogServer {
            config,
            store,
            gens,
            sessions: HashMap::new(),
            unacked: HashMap::new(),
            shedding: false,
            stats: ServerStats::default(),
            archive: None,
            obs: dlog_obs::Obs::off(),
            pending_forces: Vec::default(),
            coalesce_since: None,
            ingest_allocs: 0,
            ingest_records: 0,
        })
    }

    /// Attach an observability handle. The same handle is propagated to
    /// the storage engine so `Force` trace events interleave coherently
    /// with the `AckHighLsn` events this layer emits.
    pub fn set_obs(&mut self, obs: dlog_obs::Obs) {
        self.store.set_obs(obs.clone());
        self.obs = obs;
    }

    /// The observability handle attached to this server (off by default).
    #[must_use]
    pub fn obs(&self) -> &dlog_obs::Obs {
        &self.obs
    }

    /// Attach an archive tier: sealed segments are uploaded to `objects`
    /// from [`LogServer::archive_tick`] (throttled to once per
    /// `interval`), retention is clamped to the archived watermark, and
    /// reads of positions the local store has pruned fall back to the
    /// archive.
    ///
    /// # Errors
    /// Propagates backend I/O failures and manifest corruption.
    pub fn attach_archive(
        &mut self,
        objects: Arc<dyn ObjectStore>,
        interval: Duration,
    ) -> Result<()> {
        let archiver = Archiver::new(objects.clone())?;
        self.store.enable_archival();
        let reader = match archiver.manifest() {
            Some(m) => {
                // A restarted server re-learns how far the archive got.
                self.store
                    .note_archived(m.restore_end.min(self.store.stream_end()));
                Some(ArchiveReader::from_manifest(objects.clone(), m.clone())?)
            }
            None => None,
        };
        self.archive = Some(ArchiveTier {
            archiver,
            objects,
            reader,
            interval,
            last_tick: None,
        });
        Ok(())
    }

    /// One background archival round, throttled to the attach interval;
    /// a no-op when no archive is attached or the interval has not
    /// elapsed. Called from the runner's idle loop.
    ///
    /// # Errors
    /// Propagates upload failures after the archiver's bounded retries;
    /// the round is re-runnable verbatim.
    pub fn archive_tick(&mut self) -> Result<()> {
        let Some(tier) = &mut self.archive else {
            return Ok(());
        };
        if tier.last_tick.is_some_and(|t| t.elapsed() < tier.interval) {
            return Ok(());
        }
        tier.last_tick = Some(Instant::now());
        let span = self.obs.start();
        if let Some(m) = tier.archiver.tick(&mut self.store)? {
            tier.reader = Some(ArchiveReader::from_manifest(tier.objects.clone(), m)?);
        }
        let ar = self.archive_stats();
        self.obs.event(
            dlog_obs::Stage::ArchiveTick,
            ar.last_manifest_lsn,
            ar.archived_bytes,
        );
        self.obs.sample_since(dlog_obs::Stage::ArchiveTick, span);
        Ok(())
    }

    /// Archiver gauges; zero when no archive is attached.
    #[must_use]
    pub fn archive_stats(&self) -> dlog_archive::ArchiveStats {
        self.archive
            .as_ref()
            .map(|t| t.archiver.stats())
            .unwrap_or_default()
    }

    /// This server's id.
    #[must_use]
    pub fn id(&self) -> ServerId {
        self.config.id
    }

    /// Protocol counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Storage counters.
    #[must_use]
    pub fn store_stats(&self) -> dlog_storage::StoreStats {
        self.store.stats()
    }

    /// Direct store access (tests and experiments).
    pub fn store_mut(&mut self) -> &mut LogStore {
        &mut self.store
    }

    /// Enable or disable load shedding: while shedding, `WriteLog` and
    /// `ForceLog` are silently ignored (§4.2); reads, interval lists, and
    /// recovery RPCs are still served.
    pub fn set_shedding(&mut self, on: bool) {
        self.shedding = on;
    }

    /// The ingest allocation gauge: `(allocations, records)` observed by
    /// write/force handling since startup. `allocations / records` is the
    /// `allocs_per_write` figure reported by `dlog stats` and the bench
    /// gate; the gauge is live even with observability off.
    #[must_use]
    pub fn ingest_alloc_gauge(&self) -> (u64, u64) {
        (self.ingest_allocs, self.ingest_records)
    }

    /// Handle one packet; returns the packets to transmit. Convenience
    /// wrapper over [`LogServer::handle_into`] — the runner's hot loop
    /// calls `handle_into` with a reused reply buffer instead.
    pub fn handle(&mut self, from: NodeAddr, pkt: &Packet) -> Vec<(NodeAddr, Packet)> {
        let mut out = Vec::default();
        self.handle_into(from, pkt, &mut out);
        out
    }

    /// Handle one packet, appending the packets to transmit onto `out`
    /// (which is *not* cleared — the caller owns its lifecycle, so a
    /// reused buffer adds no per-packet allocation).
    pub fn handle_into(&mut self, from: NodeAddr, pkt: &Packet, out: &mut Vec<(NodeAddr, Packet)>) {
        self.stats.packets_in += 1;
        // Ownership guard: a shard drops (never answers) traffic for
        // another shard's logical log. The dispatcher routes such packets
        // away before they get here; a routing transport, which steers by
        // the wire header alone, must *broadcast* body-derived RPCs (zero
        // hint on the wire) — without this guard a non-owning shard would
        // answer e.g. `IntervalList` with an empty table and race the
        // owning shard's real reply.
        if self.config.shards > 1
            && pkt.route_key().is_some_and(|id| {
                id.shard(self.config.shards as usize) != self.config.shard as usize
            })
        {
            return;
        }
        let out_before = out.len();
        match &pkt.msg {
            Message::WriteLog {
                client,
                epoch,
                records,
            } => {
                if self.shedding {
                    self.stats.writes_shed += 1;
                } else {
                    self.ingest(from, *client, *epoch, records, false, out);
                }
            }
            Message::ForceLog {
                client,
                epoch,
                records,
            } => {
                if self.shedding {
                    self.stats.writes_shed += 1;
                } else {
                    self.ingest(from, *client, *epoch, records, true, out);
                }
            }
            Message::NewInterval {
                client,
                epoch,
                starting_lsn,
            } => {
                let session = self.sessions.entry(*client).or_default();
                session.pending_interval = Some((*epoch, *starting_lsn));
                session.last_addr = Some(from);
            }
            Message::Request { id, body } => {
                self.stats.rpcs += 1;
                let body = self.serve(body);
                out.push((from, Packet::bare(Message::Response { id: *id, body })));
            }
            // Handshake traffic and client-bound messages are not for the
            // data-plane server; ignore.
            _ => {}
        }
        self.stats.packets_out += (out.len() - out_before) as u64;
    }

    /// Ingest a write/force batch, producing NAKs or acks.
    fn ingest(
        &mut self,
        from: NodeAddr,
        client: ClientId,
        epoch: Epoch,
        records: &[(Lsn, LogData)],
        force: bool,
        out: &mut Vec<(NodeAddr, Packet)>,
    ) {
        let span = self.obs.start();
        let allocs_at_entry = dlog_obs::gauge::thread_allocs();
        let stored_before = self.stats.records_stored;
        let session = self.sessions.entry(client).or_default();
        session.last_addr = Some(from);
        let pending = session.pending_interval;

        let mut naked = false;
        for (lsn, data) in records {
            let last = self.store.last_interval(client);
            let accept = match last {
                // First contact: only the canonical origin, or a start
                // the client explicitly declared via `NewInterval`, may
                // open the log. Accepting an arbitrary first LSN would
                // let a lossy/reordered first contact open the log past
                // a dropped record — the hole is then invisible
                // (duplicate suppression swallows the straggler when it
                // arrives) and the cumulative `NewHighLSN` ack
                // overstates what this server holds. NAKing instead
                // makes the client resend from the origin; dlog-mc's
                // durable-prefix invariant exists to catch exactly the
                // ack-overstatement this guard prevents.
                None => *lsn == Lsn::FIRST || pending == Some((epoch, *lsn)),
                Some(iv) => {
                    if epoch < iv.epoch {
                        // Stale epoch: a pre-crash straggler. Ignore.
                        self.stats.duplicates_ignored += 1;
                        continue;
                    }
                    if epoch == iv.epoch && *lsn <= iv.hi {
                        // LSN-based duplicate suppression (§4.2).
                        self.stats.duplicates_ignored += 1;
                        continue;
                    }
                    if epoch == iv.epoch && iv.hi.precedes(*lsn) {
                        true // contiguous extension
                    } else {
                        // Noncontiguous: only a NewInterval authorization
                        // admits it.
                        pending == Some((epoch, *lsn))
                    }
                }
            };
            if accept {
                // `share()`: a refcount bump onto the receive buffer's
                // payload view — the record travels from wire to store
                // without its bytes ever being copied here.
                let record = LogRecord::present(*lsn, epoch, data.share());
                match self.store.write(client, &record) {
                    Ok(()) => {
                        self.stats.records_stored += 1;
                        if pending == Some((epoch, *lsn)) {
                            self.sessions.entry(client).or_default().pending_interval = None;
                        }
                    }
                    Err(e) => {
                        // Storage order violations cannot happen for
                        // accepted records; treat as fatal corruption.
                        panic!("store rejected validated record: {e}");
                    }
                }
            } else if !naked {
                // Prompt NAK for the first gap (§4.2: "it notifies the
                // client of the missing interval immediately").
                let gap_lo = self
                    .store
                    .last_interval(client)
                    .map_or(Lsn::FIRST, |iv| iv.hi.next());
                let gap_hi = lsn.prev().unwrap_or(Lsn::FIRST);
                out.push((
                    from,
                    Packet::bare(Message::MissingInterval {
                        client,
                        lo: gap_lo,
                        hi: gap_hi,
                    }),
                ));
                self.stats.naks_sent += 1;
                naked = true;
            }
        }

        if force {
            if self.config.coalesce_window.is_zero() {
                if let Err(e) = self.store.force(client) {
                    // A force that cannot reach stable storage is fatal for a
                    // log server.
                    panic!("force failed: {e}");
                }
                self.stats.forces_acked += 1;
                self.unacked.insert(client, 0);
                if let Some(iv) = self.store.last_interval(client) {
                    // Forced acks set bit 0 of the detail word: the trace
                    // invariant checker requires a preceding Force event for
                    // exactly these.
                    self.obs
                        .event(dlog_obs::Stage::AckHighLsn, iv.hi.0, (client.0 << 1) | 1);
                    out.push((
                        from,
                        Packet::bare(Message::NewHighLsn { client, lsn: iv.hi }),
                    ));
                }
            } else {
                // Defer: the group-commit scheduler owns this ack. A
                // repeat force from the same client just refreshes its
                // reply address; the durability obligation is already
                // queued.
                self.stats.coalesced_forces += 1;
                match self.pending_forces.iter_mut().find(|(c, _)| *c == client) {
                    Some(slot) => slot.1 = from,
                    None => self.pending_forces.push((client, from)),
                }
                if self.coalesce_since.is_none() {
                    self.coalesce_since = Some(Instant::now());
                }
                if self.pending_forces.len() >= self.config.coalesce_max_batch {
                    self.flush_forces(out);
                }
            }
        } else if self.config.ack_every > 0 {
            let n = self.unacked.entry(client).or_insert(0);
            *n += records.len() as u64;
            if *n >= self.config.ack_every {
                *n = 0;
                if let Some(iv) = self.store.last_interval(client) {
                    // Unsolicited lazy ack: bit 0 clear, no Force required.
                    self.obs
                        .event(dlog_obs::Stage::AckHighLsn, iv.hi.0, client.0 << 1);
                    out.push((
                        from,
                        Packet::bare(Message::NewHighLsn { client, lsn: iv.hi }),
                    ));
                }
            }
        }

        let accepted = self.stats.records_stored - stored_before;
        let batch_hi = records.last().map_or(0, |(lsn, _)| lsn.0);
        self.obs
            .event(dlog_obs::Stage::ServerIngest, batch_hi, accepted);
        self.obs.sample_since(dlog_obs::Stage::ServerIngest, span);
        self.ingest_allocs = self
            .ingest_allocs
            .wrapping_add(dlog_obs::gauge::thread_allocs().wrapping_sub(allocs_at_entry));
        self.ingest_records += records.len() as u64;
    }

    /// True when at least one `ForceLog` ack is waiting on the next group
    /// commit. The runner uses this to shrink its receive timeout so a
    /// pending batch is never stranded behind a quiet socket.
    #[must_use]
    pub fn has_pending_forces(&self) -> bool {
        !self.pending_forces.is_empty()
    }

    /// Clients whose `ForceLog` ack is deferred into the next group
    /// commit, in first-force order (the order the ack fan-out will
    /// use). The model checker folds this into its state fingerprint —
    /// two states differing only in deferred obligations must not be
    /// merged — and checks every obligation is acked by a flush.
    #[must_use]
    pub fn coalescing_obligations(&self) -> Vec<ClientId> {
        self.pending_forces.iter().map(|(c, _)| *c).collect()
    }

    /// Outstanding `NewInterval` authorizations, sorted by client: the
    /// next noncontiguous record each client is allowed to open a fresh
    /// interval with. Part of the model checker's state fingerprint —
    /// an unconsumed grant changes which future writes are accepted.
    #[must_use]
    pub fn interval_grants(&self) -> Vec<(ClientId, Epoch, Lsn)> {
        let mut grants: Vec<(ClientId, Epoch, Lsn)> = self
            .sessions
            .iter()
            .filter_map(|(c, s)| s.pending_interval.map(|(e, l)| (*c, e, l)))
            .collect();
        grants.sort_unstable();
        grants
    }

    /// Flush the pending group-commit batch if it is due — its coalescing
    /// window has expired or it reached the size cap — returning the
    /// `NewHighLSN` fan-out to transmit.
    #[must_use]
    pub fn force_tick(&mut self) -> Vec<(NodeAddr, Packet)> {
        let due = match self.coalesce_since {
            Some(t) => {
                t.elapsed() >= self.config.coalesce_window
                    || self.pending_forces.len() >= self.config.coalesce_max_batch
            }
            None => false,
        };
        let mut out = Vec::new();
        if due {
            self.flush_forces(&mut out);
        }
        self.stats.packets_out += out.len() as u64;
        out
    }

    /// Flush the pending batch *now*, regardless of the window. The
    /// runner calls this when its inbox drains: the window is the maximum
    /// extra latency under sustained load, while an otherwise-idle server
    /// acks a lone client's force immediately.
    #[must_use]
    pub fn flush_pending_forces(&mut self) -> Vec<(NodeAddr, Packet)> {
        let mut out = Vec::new();
        self.flush_forces(&mut out);
        self.stats.packets_out += out.len() as u64;
        out
    }

    /// One group commit: a single physical durability round covering
    /// every waiting client, then per-client `NewHighLSN` fan-out.
    fn flush_forces(&mut self, out: &mut Vec<(NodeAddr, Packet)>) {
        if self.pending_forces.is_empty() {
            return;
        }
        self.coalesce_since = None;
        let batch = std::mem::take(&mut self.pending_forces);
        let clients: Vec<ClientId> = batch.iter().map(|(c, _)| *c).collect();
        if self.store.force_batch(&clients).is_err() {
            // A failed physical force must not ack ANY client in the
            // batch: acking without durability is exactly the bug the
            // ack-after-force invariant exists to prevent. Dropping the
            // obligations un-acked lets each client's retry path
            // re-issue its ForceLog against a store that may have
            // recovered in the meantime.
            return;
        }
        self.stats.group_commits += 1;
        let batch_size = batch.len() as u64;
        let mut round_hi = 0u64;
        for (client, addr) in batch {
            self.stats.forces_acked += 1;
            self.unacked.insert(client, 0);
            if let Some(iv) = self.store.last_interval(client) {
                round_hi = round_hi.max(iv.hi.0);
                // Forced ack (bit 0 set): the runtime checker demands the
                // Force event `force_batch` just emitted for this client.
                self.obs
                    .event(dlog_obs::Stage::AckHighLsn, iv.hi.0, (client.0 << 1) | 1);
                out.push((
                    addr,
                    Packet::bare(Message::NewHighLsn { client, lsn: iv.hi }),
                ));
            }
        }
        // The GroupCommit histogram records batch sizes, not latencies:
        // amortization is the quantity of interest here.
        self.obs
            .event(dlog_obs::Stage::GroupCommit, round_hi, batch_size);
        self.obs.sample(dlog_obs::Stage::GroupCommit, batch_size);
    }

    /// Serve a strict RPC.
    fn serve(&mut self, req: &Request) -> Response {
        match req {
            Request::IntervalList { client } => {
                let live = self.store.interval_list(*client);
                let intervals = match self.archive.as_ref().and_then(|t| t.reader.as_ref()) {
                    // The archive holds the head retention may have pruned
                    // locally; clients see the union.
                    Some(reader) => merge_interval_lists(&reader.interval_list(*client), &live),
                    None => live,
                };
                Response::Intervals { intervals }
            }
            Request::ReadLogForward {
                client,
                lsn,
                max_records,
            } => self.read_batch(*client, *lsn, *max_records, true),
            Request::ReadLogBackward {
                client,
                lsn,
                max_records,
            } => self.read_batch(*client, *lsn, *max_records, false),
            Request::CopyLog {
                client,
                epoch,
                records,
            } => {
                for r in records {
                    if r.epoch != *epoch {
                        // Static detail strings: the code is the machine-
                        // readable part, and a formatted epoch would be
                        // the only allocation on this path.
                        return Response::Err {
                            code: codes::PROTOCOL,
                            detail: "CopyLog record epoch differs from call epoch".into(),
                        };
                    }
                    match self.store.stage_copy(*client, r) {
                        Ok(()) => {}
                        Err(DlogError::StaleEpoch { .. }) => {
                            return Response::Err {
                                code: codes::STALE_EPOCH,
                                detail: "server epoch already at or past the staged epoch".into(),
                            }
                        }
                        Err(_) => {
                            return Response::Err {
                                code: codes::STORAGE,
                                detail: "storage failure staging recovery copy".into(),
                            }
                        }
                    }
                }
                Response::Ok
            }
            Request::InstallCopies { client, epoch } => {
                match self.store.install_copies(*client, *epoch) {
                    Ok(()) => Response::Ok,
                    Err(_)
                        if self
                            .store
                            .last_interval(*client)
                            .is_some_and(|iv| iv.epoch == *epoch) =>
                    {
                        // Retried install after a lost response: the epoch
                        // is already installed. Idempotent success.
                        Response::Ok
                    }
                    Err(_) => Response::Err {
                        code: codes::STORAGE,
                        detail: "storage failure installing recovery copies".into(),
                    },
                }
            }
            Request::Status => {
                let st = self.stats;
                let ar = self.archive_stats();
                let pending = self
                    .archive
                    .as_ref()
                    .map_or(0, |t| t.archiver.pending_bytes(&self.store));
                Response::Status {
                    records_stored: st.records_stored,
                    duplicates_ignored: st.duplicates_ignored,
                    naks_sent: st.naks_sent,
                    writes_shed: st.writes_shed,
                    rpcs: st.rpcs,
                    forces_acked: st.forces_acked,
                    clients: self.store.clients().len() as u64,
                    on_disk_bytes: self.store.on_disk_bytes(),
                    tracks_flushed: self.store.stats().tracks_flushed,
                    archived_bytes: ar.archived_bytes,
                    pending_upload_bytes: pending,
                    last_manifest_lsn: ar.last_manifest_lsn,
                    upload_retries: ar.upload_retries,
                    coalesced_forces: st.coalesced_forces,
                    group_commits: st.group_commits,
                    shard: self.config.shard,
                    shards: self.config.shards,
                }
            }
            Request::Stats => {
                // The allocation gauge is served even with observability
                // off: dlog-alloc counts unconditionally.
                let (ingest_allocs, ingest_records) = self.ingest_alloc_gauge();
                let Some(snap) = self.obs.snapshot() else {
                    return Response::Stats {
                        stages: Vec::default(),
                        trace_events: 0,
                        trace_dropped: 0,
                        ingest_allocs,
                        ingest_records,
                        shard: self.config.shard,
                        shards: self.config.shards,
                    };
                };
                let stages = snap
                    .stages
                    .iter()
                    .map(|s| dlog_net::wire::StageStats {
                        stage: s.stage.as_u8(),
                        count: s.hist.count(),
                        max_ns: s.hist.max,
                        buckets: s.hist.sparse(),
                    })
                    .collect();
                Response::Stats {
                    stages,
                    trace_events: snap.trace_events,
                    trace_dropped: snap.trace_dropped,
                    ingest_allocs,
                    ingest_records,
                    shard: self.config.shard,
                    shards: self.config.shards,
                }
            }
            Request::GenRead { generator } => Response::GenValue {
                value: self.gens.read(*generator),
            },
            Request::GenWrite { generator, value } => match self.gens.write(*generator, *value) {
                Ok(()) => Response::Ok,
                Err(_) => Response::Err {
                    code: codes::STORAGE,
                    detail: "storage failure persisting generator state".into(),
                },
            },
        }
    }

    fn read_batch(&mut self, client: ClientId, lsn: Lsn, max: u32, forward: bool) -> Response {
        // One pre-sized allocation for the whole batch: the loop below
        // never pushes past `max.min(read_batch)` entries.
        let cap = max.min(self.config.read_batch) as usize;
        let mut records = Vec::with_capacity(cap);
        let mut bytes = 0usize;
        let mut cursor = lsn;
        // "A log server does not respond to ServerReadLog requests for
        // records that it does not store" (§3.1.1) — at the batch level an
        // empty response tells the client to ask elsewhere, while records
        // marked not-present ARE returned.
        loop {
            if records.len() >= cap {
                break;
            }
            // Live store first; a position retention has pruned falls back
            // to the archive tier, making the log bottomless for readers.
            let fetched = match self.store.read(client, cursor) {
                Ok(Some(rec)) => Some(rec),
                Ok(None) => match self.archive.as_mut().and_then(|t| t.reader.as_mut()) {
                    Some(reader) => match reader.read(client, cursor) {
                        Ok(rec) => rec,
                        Err(_) => {
                            return Response::Err {
                                code: codes::STORAGE,
                                detail: "archive read failure".into(),
                            }
                        }
                    },
                    None => None,
                },
                Err(_) => {
                    return Response::Err {
                        code: codes::STORAGE,
                        detail: "storage read failure".into(),
                    }
                }
            };
            match fetched {
                Some(rec) => {
                    bytes += rec.data.len() + 32;
                    if bytes > MAX_PACKET_BYTES - 128 && !records.is_empty() {
                        break;
                    }
                    records.push(rec);
                }
                None => break,
            }
            cursor = if forward {
                cursor.next()
            } else {
                match cursor.prev() {
                    Some(p) if p > Lsn::ZERO => p,
                    _ => break,
                }
            };
        }
        Response::Records { records }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlog_storage::{NvramDevice, StoreOptions};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join("dlog-server-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn server(name: &str) -> LogServer {
        let dir = tmpdir(name);
        let opts = StoreOptions {
            fsync: false,
            checkpoint_every: 0,
            ..StoreOptions::default()
        };
        let store = LogStore::open(&dir, opts, NvramDevice::new(1 << 20)).unwrap();
        let gens = GenStore::open(dir.join("gens")).unwrap();
        LogServer::new(ServerConfig::new(ServerId(1)), store, gens).unwrap()
    }

    fn batch(lo: u64, hi: u64) -> Vec<(Lsn, LogData)> {
        (lo..=hi)
            .map(|i| (Lsn(i), LogData::from(vec![i as u8; 50])))
            .collect()
    }

    const CL: ClientId = ClientId(7);
    const FROM: NodeAddr = NodeAddr(99);

    fn force(s: &mut LogServer, epoch: u64, lo: u64, hi: u64) -> Vec<(NodeAddr, Packet)> {
        s.handle(
            FROM,
            &Packet::bare(Message::ForceLog {
                client: CL,
                epoch: Epoch(epoch),
                records: batch(lo, hi),
            }),
        )
    }

    #[test]
    fn force_acks_with_new_high_lsn() {
        let mut s = server("ack");
        let out = force(&mut s, 1, 1, 7);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, FROM);
        assert_eq!(
            out[0].1.msg,
            Message::NewHighLsn {
                client: CL,
                lsn: Lsn(7)
            },
        );
        assert_eq!(s.stats().records_stored, 7);
        assert_eq!(s.stats().forces_acked, 1);
    }

    #[test]
    fn gap_triggers_missing_interval_nak() {
        let mut s = server("nak");
        force(&mut s, 1, 1, 3);
        // Records 4..5 lost; 6..7 arrive.
        let out = force(&mut s, 1, 6, 7);
        // First reply: the NAK; then the ack for what IS stored (3).
        assert_eq!(
            out[0].1.msg,
            Message::MissingInterval {
                client: CL,
                lo: Lsn(4),
                hi: Lsn(5)
            }
        );
        assert_eq!(
            out[1].1.msg,
            Message::NewHighLsn {
                client: CL,
                lsn: Lsn(3)
            }
        );
        assert_eq!(s.stats().naks_sent, 1);
        // Resending the full gap completes the log.
        let out = force(&mut s, 1, 4, 7);
        assert_eq!(
            out.last().unwrap().1.msg,
            Message::NewHighLsn {
                client: CL,
                lsn: Lsn(7)
            }
        );
    }

    #[test]
    fn duplicates_ignored_by_lsn() {
        let mut s = server("dup");
        force(&mut s, 1, 1, 5);
        let out = force(&mut s, 1, 3, 5); // retransmission
        assert_eq!(s.stats().duplicates_ignored, 3);
        assert_eq!(s.stats().records_stored, 5);
        assert_eq!(
            out.last().unwrap().1.msg,
            Message::NewHighLsn {
                client: CL,
                lsn: Lsn(5)
            }
        );
    }

    #[test]
    fn new_interval_authorizes_gap() {
        let mut s = server("newint");
        force(&mut s, 1, 1, 3);
        s.handle(
            FROM,
            &Packet::bare(Message::NewInterval {
                client: CL,
                epoch: Epoch(1),
                starting_lsn: Lsn(10),
            }),
        );
        let out = force(&mut s, 1, 10, 12);
        assert_eq!(
            out.last().unwrap().1.msg,
            Message::NewHighLsn {
                client: CL,
                lsn: Lsn(12)
            }
        );
        assert_eq!(s.stats().naks_sent, 0);
        // Two intervals now.
        let resp = s.serve(&Request::IntervalList { client: CL });
        match resp {
            Response::Intervals { intervals } => assert_eq!(intervals.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shedding_drops_writes_but_serves_reads() {
        let mut s = server("shed");
        force(&mut s, 1, 1, 3);
        s.set_shedding(true);
        let out = force(&mut s, 1, 4, 5);
        assert!(out.is_empty(), "shed writes get no reply at all");
        assert_eq!(s.stats().writes_shed, 1);
        // Reads still work.
        let out = s.handle(
            FROM,
            &Packet::bare(Message::Request {
                id: 1,
                body: Request::ReadLogForward {
                    client: CL,
                    lsn: Lsn(1),
                    max_records: 10,
                },
            }),
        );
        match &out[0].1.msg {
            Message::Response {
                body: Response::Records { records },
                ..
            } => {
                assert_eq!(records.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn read_forward_and_backward() {
        let mut s = server("read");
        force(&mut s, 1, 1, 20);
        match s.serve(&Request::ReadLogForward {
            client: CL,
            lsn: Lsn(5),
            max_records: 3,
        }) {
            Response::Records { records } => {
                let lsns: Vec<u64> = records.iter().map(|r| r.lsn.0).collect();
                assert_eq!(lsns, vec![5, 6, 7]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match s.serve(&Request::ReadLogBackward {
            client: CL,
            lsn: Lsn(5),
            max_records: 3,
        }) {
            Response::Records { records } => {
                let lsns: Vec<u64> = records.iter().map(|r| r.lsn.0).collect();
                assert_eq!(lsns, vec![5, 4, 3]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unstored LSN: empty response.
        match s.serve(&Request::ReadLogForward {
            client: CL,
            lsn: Lsn(21),
            max_records: 3,
        }) {
            Response::Records { records } => assert!(records.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn copylog_install_flow() {
        let mut s = server("copy");
        force(&mut s, 1, 1, 5);
        // Recovery: copy LSN 5 with epoch 3, append not-present 6.
        let records = vec![
            LogRecord::present(Lsn(5), Epoch(3), vec![9u8; 10]),
            LogRecord::not_present(Lsn(6), Epoch(3)),
        ];
        let r = s.serve(&Request::CopyLog {
            client: CL,
            epoch: Epoch(3),
            records,
        });
        assert_eq!(r, Response::Ok);
        let r = s.serve(&Request::InstallCopies {
            client: CL,
            epoch: Epoch(3),
        });
        assert_eq!(r, Response::Ok);
        // Idempotent retry.
        let r = s.serve(&Request::InstallCopies {
            client: CL,
            epoch: Epoch(3),
        });
        assert_eq!(r, Response::Ok);
        // The rewrite is visible.
        match s.serve(&Request::ReadLogForward {
            client: CL,
            lsn: Lsn(5),
            max_records: 2,
        }) {
            Response::Records { records } => {
                assert_eq!(records[0].epoch, Epoch(3));
                assert!(!records[1].present);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn copylog_stale_epoch_rejected() {
        let mut s = server("copystale");
        force(&mut s, 5, 1, 3);
        let r = s.serve(&Request::CopyLog {
            client: CL,
            epoch: Epoch(4),
            records: vec![LogRecord::present(Lsn(3), Epoch(4), vec![1])],
        });
        assert!(matches!(
            r,
            Response::Err {
                code: codes::STALE_EPOCH,
                ..
            }
        ));
    }

    #[test]
    fn copylog_epoch_mismatch_rejected() {
        let mut s = server("copymis");
        let r = s.serve(&Request::CopyLog {
            client: CL,
            epoch: Epoch(4),
            records: vec![LogRecord::present(Lsn(3), Epoch(5), vec![1])],
        });
        assert!(matches!(
            r,
            Response::Err {
                code: codes::PROTOCOL,
                ..
            }
        ));
    }

    #[test]
    fn stale_epoch_writes_ignored() {
        let mut s = server("stale");
        force(&mut s, 5, 1, 3);
        let out = force(&mut s, 4, 4, 5); // pre-crash stragglers
        assert_eq!(s.stats().duplicates_ignored, 2);
        assert_eq!(s.stats().records_stored, 3);
        // Force still acks the stored high.
        assert_eq!(
            out.last().unwrap().1.msg,
            Message::NewHighLsn {
                client: CL,
                lsn: Lsn(3)
            }
        );
    }

    #[test]
    fn unsolicited_acks_every_n_buffered_records() {
        let mut s = server("periodic");
        s.config.ack_every = 10;
        let mut acks = 0;
        for chunk in 0..5u64 {
            let lo = chunk * 5 + 1;
            let out = s.handle(
                FROM,
                &Packet::bare(Message::WriteLog {
                    client: CL,
                    epoch: Epoch(1),
                    records: batch(lo, lo + 4),
                }),
            );
            acks += out.len();
        }
        // 25 buffered records with ack_every=10: the counter crosses the
        // threshold (and resets) after batches 2 and 4 → 2 unsolicited acks.
        assert_eq!(acks, 2);
    }

    #[test]
    fn coalescing_defers_ack_until_flush() {
        let mut s = server("coalesce");
        s.config.coalesce_window = Duration::from_millis(250);
        let out = force(&mut s, 1, 1, 7);
        assert!(out.is_empty(), "ack must wait for the group commit");
        assert!(s.has_pending_forces());
        assert_eq!(s.stats().coalesced_forces, 1);
        assert_eq!(s.stats().forces_acked, 0);
        // Window not expired: force_tick is a no-op.
        assert!(s.force_tick().is_empty());
        assert!(s.has_pending_forces());
        // Idle flush commits immediately.
        let out = s.flush_pending_forces();
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].1.msg,
            Message::NewHighLsn {
                client: CL,
                lsn: Lsn(7)
            }
        );
        assert!(!s.has_pending_forces());
        assert_eq!(s.stats().forces_acked, 1);
        assert_eq!(s.stats().group_commits, 1);
    }

    #[test]
    fn repeat_force_refreshes_slot_not_batch() {
        let mut s = server("refresh");
        s.config.coalesce_window = Duration::from_millis(250);
        force(&mut s, 1, 1, 3);
        // A retried force (same client, new address) must not grow the
        // batch — and the ack must go to the newest address.
        let out = s.handle(
            NodeAddr(55),
            &Packet::bare(Message::ForceLog {
                client: CL,
                epoch: Epoch(1),
                records: batch(1, 3),
            }),
        );
        assert!(out.is_empty());
        assert_eq!(s.stats().coalesced_forces, 2);
        let out = s.flush_pending_forces();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, NodeAddr(55));
        assert_eq!(s.stats().group_commits, 1);
    }

    #[test]
    fn batch_cap_flushes_inline() {
        let mut s = server("cap");
        s.config.coalesce_window = Duration::from_secs(3600);
        s.config.coalesce_max_batch = 2;
        let out = force(&mut s, 1, 1, 2);
        assert!(out.is_empty());
        // A second client's force hits the cap: one physical round, two
        // fan-out acks, in first-force order.
        let out = s.handle(
            NodeAddr(42),
            &Packet::bare(Message::ForceLog {
                client: ClientId(8),
                epoch: Epoch(1),
                records: vec![(Lsn(1), LogData::from(vec![1u8; 10]))],
            }),
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, FROM);
        assert_eq!(out[1].0, NodeAddr(42));
        assert_eq!(s.stats().group_commits, 1);
        assert_eq!(s.stats().forces_acked, 2);
        assert!(!s.has_pending_forces());
    }

    #[test]
    fn force_tick_flushes_after_window() {
        let mut s = server("tick");
        s.config.coalesce_window = Duration::from_millis(1);
        force(&mut s, 1, 1, 4);
        std::thread::sleep(Duration::from_millis(5));
        let out = s.force_tick();
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].1.msg,
            Message::NewHighLsn {
                client: CL,
                lsn: Lsn(4)
            }
        );
    }

    #[test]
    fn generator_rpcs() {
        let mut s = server("gen");
        assert_eq!(
            s.serve(&Request::GenRead { generator: 1 }),
            Response::GenValue { value: 0 }
        );
        assert_eq!(
            s.serve(&Request::GenWrite {
                generator: 1,
                value: 42
            }),
            Response::Ok
        );
        assert_eq!(
            s.serve(&Request::GenRead { generator: 1 }),
            Response::GenValue { value: 42 }
        );
        // Writes are monotonic: a lower write does not regress the value.
        assert_eq!(
            s.serve(&Request::GenWrite {
                generator: 1,
                value: 17
            }),
            Response::Ok
        );
        assert_eq!(
            s.serve(&Request::GenRead { generator: 1 }),
            Response::GenValue { value: 42 }
        );
    }
}
