//! Generator state representatives (Appendix I).
//!
//! "The state of the replicated identifier generator is replicated on N
//! generator state representative nodes that each store an integer in
//! non-volatile storage. Generator state representatives provide Read and
//! Write operations that are atomic at individual representatives."
//!
//! Representatives are hosted on log-server nodes ("representatives of a
//! replicated identifier generator's state will normally be implemented on
//! log server nodes", §3.2 fn. 3). Each representative's integer is kept
//! in a small file rewritten atomically (write-temp + rename + fsync).

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// File-backed store of generator representative values.
#[derive(Debug)]
pub struct GenStore {
    dir: PathBuf,
    values: HashMap<u64, u64>,
}

impl GenStore {
    /// Open (or create) the representative store in `dir`, loading every
    /// stored value.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<GenStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut values = HashMap::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name
                .strip_prefix("gen-")
                .and_then(|s| s.strip_suffix(".val"))
            {
                if let Ok(id) = id.parse::<u64>() {
                    // A valid value file is exactly 8 bytes; read into a
                    // 9-byte stack buffer so an oversized file is detected
                    // (9 bytes read) without heap-allocating per file.
                    let mut buf = [0u8; 9];
                    let n = read_up_to(&mut File::open(entry.path())?, &mut buf)?;
                    if n == 8 {
                        if let Some(v) = dlog_types::bytes::u64_le_at(&buf, 0) {
                            values.insert(id, v);
                        }
                    }
                }
            }
        }
        Ok(GenStore { dir, values })
    }

    /// Atomic read of representative `id` (0 if never written — smaller
    /// than any identifier the generator issues).
    #[must_use]
    pub fn read(&self, id: u64) -> u64 {
        self.values.get(&id).copied().unwrap_or(0)
    }

    /// Atomic, monotonic write of representative `id`: the stored value
    /// only ever increases (NewID always writes "a value higher than any
    /// read", so regressions can only be stale retries).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write(&mut self, id: u64, value: u64) -> io::Result<()> {
        let current = self.read(id);
        if value <= current {
            return Ok(()); // stale retry; ignore
        }
        // `gen-` (4) + 20 digits + `.val.tmp` (8) = 32 bytes worst case.
        let tmp = self.dir.join(dlog_types::namebuf!(32, "gen-{id}.val.tmp"));
        let fin = self.dir.join(dlog_types::namebuf!(32, "gen-{id}.val"));
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&value.to_le_bytes())?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &fin)?;
        self.values.insert(id, value);
        Ok(())
    }
}

/// Read as many bytes as `buf` holds (or until EOF), returning the count.
fn read_up_to(f: &mut File, buf: &mut [u8]) -> io::Result<usize> {
    let mut n = 0;
    while let Some(slot) = buf.get_mut(n..) {
        if slot.is_empty() {
            break;
        }
        let k = f.read(slot)?;
        if k == 0 {
            break;
        }
        n += k;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join("dlog-gen-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn read_default_zero() {
        let g = GenStore::open(tmpdir("zero")).unwrap();
        assert_eq!(g.read(1), 0);
        assert_eq!(g.read(999), 0);
    }

    #[test]
    fn write_read_persist() {
        let dir = tmpdir("persist");
        {
            let mut g = GenStore::open(&dir).unwrap();
            g.write(1, 100).unwrap();
            g.write(2, 7).unwrap();
        }
        let g = GenStore::open(&dir).unwrap();
        assert_eq!(g.read(1), 100);
        assert_eq!(g.read(2), 7);
    }

    #[test]
    fn writes_are_monotonic() {
        let mut g = GenStore::open(tmpdir("mono")).unwrap();
        g.write(1, 50).unwrap();
        g.write(1, 30).unwrap(); // stale retry
        assert_eq!(g.read(1), 50);
        g.write(1, 60).unwrap();
        assert_eq!(g.read(1), 60);
    }
}
