//! The protocol over real UDP sockets.
//!
//! §4.2 argues the log service should be implemented on "specialized
//! protocols, rather than being layered on top of expensive general
//! purpose protocols", exploiting "the inherent reliability of local area
//! networks" with end-to-end error detection. UDP datagrams on a LAN (or
//! loopback) are exactly that substrate: unordered, unacknowledged,
//! occasionally lost — and the logging protocol above supplies the
//! end-to-end recovery.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use crate::pool::BufPool;
use crate::wire::{NodeAddr, Packet, MAX_PACKET_BYTES};
use crate::Endpoint;

/// A UDP endpoint with a logical-address directory.
pub struct UdpEndpoint {
    socket: UdpSocket,
    addr: NodeAddr,
    /// Reusable send/receive buffers: sends encode single-pass into a
    /// pooled buffer, receives decode zero-copy payload views out of one.
    pool: BufPool,
    /// Logical → socket address directory.
    directory: RwLock<HashMap<NodeAddr, SocketAddr>>,
    /// Reverse map for attributing received datagrams.
    reverse: RwLock<HashMap<SocketAddr, NodeAddr>>,
    /// Accept datagrams from unknown sources by auto-registering them
    /// under a synthetic logical address (server deployments, where
    /// client ports are ephemeral).
    promiscuous: std::sync::atomic::AtomicBool,
    obs: dlog_obs::Obs,
}

impl UdpEndpoint {
    /// Bind a socket for logical address `addr` at `bind_to` (use port 0
    /// for an ephemeral port; read it back with
    /// [`UdpEndpoint::socket_addr`]).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind(addr: NodeAddr, bind_to: SocketAddr) -> io::Result<UdpEndpoint> {
        let socket = UdpSocket::bind(bind_to)?;
        Ok(UdpEndpoint {
            socket,
            addr,
            pool: BufPool::for_packets(),
            directory: RwLock::new(HashMap::new()),
            reverse: RwLock::new(HashMap::new()),
            promiscuous: std::sync::atomic::AtomicBool::new(false),
            obs: dlog_obs::Obs::off(),
        })
    }

    /// Attach an observability handle; subsequent sends emit
    /// `PacketSend` trace events and latency samples.
    pub fn set_obs(&mut self, obs: dlog_obs::Obs) {
        self.obs = obs;
    }

    /// Accept datagrams from unregistered sources, auto-registering each
    /// under a synthetic logical address so replies route back. Servers
    /// turn this on; clients keep the explicit directory.
    pub fn set_promiscuous(&self, on: bool) {
        self.promiscuous
            .store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// The socket address actually bound.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn socket_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Register a peer's socket address under its logical address.
    pub fn add_peer(&self, peer: NodeAddr, at: SocketAddr) {
        self.directory.write().insert(peer, at);
        self.reverse.write().insert(at, peer);
    }
}

impl Endpoint for UdpEndpoint {
    fn local_addr(&self) -> NodeAddr {
        self.addr
    }

    fn send(&self, to: NodeAddr, packet: &Packet) -> io::Result<()> {
        let Some(dest) = self.directory.read().get(&to).copied() else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("unknown peer {to}"),
            ));
        };
        let mut bytes = self.pool.checkout();
        packet.encode_into(Arc::make_mut(&mut bytes));
        if bytes.len() > MAX_PACKET_BYTES {
            self.pool.give_back(bytes);
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "packet exceeds MTU",
            ));
        }
        let span = self.obs.start();
        let sent = self.socket.send_to(&bytes, dest);
        self.pool.give_back(bytes);
        sent?;
        self.obs
            .event(dlog_obs::Stage::PacketSend, packet.lsn_hint(), to.0);
        self.obs.sample_since(dlog_obs::Stage::PacketSend, span);
        Ok(())
    }

    fn send_many(&self, tos: &[NodeAddr], packet: &Packet) -> io::Result<()> {
        // Replication fan-out: one encode + CRC pass, one `send_to`
        // syscall per destination on the same pooled buffer.
        let mut bytes = self.pool.checkout();
        packet.encode_into(Arc::make_mut(&mut bytes));
        if bytes.len() > MAX_PACKET_BYTES {
            self.pool.give_back(bytes);
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "packet exceeds MTU",
            ));
        }
        let span = self.obs.start();
        let mut result = Ok(());
        for &to in tos {
            let Some(dest) = self.directory.read().get(&to).copied() else {
                result = Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("unknown peer {to}"),
                ));
                break;
            };
            if let Err(e) = self.socket.send_to(&bytes, dest) {
                result = Err(e);
                break;
            }
            self.obs
                .event(dlog_obs::Stage::PacketSend, packet.lsn_hint(), to.0);
        }
        self.pool.give_back(bytes);
        result?;
        self.obs.sample_since(dlog_obs::Stage::PacketSend, span);
        Ok(())
    }

    fn recv(&self, timeout: Duration) -> io::Result<Option<(NodeAddr, Packet)>> {
        // A zero timeout means "do not block"; std maps Duration::ZERO to
        // blocking forever, so clamp to 1ms.
        self.socket
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        // Pooled receive buffer: after the first few packets the resize
        // is a no-op (capacity is retained) and the datagram is read into
        // reused memory.
        let mut arc = self.pool.checkout();
        let buf = Arc::make_mut(&mut arc);
        buf.resize(MAX_PACKET_BYTES + 64, 0);
        match self.socket.recv_from(buf) {
            Ok((n, from)) => {
                buf.truncate(n.min(buf.len()));
                let known = self.reverse.read().get(&from).copied();
                let peer = match known {
                    Some(p) => p,
                    None if self.promiscuous.load(std::sync::atomic::Ordering::Relaxed) => {
                        // Synthesize a stable logical address from the
                        // socket address and register both directions.
                        let mut h = std::collections::hash_map::DefaultHasher::new();
                        use std::hash::{Hash, Hasher};
                        from.hash(&mut h);
                        let peer = NodeAddr(0x8000_0000_0000_0000 | (h.finish() >> 1));
                        self.directory.write().insert(peer, from);
                        self.reverse.write().insert(from, peer);
                        peer
                    }
                    None => {
                        self.pool.give_back(arc);
                        return Ok(None); // unknown party: drop
                    }
                };
                // Zero-copy decode: payloads are views into the pooled
                // buffer; it is reissued once they drop.
                let decoded = Packet::decode_shared(&arc);
                self.pool.give_back(arc);
                match decoded {
                    Ok(p) => Ok(Some((peer, p))),
                    Err(_) => Ok(None), // corrupt datagram: drop
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                self.pool.give_back(arc);
                Ok(None)
            }
            Err(e) => {
                self.pool.give_back(arc);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Message;
    use dlog_types::{ClientId, Epoch, LogData, Lsn};

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    #[test]
    fn udp_roundtrip() {
        let a = UdpEndpoint::bind(NodeAddr(1), loopback()).unwrap();
        let b = UdpEndpoint::bind(NodeAddr(2), loopback()).unwrap();
        a.add_peer(NodeAddr(2), b.socket_addr().unwrap());
        b.add_peer(NodeAddr(1), a.socket_addr().unwrap());

        let msg = Message::ForceLog {
            client: ClientId(9),
            epoch: Epoch(2),
            records: vec![(Lsn(1), LogData::from(vec![0xAA; 700]))],
        };
        a.send(NodeAddr(2), &Packet::bare(msg.clone())).unwrap();
        let (from, p) = b.recv(Duration::from_secs(2)).unwrap().unwrap();
        assert_eq!(from, NodeAddr(1));
        assert_eq!(p.msg, msg);
    }

    #[test]
    fn recv_times_out() {
        let a = UdpEndpoint::bind(NodeAddr(1), loopback()).unwrap();
        assert!(a.recv(Duration::from_millis(20)).unwrap().is_none());
    }

    #[test]
    fn unknown_peer_rejected_on_send() {
        let a = UdpEndpoint::bind(NodeAddr(1), loopback()).unwrap();
        let p = Packet::bare(Message::NewHighLsn {
            client: ClientId(1),
            lsn: Lsn(1),
        });
        assert!(a.send(NodeAddr(42), &p).is_err());
    }

    #[test]
    fn unknown_sender_dropped_on_recv() {
        let a = UdpEndpoint::bind(NodeAddr(1), loopback()).unwrap();
        let stranger = UdpSocket::bind(loopback()).unwrap();
        let p = Packet::bare(Message::NewHighLsn {
            client: ClientId(1),
            lsn: Lsn(1),
        });
        stranger
            .send_to(&p.encode(), a.socket_addr().unwrap())
            .unwrap();
        assert!(a.recv(Duration::from_millis(100)).unwrap().is_none());
    }
}
