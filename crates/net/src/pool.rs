//! Fixed-size receive/send buffer pool for the zero-copy wire path.
//!
//! The hot loop checks a buffer out, fills it (either by
//! [`Packet::encode_into`](crate::wire::Packet::encode_into) on send or a
//! socket read on receive), hands it to
//! [`Packet::decode_shared`](crate::wire::Packet::decode_shared) — which
//! leaves [`dlog_types::LogData`] views pointing into it — and gives it
//! straight back. A buffer that still has live payload views is parked:
//! [`BufPool::checkout`] only reissues buffers whose `Arc` refcount has
//! dropped back to one, so reuse can never scribble over a record another
//! component is still reading. In steady state (payloads consumed before
//! the next poll) every packet is served from the same few buffers and the
//! per-packet allocation count on the wire path is zero.
//!
//! The pool is deliberately tiny and per-endpoint rather than global:
//! endpoint-local pools keep checkout order — and therefore allocation
//! counts — deterministic under the deterministic schedules the replay
//! tests pin down.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

/// Default number of parked buffers per pool: enough for a full ingest
/// batch plus in-flight replies.
pub const DEFAULT_POOL_SLOTS: usize = 64;

/// A bounded pool of reusable `Arc<Vec<u8>>` wire buffers.
pub struct BufPool {
    slots: Mutex<VecDeque<Arc<Vec<u8>>>>,
    max_slots: usize,
    buf_capacity: usize,
}

impl BufPool {
    /// A pool holding at most `max_slots` parked buffers, each created
    /// with `buf_capacity` bytes of capacity.
    #[must_use]
    pub fn new(max_slots: usize, buf_capacity: usize) -> Self {
        BufPool {
            slots: Mutex::new(VecDeque::with_capacity(max_slots)),
            max_slots,
            buf_capacity,
        }
    }

    /// A pool sized for wire packets: [`DEFAULT_POOL_SLOTS`] buffers of
    /// [`MAX_PACKET_BYTES`](crate::wire::MAX_PACKET_BYTES) + slack each.
    #[must_use]
    pub fn for_packets() -> Self {
        BufPool::new(DEFAULT_POOL_SLOTS, crate::wire::MAX_PACKET_BYTES + 64)
    }

    /// Check out a buffer that is guaranteed unique (refcount one), so
    /// `Arc::make_mut` on it never copies. Parked buffers still shared
    /// with live payload views are skipped (and retained for later);
    /// when none is free a fresh buffer is allocated.
    #[must_use]
    pub fn checkout(&self) -> Arc<Vec<u8>> {
        {
            let mut slots = self.slots.lock();
            let parked = slots.len();
            for _ in 0..parked {
                match slots.pop_front() {
                    Some(mut buf) => {
                        if Arc::get_mut(&mut buf).is_some() {
                            return buf;
                        }
                        // Still referenced by a LogData view: park again.
                        slots.push_back(buf);
                    }
                    None => break,
                }
            }
        }
        Arc::new(Vec::with_capacity(self.buf_capacity))
    }

    /// Return a buffer to the pool. Safe to call while payload views into
    /// the buffer are still alive — it will not be reissued until they
    /// drop. Buffers beyond the pool bound are simply freed.
    pub fn give_back(&self, buf: Arc<Vec<u8>>) {
        let mut slots = self.slots.lock();
        if slots.len() < self.max_slots {
            slots.push_back(buf);
        }
    }

    /// Number of currently parked buffers (free or awaiting view drop).
    #[must_use]
    pub fn parked(&self) -> usize {
        self.slots.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_returned_buffer() {
        let pool = BufPool::new(4, 128);
        let mut a = pool.checkout();
        Arc::make_mut(&mut a).extend_from_slice(b"hello");
        let ptr = a.as_ptr() as usize;
        pool.give_back(a);
        let b = pool.checkout();
        assert_eq!(b.as_ptr() as usize, ptr, "buffer was not reused");
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn shared_buffer_is_not_reissued_until_views_drop() {
        let pool = BufPool::new(4, 128);
        let a = pool.checkout();
        let view = Arc::clone(&a); // stands in for a LogData payload view
        pool.give_back(a);
        let b = pool.checkout();
        assert_ne!(
            b.as_ptr(),
            view.as_ptr(),
            "pool reissued a buffer with a live view"
        );
        pool.give_back(b);
        drop(view);
        // With the view gone the parked buffer is unique again.
        let c = pool.checkout();
        let d = pool.checkout();
        assert_eq!(pool.parked(), 0);
        drop((c, d));
    }

    #[test]
    fn pool_bound_is_respected() {
        let pool = BufPool::new(2, 16);
        let bufs: Vec<_> = (0..5).map(|_| pool.checkout()).collect();
        for b in bufs {
            pool.give_back(b);
        }
        assert_eq!(pool.parked(), 2);
    }
}
