//! Packet wire format: the message set of Figure 4-1 plus handshake and
//! RPC envelopes, CRC-protected, hand-encoded (no external serializer — a
//! 1987 log server could afford a thousand instructions per packet, and so
//! can we).
//!
//! The hot path is zero-copy in both directions:
//!
//! * **encode**: [`Packet::encode_into`] serializes in a single pass into
//!   a caller-provided (usually pooled) buffer and patches the CRC into
//!   the header afterwards — no intermediate body buffer, no copy into a
//!   framed output. [`Packet::encoded_len`] computes the exact size by
//!   arithmetic, so callers can reserve without encoding twice.
//! * **decode**: [`Packet::decode_shared`] borrows record payloads
//!   straight out of the shared receive buffer as [`LogData`] views — a
//!   refcount bump per record instead of a heap copy per record. The
//!   plain [`Packet::decode`] (from a transient `&[u8]`) still copies.

use std::sync::Arc;

use dlog_types::{ClientId, Epoch, Interval, IntervalList, LogData, LogId, LogRecord, Lsn};

/// Maximum encoded packet size. The client packs as many log records as
/// fit below this bound into each `WriteLog`/`ForceLog` message ("client
/// processes and log servers attempt to pack as many log records as will
/// fit in a network packet in each call", §4.2).
pub const MAX_PACKET_BYTES: usize = 8192;

/// Logical address of a node on the network (mapped to a socket address by
/// the UDP transport, to a queue by the in-memory network).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeAddr(pub u64);

impl std::fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A packet: connection header plus message. In LSN-based mode (the
/// logging stream) `conn`, `seq`, and `alloc` are zero and duplicate
/// detection rides on the LSNs themselves; in connection mode they carry
/// the Watson-protocol state (§4.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Connection identifier (0 = connectionless).
    pub conn: u64,
    /// Sequence number within the connection.
    pub seq: u64,
    /// Flow-control allocation: the highest sequence number the *other*
    /// party may send without waiting.
    pub alloc: u64,
    /// Logical-log routing hint: the [`LogId`] this packet is about, or 0
    /// when the sender has none. The sharded server hashes this id to a
    /// shard at ingest *before* looking at the body; packets without a
    /// hint fall back to a body-derived key (see [`Packet::route_key`]).
    pub log: u64,
    /// The message.
    pub msg: Message,
}

impl Packet {
    /// A connectionless packet (LSN-based mode) with no routing hint.
    #[must_use]
    pub fn bare(msg: Message) -> Self {
        Packet {
            conn: 0,
            seq: 0,
            alloc: 0,
            log: 0,
            msg,
        }
    }

    /// A connectionless packet stamped with a logical-log routing hint.
    #[must_use]
    pub fn routed(log: LogId, msg: Message) -> Self {
        Packet {
            conn: 0,
            seq: 0,
            alloc: 0,
            log: log.0,
            msg,
        }
    }

    /// Like [`Packet::bare`], but with the routing hint self-stamped
    /// from the body via [`Packet::route_key`] — what clients send, so
    /// a sharded server routes on the header without cracking the body.
    /// Shard-agnostic messages keep a zero hint.
    #[must_use]
    pub fn stamped(msg: Message) -> Self {
        let mut p = Packet::bare(msg);
        p.log = p.route_key().map_or(0, |l| l.0);
        p
    }

    /// The logical log this packet routes by: the header hint when the
    /// sender stamped one, otherwise a key derived from the body (the
    /// owning client for log traffic, the generator id for Appendix-I
    /// RPCs). `None` means the packet is shard-agnostic control traffic
    /// (handshake, `Status`, `Stats`) and may be served by any shard.
    #[must_use]
    pub fn route_key(&self) -> Option<LogId> {
        if self.log != 0 {
            return Some(LogId(self.log));
        }
        let client = match &self.msg {
            Message::WriteLog { client, .. }
            | Message::ForceLog { client, .. }
            | Message::NewInterval { client, .. }
            | Message::NewHighLsn { client, .. }
            | Message::MissingInterval { client, .. } => *client,
            Message::Request { body, .. } => match body {
                Request::IntervalList { client }
                | Request::ReadLogForward { client, .. }
                | Request::ReadLogBackward { client, .. }
                | Request::CopyLog { client, .. }
                | Request::InstallCopies { client, .. } => *client,
                Request::GenRead { generator } | Request::GenWrite { generator, .. } => {
                    return Some(LogId(*generator));
                }
                Request::Status | Request::Stats => return None,
            },
            _ => return None,
        };
        Some(LogId::for_client(client))
    }

    /// The LSN this packet is "about", for trace keying (`dlog-obs`
    /// `PacketSend` events): the highest LSN of a write/force batch, the
    /// acked or missing LSN, or 0 for handshake/RPC traffic.
    #[must_use]
    pub fn lsn_hint(&self) -> u64 {
        match &self.msg {
            Message::WriteLog { records, .. } | Message::ForceLog { records, .. } => {
                records.last().map_or(0, |(lsn, _)| lsn.0)
            }
            Message::NewInterval { starting_lsn, .. } => starting_lsn.0,
            Message::NewHighLsn { lsn, .. } => lsn.0,
            Message::MissingInterval { lo, .. } => lo.0,
            _ => 0,
        }
    }
}

/// Every message of the client/log-server interface (Figure 4-1), the
/// three-way handshake, and the RPC envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Connection request (handshake step 1).
    Syn {
        /// Sender's incarnation (restart counter), making sequence numbers
        /// permanently unique across crashes.
        incarnation: u64,
        /// Initial sequence number.
        isn: u64,
    },
    /// Connection accept (handshake step 2).
    SynAck {
        /// Responder incarnation.
        incarnation: u64,
        /// Responder initial sequence number.
        isn: u64,
        /// Acknowledges the `Syn` isn.
        ack: u64,
    },
    /// Handshake completion (step 3).
    HandshakeAck {
        /// Acknowledges the `SynAck` isn.
        ack: u64,
    },

    /// Asynchronous buffered write of a batch of log records.
    WriteLog {
        /// Writing client.
        client: ClientId,
        /// Crash epoch of every record in the batch.
        epoch: Epoch,
        /// `(LSN, data)` pairs with consecutive LSNs.
        records: Vec<(Lsn, LogData)>,
    },
    /// Asynchronous write requiring prompt acknowledgment (`NewHighLSN`).
    ForceLog {
        /// Writing client.
        client: ClientId,
        /// Crash epoch of every record in the batch.
        epoch: Epoch,
        /// `(LSN, data)` pairs with consecutive LSNs.
        records: Vec<(Lsn, LogData)>,
    },
    /// Tells the server to abandon a missing range and start a new
    /// interval at `starting_lsn` (the records were written elsewhere).
    NewInterval {
        /// Writing client.
        client: ClientId,
        /// Epoch of the new interval.
        epoch: Epoch,
        /// First LSN of the new interval.
        starting_lsn: Lsn,
    },

    /// Server acknowledgment: all records up to `lsn` are durable.
    NewHighLsn {
        /// The client whose records are acknowledged.
        client: ClientId,
        /// Highest durable LSN.
        lsn: Lsn,
    },
    /// Server NAK: a gap was detected before `lo..=hi`; resend or declare
    /// a new interval.
    MissingInterval {
        /// The client with the gap.
        client: ClientId,
        /// First missing LSN.
        lo: Lsn,
        /// Last missing LSN.
        hi: Lsn,
    },

    /// Synchronous request.
    Request {
        /// Matches the response to the request across retries.
        id: u64,
        /// The call.
        body: Request,
    },
    /// Synchronous response.
    Response {
        /// Echoes the request id.
        id: u64,
        /// The result.
        body: Response,
    },
}

/// Bodies of the strict RPCs (client → server).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Intervals stored for the client (client initialization, §3.1.2).
    IntervalList {
        /// The restarting client.
        client: ClientId,
    },
    /// Records with LSN ≥ `lsn`, packed up to a packet.
    ReadLogForward {
        /// Owning client.
        client: ClientId,
        /// Starting LSN (inclusive).
        lsn: Lsn,
        /// Cap on records returned.
        max_records: u32,
    },
    /// Records with LSN ≤ `lsn`, packed up to a packet (descending).
    ReadLogBackward {
        /// Owning client.
        client: ClientId,
        /// Starting LSN (inclusive).
        lsn: Lsn,
        /// Cap on records returned.
        max_records: u32,
    },
    /// Stage recovery copies (may have LSNs below the server's high LSN).
    CopyLog {
        /// Recovering client.
        client: ClientId,
        /// The client's new epoch.
        epoch: Epoch,
        /// Full records including present flags.
        records: Vec<LogRecord>,
    },
    /// Atomically install all records staged with `epoch`.
    InstallCopies {
        /// Recovering client.
        client: ClientId,
        /// Epoch staged by preceding `CopyLog` calls.
        epoch: Epoch,
    },
    /// Read a replicated-identifier-generator state representative
    /// (Appendix I). Representatives are hosted on log-server nodes.
    GenRead {
        /// Generator identifier.
        generator: u64,
    },
    /// Write a generator state representative (Appendix I).
    GenWrite {
        /// Generator identifier.
        generator: u64,
        /// New value (must exceed the stored one to take effect).
        value: u64,
    },
    /// Operational status snapshot (observability; `dlog status`).
    Status,
    /// Per-stage latency histograms and trace counters (`dlog stats`).
    Stats,
}

/// One pipeline stage's latency summary inside [`Response::Stats`]: a
/// sparse log₂ histogram (only non-empty buckets travel) plus the raw
/// max, so clients can rebuild and merge `dlog-obs` snapshots from many
/// servers in any order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageStats {
    /// `dlog_obs::Stage` wire tag (0 = `ClientWrite` … 5 = `ArchiveTick`).
    pub stage: u8,
    /// Total observations recorded for the stage.
    pub count: u64,
    /// Largest latency sample observed, nanoseconds.
    pub max_ns: u64,
    /// Non-empty histogram buckets as `(bucket index, count)` pairs.
    pub buckets: Vec<(u8, u64)>,
}

/// RPC results (server → client).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Interval list for the requested client.
    Intervals {
        /// Stored intervals in storage order.
        intervals: IntervalList,
    },
    /// Records for a read call; empty when the server stores none in the
    /// requested direction.
    Records {
        /// The records, with epochs and present flags.
        records: Vec<LogRecord>,
    },
    /// Generic success (CopyLog, InstallCopies).
    Ok,
    /// Failure with a code and diagnostic.
    Err {
        /// Machine-readable code (see [`codes`]).
        code: u16,
        /// Human-readable detail.
        detail: String,
    },
    /// Generator representative value.
    GenValue {
        /// Stored value.
        value: u64,
    },
    /// Server status snapshot.
    Status {
        /// Records stored (all clients, including staged copies).
        records_stored: u64,
        /// Duplicate records suppressed by LSN.
        duplicates_ignored: u64,
        /// `MissingInterval` NAKs sent.
        naks_sent: u64,
        /// Write/force messages dropped by load shedding.
        writes_shed: u64,
        /// Strict RPCs served.
        rpcs: u64,
        /// Forces acknowledged.
        forces_acked: u64,
        /// Distinct clients with stored records.
        clients: u64,
        /// Live bytes in the on-disk stream.
        on_disk_bytes: u64,
        /// Track flushes performed.
        tracks_flushed: u64,
        /// Bytes referenced by the newest archive manifest (0 when
        /// archival is not configured).
        archived_bytes: u64,
        /// Durable bytes not yet covered by an archive manifest.
        pending_upload_bytes: u64,
        /// Highest installed LSN covered by the newest manifest.
        last_manifest_lsn: u64,
        /// Failed archive put attempts (each triggered a retry).
        upload_retries: u64,
        /// `ForceLog` acks deferred into a group-commit batch.
        coalesced_forces: u64,
        /// Physical group-commit rounds flushed.
        group_commits: u64,
        /// Index of the shard that answered (0 on an unsharded server).
        shard: u64,
        /// Number of shards in the answering process (1 when unsharded).
        shards: u64,
    },
    /// Per-stage latency histograms (see [`StageStats`]) and trace-ring
    /// counters from the server's `dlog-obs` handle, plus the server's
    /// ingest allocation gauge (`dlog-alloc`). Histogram and trace fields
    /// are zero or empty when the server runs with observability off; the
    /// allocation gauge is always live.
    Stats {
        /// One summary per instrumented stage, in stage-tag order.
        stages: Vec<StageStats>,
        /// Trace events ever emitted.
        trace_events: u64,
        /// Trace events evicted from the ring.
        trace_dropped: u64,
        /// Allocations performed on the server's ingest thread while
        /// handling write/force traffic (numerator of `allocs_per_write`).
        ingest_allocs: u64,
        /// Log records ingested by write/force handling (denominator of
        /// `allocs_per_write`).
        ingest_records: u64,
        /// Index of the shard that answered (0 on an unsharded server).
        shard: u64,
        /// Number of shards in the answering process (1 when unsharded);
        /// tells a stats collector how many per-shard rows to merge.
        shards: u64,
    },
}

/// Error codes carried by [`Response::Err`].
pub mod codes {
    /// Epoch at or below the server's current one.
    pub const STALE_EPOCH: u16 = 1;
    /// Malformed or out-of-order request.
    pub const PROTOCOL: u16 = 2;
    /// Server overloaded and shedding work.
    pub const OVERLOADED: u16 = 3;
    /// Internal storage failure.
    pub const STORAGE: u16 = 4;
}

const MAGIC: u16 = 0xD10C;

// Message kind tags.
const K_SYN: u8 = 1;
const K_SYNACK: u8 = 2;
const K_HSACK: u8 = 3;
const K_WRITELOG: u8 = 4;
const K_FORCELOG: u8 = 5;
const K_NEWINTERVAL: u8 = 6;
const K_NEWHIGHLSN: u8 = 7;
const K_MISSING: u8 = 8;
const K_REQUEST: u8 = 9;
const K_RESPONSE: u8 = 10;

// Request kind tags.
const R_INTERVALS: u8 = 1;
const R_READFWD: u8 = 2;
const R_READBWD: u8 = 3;
const R_COPYLOG: u8 = 4;
const R_INSTALL: u8 = 5;
const R_GENREAD: u8 = 6;
const R_GENWRITE: u8 = 7;
const R_STATUS: u8 = 8;
const R_STATS: u8 = 9;

// Response kind tags.
const S_INTERVALS: u8 = 1;
const S_RECORDS: u8 = 2;
const S_OK: u8 = 3;
const S_ERR: u8 = 4;
const S_GENVALUE: u8 = 5;
const S_STATUS: u8 = 6;
const S_STATS: u8 = 7;

/// Wire-format decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "packet decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Encoded frame header: magic (2) + reserved (2) + crc32 (4).
const HEADER_BYTES: usize = 8;

impl Packet {
    /// Encode to a fresh byte vector (with magic and CRC). Convenience
    /// wrapper over [`Packet::encode_into`] for cold paths and tests; the
    /// hot path reuses a pooled buffer instead.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Serialize into `out` in a single pass: the buffer is cleared, the
    /// header is laid down with a zero CRC placeholder, the body is
    /// written directly behind it, and the CRC is patched into the header
    /// at the end. No intermediate body buffer exists; when `out` has
    /// capacity (a pooled buffer), the call performs no allocation.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(self.encoded_len());
        put_u16(out, MAGIC);
        put_u16(out, 0); // reserved
        put_u32(out, 0); // crc placeholder, patched below
        put_u64(out, self.conn);
        put_u64(out, self.seq);
        put_u64(out, self.alloc);
        put_u64(out, self.log);
        encode_message(&self.msg, out);
        let crc = crc32(out.get(HEADER_BYTES..).unwrap_or(&[]));
        if let Some(slot) = out.get_mut(4..HEADER_BYTES) {
            slot.copy_from_slice(&crc.to_le_bytes());
        }
    }

    /// Exact encoded size in bytes, computed by arithmetic (no encoding
    /// pass): `encoded_len() == encode().len()` for every packet.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        HEADER_BYTES + 32 + message_len(&self.msg)
    }

    /// Decode from a transient byte slice. Record payloads are copied out
    /// of `bytes` (the slice may be reused immediately).
    ///
    /// # Errors
    /// [`DecodeError`] on bad magic, CRC mismatch, or malformed body.
    pub fn decode(bytes: &[u8]) -> Result<Packet, DecodeError> {
        decode_frame(bytes, None)
    }

    /// Decode from a shared receive buffer. Record payloads become
    /// zero-copy [`LogData`] views into `buf` (refcount bumps, no byte
    /// copies); the buffer stays alive until every view is dropped, at
    /// which point a pool can reuse it.
    ///
    /// # Errors
    /// [`DecodeError`] on bad magic, CRC mismatch, or malformed body.
    pub fn decode_shared(buf: &Arc<Vec<u8>>) -> Result<Packet, DecodeError> {
        decode_frame(buf.as_slice(), Some(buf))
    }

    /// Read the routing hint straight out of an encoded frame: the
    /// header's `log` field, with no body decode and no CRC pass.
    /// Transports with native shard routing use this to pick a receive
    /// queue at delivery time; `None` (a zero hint, or a frame too short
    /// to carry one) means shard-agnostic. Offset: magic (2) + reserved
    /// (2) + crc (4) + conn (8) + seq (8) + alloc (8) = 32.
    #[must_use]
    pub fn peek_route_hint(bytes: &[u8]) -> Option<LogId> {
        let raw: [u8; 8] = bytes.get(32..40)?.try_into().ok()?;
        let log = u64::from_le_bytes(raw);
        (log != 0).then_some(LogId(log))
    }
}

fn decode_frame(bytes: &[u8], share: Option<&Arc<Vec<u8>>>) -> Result<Packet, DecodeError> {
    let mut r = Reader::new(bytes, share);
    if r.remaining() < HEADER_BYTES {
        return Err(DecodeError("short packet".into()));
    }
    let magic = r.u16()?;
    let reserved = r.u16()?;
    let crc = r.u32()?;
    if magic != MAGIC {
        return Err(DecodeError("bad magic".into()));
    }
    if reserved != 0 {
        return Err(DecodeError("nonzero reserved field".into()));
    }
    if crc32(bytes.get(HEADER_BYTES..).unwrap_or(&[])) != crc {
        return Err(DecodeError("crc mismatch".into()));
    }
    if r.remaining() < 32 {
        return Err(DecodeError("short header".into()));
    }
    let conn = r.u64()?;
    let seq = r.u64()?;
    let alloc = r.u64()?;
    let log = r.u64()?;
    let msg = decode_message(&mut r)?;
    if r.remaining() != 0 {
        return Err(DecodeError("trailing bytes".into()));
    }
    Ok(Packet {
        conn,
        seq,
        alloc,
        log,
        msg,
    })
}

// CRC-32 (IEEE polynomial, reflected), slice-by-8: the hot loop folds
// eight bytes per step through eight precomputed tables instead of one
// dependent lookup per byte — the same digest, ~4-6x the throughput, and
// the encode + decode passes run over every data-plane packet. Same
// polynomial as the storage layer; duplicated rather than shared to keep
// the net crate free of the storage dependency.
const fn build_crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0usize;
    while i < 256 {
        let mut state = i as u32;
        let mut k = 0;
        while k < 8 {
            state = if state & 1 != 0 {
                (state >> 1) ^ 0xEDB8_8320
            } else {
                state >> 1
            };
            k += 1;
        }
        t[0][i] = state;
        i += 1;
    }
    // t[j][i] extends t[j-1][i] by one zero byte: folding eight bytes
    // through t[7]..t[0] equals eight sequential t[0] steps.
    let mut j = 1usize;
    while j < 8 {
        let mut i = 0usize;
        while i < 256 {
            let prev = t[j - 1][i];
            t[j][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

static CRC_TABLES: [[u32; 256]; 8] = build_crc_tables();

/// Guarded table probe: the index is masked to 0..256 so the `None` arm
/// is unreachable and the whole call compiles to a plain load.
#[inline(always)]
fn lut(table: &[u32; 256], idx: u32) -> u32 {
    match table.get((idx & 0xFF) as usize) {
        Some(v) => *v,
        None => 0,
    }
}

fn crc32(data: &[u8]) -> u32 {
    let [t0, t1, t2, t3, t4, t5, t6, t7] = &CRC_TABLES;
    let mut state = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        let &[b0, b1, b2, b3, b4, b5, b6, b7] = c else {
            break; // unreachable: chunks_exact yields 8-byte slices
        };
        let lo = state ^ u32::from_le_bytes([b0, b1, b2, b3]);
        let hi = u32::from_le_bytes([b4, b5, b6, b7]);
        state = lut(t7, lo)
            ^ lut(t6, lo >> 8)
            ^ lut(t5, lo >> 16)
            ^ lut(t4, lo >> 24)
            ^ lut(t3, hi)
            ^ lut(t2, hi >> 8)
            ^ lut(t1, hi >> 16)
            ^ lut(t0, hi >> 24);
    }
    for &b in chunks.remainder() {
        state = (state >> 8) ^ lut(t0, state ^ u32::from(b));
    }
    state ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Single-pass writers: append little-endian scalars straight onto the
// output vector. With a pre-reserved buffer none of these allocate.

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_data(out: &mut Vec<u8>, d: &LogData) {
    put_u32(out, d.len() as u32);
    out.extend_from_slice(d.as_bytes());
}

fn put_lsn_batch(out: &mut Vec<u8>, records: &[(Lsn, LogData)]) {
    put_u32(out, records.len() as u32);
    for (lsn, data) in records {
        put_u64(out, lsn.0);
        put_data(out, data);
    }
}

fn put_records(out: &mut Vec<u8>, records: &[LogRecord]) {
    put_u32(out, records.len() as u32);
    for rec in records {
        put_u64(out, rec.lsn.0);
        put_u64(out, rec.epoch.0);
        put_u8(out, u8::from(rec.present));
        put_data(out, &rec.data);
    }
}

fn put_intervals(out: &mut Vec<u8>, list: &IntervalList) {
    put_u32(out, list.len() as u32);
    for iv in list {
        put_u64(out, iv.epoch.0);
        put_u64(out, iv.lo.0);
        put_u64(out, iv.hi.0);
    }
}

fn encode_message(msg: &Message, out: &mut Vec<u8>) {
    match msg {
        Message::Syn { incarnation, isn } => {
            put_u8(out, K_SYN);
            put_u64(out, *incarnation);
            put_u64(out, *isn);
        }
        Message::SynAck {
            incarnation,
            isn,
            ack,
        } => {
            put_u8(out, K_SYNACK);
            put_u64(out, *incarnation);
            put_u64(out, *isn);
            put_u64(out, *ack);
        }
        Message::HandshakeAck { ack } => {
            put_u8(out, K_HSACK);
            put_u64(out, *ack);
        }
        Message::WriteLog {
            client,
            epoch,
            records,
        } => {
            put_u8(out, K_WRITELOG);
            put_u64(out, client.0);
            put_u64(out, epoch.0);
            put_lsn_batch(out, records);
        }
        Message::ForceLog {
            client,
            epoch,
            records,
        } => {
            put_u8(out, K_FORCELOG);
            put_u64(out, client.0);
            put_u64(out, epoch.0);
            put_lsn_batch(out, records);
        }
        Message::NewInterval {
            client,
            epoch,
            starting_lsn,
        } => {
            put_u8(out, K_NEWINTERVAL);
            put_u64(out, client.0);
            put_u64(out, epoch.0);
            put_u64(out, starting_lsn.0);
        }
        Message::NewHighLsn { client, lsn } => {
            put_u8(out, K_NEWHIGHLSN);
            put_u64(out, client.0);
            put_u64(out, lsn.0);
        }
        Message::MissingInterval { client, lo, hi } => {
            put_u8(out, K_MISSING);
            put_u64(out, client.0);
            put_u64(out, lo.0);
            put_u64(out, hi.0);
        }
        Message::Request { id, body } => {
            put_u8(out, K_REQUEST);
            put_u64(out, *id);
            encode_request(body, out);
        }
        Message::Response { id, body } => {
            put_u8(out, K_RESPONSE);
            put_u64(out, *id);
            encode_response(body, out);
        }
    }
}

fn encode_request(body: &Request, out: &mut Vec<u8>) {
    match body {
        Request::IntervalList { client } => {
            put_u8(out, R_INTERVALS);
            put_u64(out, client.0);
        }
        Request::ReadLogForward {
            client,
            lsn,
            max_records,
        } => {
            put_u8(out, R_READFWD);
            put_u64(out, client.0);
            put_u64(out, lsn.0);
            put_u32(out, *max_records);
        }
        Request::ReadLogBackward {
            client,
            lsn,
            max_records,
        } => {
            put_u8(out, R_READBWD);
            put_u64(out, client.0);
            put_u64(out, lsn.0);
            put_u32(out, *max_records);
        }
        Request::CopyLog {
            client,
            epoch,
            records,
        } => {
            put_u8(out, R_COPYLOG);
            put_u64(out, client.0);
            put_u64(out, epoch.0);
            put_records(out, records);
        }
        Request::InstallCopies { client, epoch } => {
            put_u8(out, R_INSTALL);
            put_u64(out, client.0);
            put_u64(out, epoch.0);
        }
        Request::GenRead { generator } => {
            put_u8(out, R_GENREAD);
            put_u64(out, *generator);
        }
        Request::GenWrite { generator, value } => {
            put_u8(out, R_GENWRITE);
            put_u64(out, *generator);
            put_u64(out, *value);
        }
        Request::Status => put_u8(out, R_STATUS),
        Request::Stats => put_u8(out, R_STATS),
    }
}

fn encode_response(body: &Response, out: &mut Vec<u8>) {
    match body {
        Response::Intervals { intervals } => {
            put_u8(out, S_INTERVALS);
            put_intervals(out, intervals);
        }
        Response::Records { records } => {
            put_u8(out, S_RECORDS);
            put_records(out, records);
        }
        Response::Ok => put_u8(out, S_OK),
        Response::Err { code, detail } => {
            put_u8(out, S_ERR);
            put_u16(out, *code);
            put_u32(out, detail.len() as u32);
            out.extend_from_slice(detail.as_bytes());
        }
        Response::GenValue { value } => {
            put_u8(out, S_GENVALUE);
            put_u64(out, *value);
        }
        Response::Status {
            records_stored,
            duplicates_ignored,
            naks_sent,
            writes_shed,
            rpcs,
            forces_acked,
            clients,
            on_disk_bytes,
            tracks_flushed,
            archived_bytes,
            pending_upload_bytes,
            last_manifest_lsn,
            upload_retries,
            coalesced_forces,
            group_commits,
            shard,
            shards,
        } => {
            put_u8(out, S_STATUS);
            for v in [
                records_stored,
                duplicates_ignored,
                naks_sent,
                writes_shed,
                rpcs,
                forces_acked,
                clients,
                on_disk_bytes,
                tracks_flushed,
                archived_bytes,
                pending_upload_bytes,
                last_manifest_lsn,
                upload_retries,
                coalesced_forces,
                group_commits,
                shard,
                shards,
            ] {
                put_u64(out, *v);
            }
        }
        Response::Stats {
            stages,
            trace_events,
            trace_dropped,
            ingest_allocs,
            ingest_records,
            shard,
            shards,
        } => {
            put_u8(out, S_STATS);
            put_u64(out, *trace_events);
            put_u64(out, *trace_dropped);
            put_u64(out, *ingest_allocs);
            put_u64(out, *ingest_records);
            put_u64(out, *shard);
            put_u64(out, *shards);
            // At most `Stage::COUNT` (9) stages ever travel; u8 is ample.
            put_u8(out, stages.len().min(u8::MAX as usize) as u8);
            for s in stages.iter().take(u8::MAX as usize) {
                put_u8(out, s.stage);
                put_u64(out, s.count);
                put_u64(out, s.max_ns);
                put_u16(out, s.buckets.len().min(u16::MAX as usize) as u16);
                for (bucket, count) in s.buckets.iter().take(u16::MAX as usize) {
                    put_u8(out, *bucket);
                    put_u64(out, *count);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Exact length arithmetic, mirroring the writers above byte for byte.

fn data_len(d: &LogData) -> usize {
    4 + d.len()
}

fn write_batch_len(records: &[(Lsn, LogData)]) -> usize {
    4 + records
        .iter()
        .map(|(_, data)| 8 + data_len(data))
        .sum::<usize>()
}

fn records_len(records: &[LogRecord]) -> usize {
    4 + records
        .iter()
        .map(|rec| 17 + data_len(&rec.data))
        .sum::<usize>()
}

fn intervals_len(list: &IntervalList) -> usize {
    4 + 24 * list.len()
}

fn message_len(msg: &Message) -> usize {
    1 + match msg {
        Message::Syn { .. } => 16,
        Message::SynAck { .. } => 24,
        Message::HandshakeAck { .. } => 8,
        Message::WriteLog { records, .. } | Message::ForceLog { records, .. } => {
            16 + write_batch_len(records)
        }
        Message::NewInterval { .. } => 24,
        Message::NewHighLsn { .. } => 16,
        Message::MissingInterval { .. } => 24,
        Message::Request { body, .. } => 8 + request_len(body),
        Message::Response { body, .. } => 8 + response_len(body),
    }
}

fn request_len(body: &Request) -> usize {
    1 + match body {
        Request::IntervalList { .. } => 8,
        Request::ReadLogForward { .. } | Request::ReadLogBackward { .. } => 20,
        Request::CopyLog { records, .. } => 16 + records_len(records),
        Request::InstallCopies { .. } => 16,
        Request::GenRead { .. } => 8,
        Request::GenWrite { .. } => 16,
        Request::Status | Request::Stats => 0,
    }
}

fn response_len(body: &Response) -> usize {
    1 + match body {
        Response::Intervals { intervals } => intervals_len(intervals),
        Response::Records { records } => records_len(records),
        Response::Ok => 0,
        Response::Err { detail, .. } => 6 + detail.len(),
        Response::GenValue { .. } => 8,
        Response::Status { .. } => 136,
        Response::Stats { stages, .. } => {
            // Mirrors the writer's caps: at most 255 stages, 65535 buckets.
            49 + stages
                .iter()
                .take(u8::MAX as usize)
                .map(|s| 19 + 9 * s.buckets.len().min(u16::MAX as usize))
                .sum::<usize>()
        }
    }
}

// ---------------------------------------------------------------------------
// Decode: a bounds-checked cursor that can hand out zero-copy payload
// views when the underlying buffer is shared.

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// When decoding from a shared receive buffer: the buffer to slice
    /// payloads out of. `buf` is always `share[..]` in that case, so
    /// `pos` doubles as the offset into the shared buffer.
    share: Option<&'a Arc<Vec<u8>>>,
}

fn truncated() -> DecodeError {
    DecodeError("truncated message".into())
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], share: Option<&'a Arc<Vec<u8>>>) -> Self {
        Reader { buf, pos: 0, share }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or_else(truncated)?;
        let s = self.buf.get(self.pos..end).ok_or_else(truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        let s = self.take(1)?;
        s.first().copied().ok_or_else(truncated)
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let s = self.take(2)?;
        let arr: [u8; 2] = s.try_into().map_err(|_| truncated())?;
        Ok(u16::from_le_bytes(arr))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let s = self.take(4)?;
        let arr: [u8; 4] = s.try_into().map_err(|_| truncated())?;
        Ok(u32::from_le_bytes(arr))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let s = self.take(8)?;
        let arr: [u8; 8] = s.try_into().map_err(|_| truncated())?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Length-prefixed payload. Zero-copy (a view into the shared buffer)
    /// when decoding with [`Packet::decode_shared`]; a copy otherwise.
    fn data(&mut self) -> Result<LogData, DecodeError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(DecodeError("short data".into()));
        }
        match self.share {
            Some(arc) => {
                let start = self.pos;
                self.take(len)?;
                LogData::slice_of(arc, start, len).ok_or_else(|| DecodeError("short data".into()))
            }
            None => Ok(LogData::from(self.take(len)?)),
        }
    }
}

fn get_lsn_batch(r: &mut Reader<'_>) -> Result<Vec<(Lsn, LogData)>, DecodeError> {
    let n = r.u32()? as usize;
    if n > MAX_PACKET_BYTES {
        return Err(DecodeError("batch count absurd".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let lsn = Lsn(r.u64()?);
        let data = r.data()?;
        out.push((lsn, data));
    }
    Ok(out)
}

fn get_records(r: &mut Reader<'_>) -> Result<Vec<LogRecord>, DecodeError> {
    let n = r.u32()? as usize;
    if n > MAX_PACKET_BYTES {
        return Err(DecodeError("record count absurd".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let lsn = Lsn(r.u64()?);
        let epoch = Epoch(r.u64()?);
        let present = r.u8()? != 0;
        let data = r.data()?;
        out.push(LogRecord {
            lsn,
            epoch,
            present,
            data,
        });
    }
    Ok(out)
}

fn get_intervals(r: &mut Reader<'_>) -> Result<IntervalList, DecodeError> {
    let n = r.u32()? as usize;
    if n > MAX_PACKET_BYTES {
        return Err(DecodeError("interval count absurd".into()));
    }
    let mut intervals = Vec::with_capacity(n);
    for _ in 0..n {
        let epoch = Epoch(r.u64()?);
        let lo = Lsn(r.u64()?);
        let hi = Lsn(r.u64()?);
        if lo > hi || lo == Lsn::ZERO {
            return Err(DecodeError("invalid interval bounds".into()));
        }
        intervals.push(Interval::new(epoch, lo, hi));
    }
    IntervalList::from_intervals(intervals).map_err(DecodeError)
}

fn decode_message(r: &mut Reader<'_>) -> Result<Message, DecodeError> {
    let kind = r.u8()?;
    match kind {
        K_SYN => Ok(Message::Syn {
            incarnation: r.u64()?,
            isn: r.u64()?,
        }),
        K_SYNACK => Ok(Message::SynAck {
            incarnation: r.u64()?,
            isn: r.u64()?,
            ack: r.u64()?,
        }),
        K_HSACK => Ok(Message::HandshakeAck { ack: r.u64()? }),
        K_WRITELOG | K_FORCELOG => {
            let client = ClientId(r.u64()?);
            let epoch = Epoch(r.u64()?);
            let records = get_lsn_batch(r)?;
            Ok(if kind == K_WRITELOG {
                Message::WriteLog {
                    client,
                    epoch,
                    records,
                }
            } else {
                Message::ForceLog {
                    client,
                    epoch,
                    records,
                }
            })
        }
        K_NEWINTERVAL => Ok(Message::NewInterval {
            client: ClientId(r.u64()?),
            epoch: Epoch(r.u64()?),
            starting_lsn: Lsn(r.u64()?),
        }),
        K_NEWHIGHLSN => Ok(Message::NewHighLsn {
            client: ClientId(r.u64()?),
            lsn: Lsn(r.u64()?),
        }),
        K_MISSING => Ok(Message::MissingInterval {
            client: ClientId(r.u64()?),
            lo: Lsn(r.u64()?),
            hi: Lsn(r.u64()?),
        }),
        K_REQUEST => {
            let id = r.u64()?;
            let body = decode_request(r)?;
            Ok(Message::Request { id, body })
        }
        K_RESPONSE => {
            let id = r.u64()?;
            let body = decode_response(r)?;
            Ok(Message::Response { id, body })
        }
        other => Err(DecodeError(format!("unknown message kind {other}"))),
    }
}

fn decode_request(r: &mut Reader<'_>) -> Result<Request, DecodeError> {
    let kind = r.u8()?;
    match kind {
        R_INTERVALS => Ok(Request::IntervalList {
            client: ClientId(r.u64()?),
        }),
        R_READFWD | R_READBWD => {
            let client = ClientId(r.u64()?);
            let lsn = Lsn(r.u64()?);
            let max_records = r.u32()?;
            Ok(if kind == R_READFWD {
                Request::ReadLogForward {
                    client,
                    lsn,
                    max_records,
                }
            } else {
                Request::ReadLogBackward {
                    client,
                    lsn,
                    max_records,
                }
            })
        }
        R_COPYLOG => {
            let client = ClientId(r.u64()?);
            let epoch = Epoch(r.u64()?);
            let records = get_records(r)?;
            Ok(Request::CopyLog {
                client,
                epoch,
                records,
            })
        }
        R_INSTALL => Ok(Request::InstallCopies {
            client: ClientId(r.u64()?),
            epoch: Epoch(r.u64()?),
        }),
        R_GENREAD => Ok(Request::GenRead {
            generator: r.u64()?,
        }),
        R_GENWRITE => Ok(Request::GenWrite {
            generator: r.u64()?,
            value: r.u64()?,
        }),
        R_STATUS => Ok(Request::Status),
        R_STATS => Ok(Request::Stats),
        other => Err(DecodeError(format!("unknown request kind {other}"))),
    }
}

fn decode_response(r: &mut Reader<'_>) -> Result<Response, DecodeError> {
    let kind = r.u8()?;
    match kind {
        S_INTERVALS => Ok(Response::Intervals {
            intervals: get_intervals(r)?,
        }),
        S_RECORDS => Ok(Response::Records {
            records: get_records(r)?,
        }),
        S_OK => Ok(Response::Ok),
        S_ERR => {
            let code = r.u16()?;
            let len = r.u32()? as usize;
            if len > r.remaining() {
                return Err(truncated());
            }
            let detail = String::from_utf8_lossy(r.take(len)?).into_owned();
            Ok(Response::Err { code, detail })
        }
        S_GENVALUE => Ok(Response::GenValue { value: r.u64()? }),
        S_STATUS => Ok(Response::Status {
            records_stored: r.u64()?,
            duplicates_ignored: r.u64()?,
            naks_sent: r.u64()?,
            writes_shed: r.u64()?,
            rpcs: r.u64()?,
            forces_acked: r.u64()?,
            clients: r.u64()?,
            on_disk_bytes: r.u64()?,
            tracks_flushed: r.u64()?,
            archived_bytes: r.u64()?,
            pending_upload_bytes: r.u64()?,
            last_manifest_lsn: r.u64()?,
            upload_retries: r.u64()?,
            coalesced_forces: r.u64()?,
            group_commits: r.u64()?,
            shard: r.u64()?,
            shards: r.u64()?,
        }),
        S_STATS => {
            let trace_events = r.u64()?;
            let trace_dropped = r.u64()?;
            let ingest_allocs = r.u64()?;
            let ingest_records = r.u64()?;
            let shard = r.u64()?;
            let shards = r.u64()?;
            let nstages = r.u8()? as usize;
            let mut stages = Vec::with_capacity(nstages.min(16));
            for _ in 0..nstages {
                let stage = r.u8()?;
                let count = r.u64()?;
                let max_ns = r.u64()?;
                let nbuckets = r.u16()? as usize;
                let mut buckets = Vec::with_capacity(nbuckets.min(64));
                for _ in 0..nbuckets {
                    buckets.push((r.u8()?, r.u64()?));
                }
                stages.push(StageStats {
                    stage,
                    count,
                    max_ns,
                    buckets,
                });
            }
            Ok(Response::Stats {
                stages,
                trace_events,
                trace_dropped,
                ingest_allocs,
                ingest_records,
                shard,
                shards,
            })
        }
        other => Err(DecodeError(format!("unknown response kind {other}"))),
    }
}

/// Pack `(LSN, data)` records into batches whose encoded `WriteLog`
/// packets stay below [`MAX_PACKET_BYTES`]. Each batch holds at least one
/// record (an oversized record travels alone). Payloads are shared into
/// the batches ([`LogData::share`]) — one refcount bump per record, no
/// byte copies.
#[must_use]
pub fn pack_batches(records: &[(Lsn, LogData)]) -> Vec<Vec<(Lsn, LogData)>> {
    const HEADER_SLACK: usize = 64;
    let cost = |data: &LogData| 12 + data.len();
    // Pass 1: walk the cost model to count batch boundaries, so pass 2
    // can size every Vec exactly — 1 + batches allocations total, and
    // zero payload byte copies (records are shared into the batches).
    let mut nbatches = 0usize;
    let mut in_batch = 0usize;
    let mut bytes = HEADER_SLACK;
    for (_, data) in records {
        if in_batch > 0 && bytes + cost(data) > MAX_PACKET_BYTES {
            nbatches += 1;
            in_batch = 0;
            bytes = HEADER_SLACK;
        }
        in_batch += 1;
        bytes += cost(data);
    }
    if in_batch > 0 {
        nbatches += 1;
    }
    // Pass 2: replay the same boundaries, pushing into pre-sized Vecs.
    let mut batches: Vec<Vec<(Lsn, LogData)>> = Vec::with_capacity(nbatches);
    let mut start = 0usize;
    bytes = HEADER_SLACK;
    for (i, (_, data)) in records.iter().enumerate() {
        if i > start && bytes + cost(data) > MAX_PACKET_BYTES {
            batches.push(share_range(records, start, i));
            start = i;
            bytes = HEADER_SLACK;
        }
        bytes += cost(data);
    }
    if start < records.len() {
        batches.push(share_range(records, start, records.len()));
    }
    batches
}

/// Share `records[start..end]` into a new exactly-sized batch.
fn share_range(records: &[(Lsn, LogData)], start: usize, end: usize) -> Vec<(Lsn, LogData)> {
    let mut batch = Vec::with_capacity(end.saturating_sub(start));
    for (lsn, data) in records.get(start..end).unwrap_or(&[]) {
        batch.push((*lsn, data.share()));
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let p = Packet {
            conn: 7,
            seq: 42,
            alloc: 100,
            log: 13,
            msg,
        };
        let bytes = p.encode();
        assert_eq!(
            bytes.len(),
            p.encoded_len(),
            "encoded_len arithmetic disagrees with the writer"
        );
        let q = Packet::decode(&bytes).unwrap();
        assert_eq!(p, q);
        let shared = Arc::new(bytes);
        let s = Packet::decode_shared(&shared).unwrap();
        assert_eq!(p, s);
    }

    #[test]
    fn roundtrip_handshake() {
        roundtrip(Message::Syn {
            incarnation: 3,
            isn: 1000,
        });
        roundtrip(Message::SynAck {
            incarnation: 5,
            isn: 2000,
            ack: 1000,
        });
        roundtrip(Message::HandshakeAck { ack: 2000 });
    }

    #[test]
    fn roundtrip_write_force() {
        let records = vec![
            (Lsn(5), LogData::from(vec![1u8; 100])),
            (Lsn(6), LogData::from(vec![2u8; 50])),
        ];
        roundtrip(Message::WriteLog {
            client: ClientId(1),
            epoch: Epoch(3),
            records: records.clone(),
        });
        roundtrip(Message::ForceLog {
            client: ClientId(1),
            epoch: Epoch(3),
            records,
        });
        roundtrip(Message::WriteLog {
            client: ClientId(1),
            epoch: Epoch(3),
            records: vec![],
        });
    }

    #[test]
    fn roundtrip_control() {
        roundtrip(Message::NewInterval {
            client: ClientId(2),
            epoch: Epoch(9),
            starting_lsn: Lsn(77),
        });
        roundtrip(Message::NewHighLsn {
            client: ClientId(2),
            lsn: Lsn(99),
        });
        roundtrip(Message::MissingInterval {
            client: ClientId(2),
            lo: Lsn(5),
            hi: Lsn(9),
        });
    }

    #[test]
    fn roundtrip_rpcs() {
        let recs = vec![
            LogRecord::present(Lsn(9), Epoch(4), vec![7u8; 30]),
            LogRecord::not_present(Lsn(10), Epoch(4)),
        ];
        for body in [
            Request::IntervalList {
                client: ClientId(3),
            },
            Request::ReadLogForward {
                client: ClientId(3),
                lsn: Lsn(1),
                max_records: 16,
            },
            Request::ReadLogBackward {
                client: ClientId(3),
                lsn: Lsn(10),
                max_records: 16,
            },
            Request::CopyLog {
                client: ClientId(3),
                epoch: Epoch(4),
                records: recs,
            },
            Request::InstallCopies {
                client: ClientId(3),
                epoch: Epoch(4),
            },
            Request::GenRead { generator: 1 },
            Request::GenWrite {
                generator: 1,
                value: 12,
            },
        ] {
            roundtrip(Message::Request { id: 55, body });
        }
        let list = IntervalList::from_intervals(vec![
            Interval::new(Epoch(1), Lsn(1), Lsn(3)),
            Interval::new(Epoch(3), Lsn(3), Lsn(9)),
        ])
        .unwrap();
        for body in [
            Response::Intervals { intervals: list },
            Response::Intervals {
                intervals: IntervalList::new(),
            },
            Response::Records {
                records: vec![LogRecord::present(Lsn(1), Epoch(1), vec![1])],
            },
            Response::Records { records: vec![] },
            Response::Ok,
            Response::Err {
                code: codes::OVERLOADED,
                detail: "busy".into(),
            },
            Response::GenValue { value: 1234 },
            Response::Stats {
                stages: vec![StageStats {
                    stage: 2,
                    count: 40,
                    max_ns: 9000,
                    buckets: vec![(10, 30), (11, 10)],
                }],
                trace_events: 123,
                trace_dropped: 4,
                ingest_allocs: 77,
                ingest_records: 40,
                shard: 2,
                shards: 4,
            },
        ] {
            roundtrip(Message::Response { id: 55, body });
        }
    }

    #[test]
    fn decode_shared_borrows_payloads() {
        let payload = vec![0xAB; 256];
        let p = Packet::bare(Message::WriteLog {
            client: ClientId(1),
            epoch: Epoch(1),
            records: vec![(Lsn(1), LogData::from(payload))],
        });
        let buf = Arc::new(p.encode());
        let q = Packet::decode_shared(&buf).unwrap();
        // The decoded payload must be a view into `buf`, not a copy:
        // while it is alive the buffer is shared...
        assert!(
            Arc::strong_count(&buf) > 1,
            "payload did not share the buffer"
        );
        let Message::WriteLog { records, .. } = &q.msg else {
            panic!("wrong message kind");
        };
        let base = buf.as_ptr() as usize;
        let ptr = records[0].1.as_bytes().as_ptr() as usize;
        assert!(
            ptr >= base && ptr < base + buf.len(),
            "payload bytes live outside the receive buffer"
        );
        // ...and dropping the packet releases it for pool reuse.
        drop(q);
        assert_eq!(Arc::strong_count(&buf), 1);
    }

    #[test]
    fn corruption_rejected() {
        let p = Packet::bare(Message::NewHighLsn {
            client: ClientId(1),
            lsn: Lsn(5),
        });
        let mut bytes = p.encode();
        for i in 0..bytes.len() {
            if let Some(b) = bytes.get_mut(i) {
                *b ^= 0x40;
            }
            assert!(
                Packet::decode(&bytes).is_err(),
                "undetected corruption at byte {i}"
            );
            if let Some(b) = bytes.get_mut(i) {
                *b ^= 0x40;
            }
        }
        assert!(Packet::decode(bytes.get(..4).unwrap()).is_err());
        assert!(Packet::decode(&[]).is_err());
    }

    #[test]
    fn invalid_interval_list_rejected() {
        // Hand-craft a Response::Intervals with a reversed interval: the
        // CRC is valid but the interval bounds are not.
        let good = Packet::bare(Message::Response {
            id: 1,
            body: Response::Intervals {
                intervals: IntervalList::from_intervals(vec![Interval::new(
                    Epoch(1),
                    Lsn(1),
                    Lsn(2),
                )])
                .unwrap(),
            },
        });
        let mut body = Vec::new();
        put_u64(&mut body, 0);
        put_u64(&mut body, 0);
        put_u64(&mut body, 0);
        put_u64(&mut body, 0);
        put_u8(&mut body, K_RESPONSE);
        put_u64(&mut body, 1);
        put_u8(&mut body, S_INTERVALS);
        put_u32(&mut body, 1);
        put_u64(&mut body, 1); // epoch
        put_u64(&mut body, 5); // lo
        put_u64(&mut body, 2); // hi < lo!
        let mut out = Vec::new();
        put_u16(&mut out, MAGIC);
        put_u16(&mut out, 0);
        put_u32(&mut out, crc32(&body));
        out.extend_from_slice(&body);
        assert!(Packet::decode(&out).is_err());
        assert!(Packet::decode(&good.encode()).is_ok());
    }

    #[test]
    fn pack_batches_respects_packet_size() {
        let records: Vec<(Lsn, LogData)> = (1..=100u64)
            .map(|i| (Lsn(i), LogData::from(vec![0u8; 700])))
            .collect();
        let batches = pack_batches(&records);
        assert!(batches.len() > 1);
        let mut expected = 1u64;
        for batch in &batches {
            assert!(!batch.is_empty());
            let msg = Message::WriteLog {
                client: ClientId(1),
                epoch: Epoch(1),
                records: batch.clone(),
            };
            assert!(Packet::bare(msg).encoded_len() <= MAX_PACKET_BYTES);
            for (lsn, _) in batch {
                assert_eq!(lsn.0, expected);
                expected += 1;
            }
        }
        assert_eq!(expected, 101);
    }

    #[test]
    fn pack_batches_one_alloc_per_batch() {
        // Regression for the old double-copy response assembly: packing
        // must cost exactly one Vec per batch (plus the outer list) and
        // zero payload copies — payloads ride as refcount bumps.
        let records: Vec<(Lsn, LogData)> = (1..=60u64)
            .map(|i| (Lsn(i), LogData::from(vec![i as u8; 700])))
            .collect();
        let before = dlog_obs::gauge::thread_allocs();
        let batches = pack_batches(&records);
        let after = dlog_obs::gauge::thread_allocs();
        assert!(batches.len() > 1);
        assert!(
            after.wrapping_sub(before) <= 1 + batches.len() as u64,
            "pack_batches made {} allocations for {} batches",
            after.wrapping_sub(before),
            batches.len()
        );
        // And the payload bytes really are shared, not copied.
        let (_, first_src) = &records[0];
        let (_, first_packed) = &batches[0][0];
        assert_eq!(
            first_src.as_bytes().as_ptr(),
            first_packed.as_bytes().as_ptr()
        );
    }

    #[test]
    fn route_key_prefers_header_then_body() {
        let write = Message::WriteLog {
            client: ClientId(6),
            epoch: Epoch(1),
            records: vec![],
        };
        // Header hint wins.
        assert_eq!(
            Packet::routed(LogId(42), write.clone()).route_key(),
            Some(LogId(42))
        );
        // No hint: log traffic falls back to the owning client's log.
        assert_eq!(Packet::bare(write).route_key(), Some(LogId(6)));
        // Generator RPCs key by generator id.
        assert_eq!(
            Packet::bare(Message::Request {
                id: 1,
                body: Request::GenRead { generator: 9 },
            })
            .route_key(),
            Some(LogId(9))
        );
        // Control traffic is shard-agnostic.
        assert_eq!(
            Packet::bare(Message::Request {
                id: 1,
                body: Request::Status,
            })
            .route_key(),
            None
        );
        assert_eq!(
            Packet::bare(Message::Syn {
                incarnation: 1,
                isn: 2,
            })
            .route_key(),
            None
        );
    }

    #[test]
    fn oversized_record_travels_alone() {
        let records = vec![
            (Lsn(1), LogData::from(vec![0u8; MAX_PACKET_BYTES * 2])),
            (Lsn(2), LogData::from(vec![0u8; 10])),
        ];
        let batches = pack_batches(&records);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len(), 1);
    }
}
