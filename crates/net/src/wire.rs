//! Packet wire format: the message set of Figure 4-1 plus handshake and
//! RPC envelopes, CRC-protected, hand-encoded (no external serializer — a
//! 1987 log server could afford a thousand instructions per packet, and so
//! can we).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use dlog_types::{ClientId, Epoch, Interval, IntervalList, LogData, LogRecord, Lsn};

/// Maximum encoded packet size. The client packs as many log records as
/// fit below this bound into each `WriteLog`/`ForceLog` message ("client
/// processes and log servers attempt to pack as many log records as will
/// fit in a network packet in each call", §4.2).
pub const MAX_PACKET_BYTES: usize = 8192;

/// Logical address of a node on the network (mapped to a socket address by
/// the UDP transport, to a queue by the in-memory network).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeAddr(pub u64);

impl std::fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A packet: connection header plus message. In LSN-based mode (the
/// logging stream) `conn`, `seq`, and `alloc` are zero and duplicate
/// detection rides on the LSNs themselves; in connection mode they carry
/// the Watson-protocol state (§4.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Connection identifier (0 = connectionless).
    pub conn: u64,
    /// Sequence number within the connection.
    pub seq: u64,
    /// Flow-control allocation: the highest sequence number the *other*
    /// party may send without waiting.
    pub alloc: u64,
    /// The message.
    pub msg: Message,
}

impl Packet {
    /// A connectionless packet (LSN-based mode).
    #[must_use]
    pub fn bare(msg: Message) -> Self {
        Packet {
            conn: 0,
            seq: 0,
            alloc: 0,
            msg,
        }
    }

    /// The LSN this packet is "about", for trace keying (`dlog-obs`
    /// `PacketSend` events): the highest LSN of a write/force batch, the
    /// acked or missing LSN, or 0 for handshake/RPC traffic.
    #[must_use]
    pub fn lsn_hint(&self) -> u64 {
        match &self.msg {
            Message::WriteLog { records, .. } | Message::ForceLog { records, .. } => {
                records.last().map_or(0, |(lsn, _)| lsn.0)
            }
            Message::NewInterval { starting_lsn, .. } => starting_lsn.0,
            Message::NewHighLsn { lsn, .. } => lsn.0,
            Message::MissingInterval { lo, .. } => lo.0,
            _ => 0,
        }
    }
}

/// Every message of the client/log-server interface (Figure 4-1), the
/// three-way handshake, and the RPC envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Connection request (handshake step 1).
    Syn {
        /// Sender's incarnation (restart counter), making sequence numbers
        /// permanently unique across crashes.
        incarnation: u64,
        /// Initial sequence number.
        isn: u64,
    },
    /// Connection accept (handshake step 2).
    SynAck {
        /// Responder incarnation.
        incarnation: u64,
        /// Responder initial sequence number.
        isn: u64,
        /// Acknowledges the `Syn` isn.
        ack: u64,
    },
    /// Handshake completion (step 3).
    HandshakeAck {
        /// Acknowledges the `SynAck` isn.
        ack: u64,
    },

    /// Asynchronous buffered write of a batch of log records.
    WriteLog {
        /// Writing client.
        client: ClientId,
        /// Crash epoch of every record in the batch.
        epoch: Epoch,
        /// `(LSN, data)` pairs with consecutive LSNs.
        records: Vec<(Lsn, LogData)>,
    },
    /// Asynchronous write requiring prompt acknowledgment (`NewHighLSN`).
    ForceLog {
        /// Writing client.
        client: ClientId,
        /// Crash epoch of every record in the batch.
        epoch: Epoch,
        /// `(LSN, data)` pairs with consecutive LSNs.
        records: Vec<(Lsn, LogData)>,
    },
    /// Tells the server to abandon a missing range and start a new
    /// interval at `starting_lsn` (the records were written elsewhere).
    NewInterval {
        /// Writing client.
        client: ClientId,
        /// Epoch of the new interval.
        epoch: Epoch,
        /// First LSN of the new interval.
        starting_lsn: Lsn,
    },

    /// Server acknowledgment: all records up to `lsn` are durable.
    NewHighLsn {
        /// The client whose records are acknowledged.
        client: ClientId,
        /// Highest durable LSN.
        lsn: Lsn,
    },
    /// Server NAK: a gap was detected before `lo..=hi`; resend or declare
    /// a new interval.
    MissingInterval {
        /// The client with the gap.
        client: ClientId,
        /// First missing LSN.
        lo: Lsn,
        /// Last missing LSN.
        hi: Lsn,
    },

    /// Synchronous request.
    Request {
        /// Matches the response to the request across retries.
        id: u64,
        /// The call.
        body: Request,
    },
    /// Synchronous response.
    Response {
        /// Echoes the request id.
        id: u64,
        /// The result.
        body: Response,
    },
}

/// Bodies of the strict RPCs (client → server).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Intervals stored for the client (client initialization, §3.1.2).
    IntervalList {
        /// The restarting client.
        client: ClientId,
    },
    /// Records with LSN ≥ `lsn`, packed up to a packet.
    ReadLogForward {
        /// Owning client.
        client: ClientId,
        /// Starting LSN (inclusive).
        lsn: Lsn,
        /// Cap on records returned.
        max_records: u32,
    },
    /// Records with LSN ≤ `lsn`, packed up to a packet (descending).
    ReadLogBackward {
        /// Owning client.
        client: ClientId,
        /// Starting LSN (inclusive).
        lsn: Lsn,
        /// Cap on records returned.
        max_records: u32,
    },
    /// Stage recovery copies (may have LSNs below the server's high LSN).
    CopyLog {
        /// Recovering client.
        client: ClientId,
        /// The client's new epoch.
        epoch: Epoch,
        /// Full records including present flags.
        records: Vec<LogRecord>,
    },
    /// Atomically install all records staged with `epoch`.
    InstallCopies {
        /// Recovering client.
        client: ClientId,
        /// Epoch staged by preceding `CopyLog` calls.
        epoch: Epoch,
    },
    /// Read a replicated-identifier-generator state representative
    /// (Appendix I). Representatives are hosted on log-server nodes.
    GenRead {
        /// Generator identifier.
        generator: u64,
    },
    /// Write a generator state representative (Appendix I).
    GenWrite {
        /// Generator identifier.
        generator: u64,
        /// New value (must exceed the stored one to take effect).
        value: u64,
    },
    /// Operational status snapshot (observability; `dlog status`).
    Status,
    /// Per-stage latency histograms and trace counters (`dlog stats`).
    Stats,
}

/// One pipeline stage's latency summary inside [`Response::Stats`]: a
/// sparse log₂ histogram (only non-empty buckets travel) plus the raw
/// max, so clients can rebuild and merge `dlog-obs` snapshots from many
/// servers in any order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageStats {
    /// `dlog_obs::Stage` wire tag (0 = `ClientWrite` … 5 = `ArchiveTick`).
    pub stage: u8,
    /// Total observations recorded for the stage.
    pub count: u64,
    /// Largest latency sample observed, nanoseconds.
    pub max_ns: u64,
    /// Non-empty histogram buckets as `(bucket index, count)` pairs.
    pub buckets: Vec<(u8, u64)>,
}

/// RPC results (server → client).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Interval list for the requested client.
    Intervals {
        /// Stored intervals in storage order.
        intervals: IntervalList,
    },
    /// Records for a read call; empty when the server stores none in the
    /// requested direction.
    Records {
        /// The records, with epochs and present flags.
        records: Vec<LogRecord>,
    },
    /// Generic success (CopyLog, InstallCopies).
    Ok,
    /// Failure with a code and diagnostic.
    Err {
        /// Machine-readable code (see [`codes`]).
        code: u16,
        /// Human-readable detail.
        detail: String,
    },
    /// Generator representative value.
    GenValue {
        /// Stored value.
        value: u64,
    },
    /// Server status snapshot.
    Status {
        /// Records stored (all clients, including staged copies).
        records_stored: u64,
        /// Duplicate records suppressed by LSN.
        duplicates_ignored: u64,
        /// `MissingInterval` NAKs sent.
        naks_sent: u64,
        /// Write/force messages dropped by load shedding.
        writes_shed: u64,
        /// Strict RPCs served.
        rpcs: u64,
        /// Forces acknowledged.
        forces_acked: u64,
        /// Distinct clients with stored records.
        clients: u64,
        /// Live bytes in the on-disk stream.
        on_disk_bytes: u64,
        /// Track flushes performed.
        tracks_flushed: u64,
        /// Bytes referenced by the newest archive manifest (0 when
        /// archival is not configured).
        archived_bytes: u64,
        /// Durable bytes not yet covered by an archive manifest.
        pending_upload_bytes: u64,
        /// Highest installed LSN covered by the newest manifest.
        last_manifest_lsn: u64,
        /// Failed archive put attempts (each triggered a retry).
        upload_retries: u64,
        /// `ForceLog` acks deferred into a group-commit batch.
        coalesced_forces: u64,
        /// Physical group-commit rounds flushed.
        group_commits: u64,
    },
    /// Per-stage latency histograms (see [`StageStats`]) and trace-ring
    /// counters from the server's `dlog-obs` handle. All fields are zero
    /// or empty when the server runs with observability off.
    Stats {
        /// One summary per instrumented stage, in stage-tag order.
        stages: Vec<StageStats>,
        /// Trace events ever emitted.
        trace_events: u64,
        /// Trace events evicted from the ring.
        trace_dropped: u64,
    },
}

/// Error codes carried by [`Response::Err`].
pub mod codes {
    /// Epoch at or below the server's current one.
    pub const STALE_EPOCH: u16 = 1;
    /// Malformed or out-of-order request.
    pub const PROTOCOL: u16 = 2;
    /// Server overloaded and shedding work.
    pub const OVERLOADED: u16 = 3;
    /// Internal storage failure.
    pub const STORAGE: u16 = 4;
}

const MAGIC: u16 = 0xD10C;

// Message kind tags.
const K_SYN: u8 = 1;
const K_SYNACK: u8 = 2;
const K_HSACK: u8 = 3;
const K_WRITELOG: u8 = 4;
const K_FORCELOG: u8 = 5;
const K_NEWINTERVAL: u8 = 6;
const K_NEWHIGHLSN: u8 = 7;
const K_MISSING: u8 = 8;
const K_REQUEST: u8 = 9;
const K_RESPONSE: u8 = 10;

// Request kind tags.
const R_INTERVALS: u8 = 1;
const R_READFWD: u8 = 2;
const R_READBWD: u8 = 3;
const R_COPYLOG: u8 = 4;
const R_INSTALL: u8 = 5;
const R_GENREAD: u8 = 6;
const R_GENWRITE: u8 = 7;
const R_STATUS: u8 = 8;
const R_STATS: u8 = 9;

// Response kind tags.
const S_INTERVALS: u8 = 1;
const S_RECORDS: u8 = 2;
const S_OK: u8 = 3;
const S_ERR: u8 = 4;
const S_GENVALUE: u8 = 5;
const S_STATUS: u8 = 6;
const S_STATS: u8 = 7;

/// Wire-format decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "packet decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

impl Packet {
    /// Encode to bytes (with magic and CRC).
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::with_capacity(256);
        body.put_u64_le(self.conn);
        body.put_u64_le(self.seq);
        body.put_u64_le(self.alloc);
        encode_message(&self.msg, &mut body);

        let mut out = BytesMut::with_capacity(body.len() + 8);
        out.put_u16_le(MAGIC);
        out.put_u16_le(0); // reserved
        out.put_u32_le(crc32(&body));
        out.extend_from_slice(&body);
        out.freeze()
    }

    /// Decode from bytes.
    ///
    /// # Errors
    /// [`DecodeError`] on bad magic, CRC mismatch, or malformed body.
    pub fn decode(bytes: &[u8]) -> Result<Packet, DecodeError> {
        if bytes.len() < 8 {
            return Err(DecodeError("short packet".into()));
        }
        let mut hdr = bytes;
        let magic = hdr.get_u16_le();
        let reserved = hdr.get_u16_le();
        let crc = hdr.get_u32_le();
        if magic != MAGIC {
            return Err(DecodeError("bad magic".into()));
        }
        if reserved != 0 {
            return Err(DecodeError("nonzero reserved field".into()));
        }
        let body = bytes.get(8..).unwrap_or(&[]);
        if crc32(body) != crc {
            return Err(DecodeError("crc mismatch".into()));
        }
        let mut r = body;
        if r.remaining() < 24 {
            return Err(DecodeError("short header".into()));
        }
        let conn = r.get_u64_le();
        let seq = r.get_u64_le();
        let alloc = r.get_u64_le();
        let msg = decode_message(&mut r)?;
        if r.has_remaining() {
            return Err(DecodeError("trailing bytes".into()));
        }
        Ok(Packet {
            conn,
            seq,
            alloc,
            msg,
        })
    }

    /// Encoded size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

fn crc32(data: &[u8]) -> u32 {
    // Small local CRC (same polynomial as the storage layer); duplicated
    // rather than shared to keep the net crate free of the storage
    // dependency.
    let mut state = 0xFFFF_FFFFu32;
    for &b in data {
        state ^= u32::from(b);
        for _ in 0..8 {
            state = if state & 1 != 0 {
                (state >> 1) ^ 0xEDB8_8320
            } else {
                state >> 1
            };
        }
    }
    state ^ 0xFFFF_FFFF
}

fn put_data(out: &mut BytesMut, d: &LogData) {
    out.put_u32_le(d.len() as u32);
    out.put_slice(d.as_bytes());
}

fn get_data(r: &mut &[u8]) -> Result<LogData, DecodeError> {
    if r.remaining() < 4 {
        return Err(DecodeError("short data length".into()));
    }
    let len = r.get_u32_le() as usize;
    let d = LogData::from(
        r.get(..len)
            .ok_or_else(|| DecodeError("short data".into()))?,
    );
    r.advance(len);
    Ok(d)
}

fn put_lsn_batch(out: &mut BytesMut, records: &[(Lsn, LogData)]) {
    out.put_u32_le(records.len() as u32);
    for (lsn, data) in records {
        out.put_u64_le(lsn.0);
        put_data(out, data);
    }
}

fn get_lsn_batch(r: &mut &[u8]) -> Result<Vec<(Lsn, LogData)>, DecodeError> {
    if r.remaining() < 4 {
        return Err(DecodeError("short batch".into()));
    }
    let n = r.get_u32_le() as usize;
    if n > MAX_PACKET_BYTES {
        return Err(DecodeError("batch count absurd".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if r.remaining() < 8 {
            return Err(DecodeError("short batch entry".into()));
        }
        let lsn = Lsn(r.get_u64_le());
        let data = get_data(r)?;
        out.push((lsn, data));
    }
    Ok(out)
}

fn put_records(out: &mut BytesMut, records: &[LogRecord]) {
    out.put_u32_le(records.len() as u32);
    for rec in records {
        out.put_u64_le(rec.lsn.0);
        out.put_u64_le(rec.epoch.0);
        out.put_u8(u8::from(rec.present));
        put_data(out, &rec.data);
    }
}

fn get_records(r: &mut &[u8]) -> Result<Vec<LogRecord>, DecodeError> {
    if r.remaining() < 4 {
        return Err(DecodeError("short records".into()));
    }
    let n = r.get_u32_le() as usize;
    if n > MAX_PACKET_BYTES {
        return Err(DecodeError("record count absurd".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if r.remaining() < 17 {
            return Err(DecodeError("short record".into()));
        }
        let lsn = Lsn(r.get_u64_le());
        let epoch = Epoch(r.get_u64_le());
        let present = r.get_u8() != 0;
        let data = get_data(r)?;
        out.push(LogRecord {
            lsn,
            epoch,
            present,
            data,
        });
    }
    Ok(out)
}

fn put_intervals(out: &mut BytesMut, list: &IntervalList) {
    out.put_u32_le(list.len() as u32);
    for iv in list {
        out.put_u64_le(iv.epoch.0);
        out.put_u64_le(iv.lo.0);
        out.put_u64_le(iv.hi.0);
    }
}

fn get_intervals(r: &mut &[u8]) -> Result<IntervalList, DecodeError> {
    if r.remaining() < 4 {
        return Err(DecodeError("short interval list".into()));
    }
    let n = r.get_u32_le() as usize;
    if n > MAX_PACKET_BYTES {
        return Err(DecodeError("interval count absurd".into()));
    }
    let mut intervals = Vec::with_capacity(n);
    for _ in 0..n {
        if r.remaining() < 24 {
            return Err(DecodeError("short interval".into()));
        }
        let epoch = Epoch(r.get_u64_le());
        let lo = Lsn(r.get_u64_le());
        let hi = Lsn(r.get_u64_le());
        if lo > hi || lo == Lsn::ZERO {
            return Err(DecodeError("invalid interval bounds".into()));
        }
        intervals.push(Interval::new(epoch, lo, hi));
    }
    IntervalList::from_intervals(intervals).map_err(DecodeError)
}

fn encode_message(msg: &Message, out: &mut BytesMut) {
    match msg {
        Message::Syn { incarnation, isn } => {
            out.put_u8(K_SYN);
            out.put_u64_le(*incarnation);
            out.put_u64_le(*isn);
        }
        Message::SynAck {
            incarnation,
            isn,
            ack,
        } => {
            out.put_u8(K_SYNACK);
            out.put_u64_le(*incarnation);
            out.put_u64_le(*isn);
            out.put_u64_le(*ack);
        }
        Message::HandshakeAck { ack } => {
            out.put_u8(K_HSACK);
            out.put_u64_le(*ack);
        }
        Message::WriteLog {
            client,
            epoch,
            records,
        } => {
            out.put_u8(K_WRITELOG);
            out.put_u64_le(client.0);
            out.put_u64_le(epoch.0);
            put_lsn_batch(out, records);
        }
        Message::ForceLog {
            client,
            epoch,
            records,
        } => {
            out.put_u8(K_FORCELOG);
            out.put_u64_le(client.0);
            out.put_u64_le(epoch.0);
            put_lsn_batch(out, records);
        }
        Message::NewInterval {
            client,
            epoch,
            starting_lsn,
        } => {
            out.put_u8(K_NEWINTERVAL);
            out.put_u64_le(client.0);
            out.put_u64_le(epoch.0);
            out.put_u64_le(starting_lsn.0);
        }
        Message::NewHighLsn { client, lsn } => {
            out.put_u8(K_NEWHIGHLSN);
            out.put_u64_le(client.0);
            out.put_u64_le(lsn.0);
        }
        Message::MissingInterval { client, lo, hi } => {
            out.put_u8(K_MISSING);
            out.put_u64_le(client.0);
            out.put_u64_le(lo.0);
            out.put_u64_le(hi.0);
        }
        Message::Request { id, body } => {
            out.put_u8(K_REQUEST);
            out.put_u64_le(*id);
            encode_request(body, out);
        }
        Message::Response { id, body } => {
            out.put_u8(K_RESPONSE);
            out.put_u64_le(*id);
            encode_response(body, out);
        }
    }
}

fn encode_request(body: &Request, out: &mut BytesMut) {
    match body {
        Request::IntervalList { client } => {
            out.put_u8(R_INTERVALS);
            out.put_u64_le(client.0);
        }
        Request::ReadLogForward {
            client,
            lsn,
            max_records,
        } => {
            out.put_u8(R_READFWD);
            out.put_u64_le(client.0);
            out.put_u64_le(lsn.0);
            out.put_u32_le(*max_records);
        }
        Request::ReadLogBackward {
            client,
            lsn,
            max_records,
        } => {
            out.put_u8(R_READBWD);
            out.put_u64_le(client.0);
            out.put_u64_le(lsn.0);
            out.put_u32_le(*max_records);
        }
        Request::CopyLog {
            client,
            epoch,
            records,
        } => {
            out.put_u8(R_COPYLOG);
            out.put_u64_le(client.0);
            out.put_u64_le(epoch.0);
            put_records(out, records);
        }
        Request::InstallCopies { client, epoch } => {
            out.put_u8(R_INSTALL);
            out.put_u64_le(client.0);
            out.put_u64_le(epoch.0);
        }
        Request::GenRead { generator } => {
            out.put_u8(R_GENREAD);
            out.put_u64_le(*generator);
        }
        Request::GenWrite { generator, value } => {
            out.put_u8(R_GENWRITE);
            out.put_u64_le(*generator);
            out.put_u64_le(*value);
        }
        Request::Status => out.put_u8(R_STATUS),
        Request::Stats => out.put_u8(R_STATS),
    }
}

fn encode_response(body: &Response, out: &mut BytesMut) {
    match body {
        Response::Intervals { intervals } => {
            out.put_u8(S_INTERVALS);
            put_intervals(out, intervals);
        }
        Response::Records { records } => {
            out.put_u8(S_RECORDS);
            put_records(out, records);
        }
        Response::Ok => out.put_u8(S_OK),
        Response::Err { code, detail } => {
            out.put_u8(S_ERR);
            out.put_u16_le(*code);
            out.put_u32_le(detail.len() as u32);
            out.put_slice(detail.as_bytes());
        }
        Response::GenValue { value } => {
            out.put_u8(S_GENVALUE);
            out.put_u64_le(*value);
        }
        Response::Status {
            records_stored,
            duplicates_ignored,
            naks_sent,
            writes_shed,
            rpcs,
            forces_acked,
            clients,
            on_disk_bytes,
            tracks_flushed,
            archived_bytes,
            pending_upload_bytes,
            last_manifest_lsn,
            upload_retries,
            coalesced_forces,
            group_commits,
        } => {
            out.put_u8(S_STATUS);
            for v in [
                records_stored,
                duplicates_ignored,
                naks_sent,
                writes_shed,
                rpcs,
                forces_acked,
                clients,
                on_disk_bytes,
                tracks_flushed,
                archived_bytes,
                pending_upload_bytes,
                last_manifest_lsn,
                upload_retries,
                coalesced_forces,
                group_commits,
            ] {
                out.put_u64_le(*v);
            }
        }
        Response::Stats {
            stages,
            trace_events,
            trace_dropped,
        } => {
            out.put_u8(S_STATS);
            out.put_u64_le(*trace_events);
            out.put_u64_le(*trace_dropped);
            // At most `Stage::COUNT` (9) stages ever travel; u8 is ample.
            out.put_u8(stages.len().min(u8::MAX as usize) as u8);
            for s in stages.iter().take(u8::MAX as usize) {
                out.put_u8(s.stage);
                out.put_u64_le(s.count);
                out.put_u64_le(s.max_ns);
                out.put_u16_le(s.buckets.len().min(u16::MAX as usize) as u16);
                for (bucket, count) in s.buckets.iter().take(u16::MAX as usize) {
                    out.put_u8(*bucket);
                    out.put_u64_le(*count);
                }
            }
        }
    }
}

macro_rules! need {
    ($r:expr, $n:expr) => {
        if $r.remaining() < $n {
            return Err(DecodeError("truncated message".into()));
        }
    };
}

fn decode_message(r: &mut &[u8]) -> Result<Message, DecodeError> {
    need!(r, 1);
    let kind = r.get_u8();
    match kind {
        K_SYN => {
            need!(r, 16);
            Ok(Message::Syn {
                incarnation: r.get_u64_le(),
                isn: r.get_u64_le(),
            })
        }
        K_SYNACK => {
            need!(r, 24);
            Ok(Message::SynAck {
                incarnation: r.get_u64_le(),
                isn: r.get_u64_le(),
                ack: r.get_u64_le(),
            })
        }
        K_HSACK => {
            need!(r, 8);
            Ok(Message::HandshakeAck {
                ack: r.get_u64_le(),
            })
        }
        K_WRITELOG | K_FORCELOG => {
            need!(r, 16);
            let client = ClientId(r.get_u64_le());
            let epoch = Epoch(r.get_u64_le());
            let records = get_lsn_batch(r)?;
            Ok(if kind == K_WRITELOG {
                Message::WriteLog {
                    client,
                    epoch,
                    records,
                }
            } else {
                Message::ForceLog {
                    client,
                    epoch,
                    records,
                }
            })
        }
        K_NEWINTERVAL => {
            need!(r, 24);
            Ok(Message::NewInterval {
                client: ClientId(r.get_u64_le()),
                epoch: Epoch(r.get_u64_le()),
                starting_lsn: Lsn(r.get_u64_le()),
            })
        }
        K_NEWHIGHLSN => {
            need!(r, 16);
            Ok(Message::NewHighLsn {
                client: ClientId(r.get_u64_le()),
                lsn: Lsn(r.get_u64_le()),
            })
        }
        K_MISSING => {
            need!(r, 24);
            Ok(Message::MissingInterval {
                client: ClientId(r.get_u64_le()),
                lo: Lsn(r.get_u64_le()),
                hi: Lsn(r.get_u64_le()),
            })
        }
        K_REQUEST => {
            need!(r, 8);
            let id = r.get_u64_le();
            let body = decode_request(r)?;
            Ok(Message::Request { id, body })
        }
        K_RESPONSE => {
            need!(r, 8);
            let id = r.get_u64_le();
            let body = decode_response(r)?;
            Ok(Message::Response { id, body })
        }
        other => Err(DecodeError(format!("unknown message kind {other}"))),
    }
}

fn decode_request(r: &mut &[u8]) -> Result<Request, DecodeError> {
    need!(r, 1);
    let kind = r.get_u8();
    match kind {
        R_INTERVALS => {
            need!(r, 8);
            Ok(Request::IntervalList {
                client: ClientId(r.get_u64_le()),
            })
        }
        R_READFWD | R_READBWD => {
            need!(r, 20);
            let client = ClientId(r.get_u64_le());
            let lsn = Lsn(r.get_u64_le());
            let max_records = r.get_u32_le();
            Ok(if kind == R_READFWD {
                Request::ReadLogForward {
                    client,
                    lsn,
                    max_records,
                }
            } else {
                Request::ReadLogBackward {
                    client,
                    lsn,
                    max_records,
                }
            })
        }
        R_COPYLOG => {
            need!(r, 16);
            let client = ClientId(r.get_u64_le());
            let epoch = Epoch(r.get_u64_le());
            let records = get_records(r)?;
            Ok(Request::CopyLog {
                client,
                epoch,
                records,
            })
        }
        R_INSTALL => {
            need!(r, 16);
            Ok(Request::InstallCopies {
                client: ClientId(r.get_u64_le()),
                epoch: Epoch(r.get_u64_le()),
            })
        }
        R_GENREAD => {
            need!(r, 8);
            Ok(Request::GenRead {
                generator: r.get_u64_le(),
            })
        }
        R_GENWRITE => {
            need!(r, 16);
            Ok(Request::GenWrite {
                generator: r.get_u64_le(),
                value: r.get_u64_le(),
            })
        }
        R_STATUS => Ok(Request::Status),
        R_STATS => Ok(Request::Stats),
        other => Err(DecodeError(format!("unknown request kind {other}"))),
    }
}

fn decode_response(r: &mut &[u8]) -> Result<Response, DecodeError> {
    need!(r, 1);
    let kind = r.get_u8();
    match kind {
        S_INTERVALS => Ok(Response::Intervals {
            intervals: get_intervals(r)?,
        }),
        S_RECORDS => Ok(Response::Records {
            records: get_records(r)?,
        }),
        S_OK => Ok(Response::Ok),
        S_ERR => {
            need!(r, 6);
            let code = r.get_u16_le();
            let len = r.get_u32_le() as usize;
            need!(r, len);
            let detail = String::from_utf8_lossy(r.get(..len).unwrap_or(&[])).into_owned();
            r.advance(len);
            Ok(Response::Err { code, detail })
        }
        S_GENVALUE => {
            need!(r, 8);
            Ok(Response::GenValue {
                value: r.get_u64_le(),
            })
        }
        S_STATUS => {
            need!(r, 120);
            Ok(Response::Status {
                records_stored: r.get_u64_le(),
                duplicates_ignored: r.get_u64_le(),
                naks_sent: r.get_u64_le(),
                writes_shed: r.get_u64_le(),
                rpcs: r.get_u64_le(),
                forces_acked: r.get_u64_le(),
                clients: r.get_u64_le(),
                on_disk_bytes: r.get_u64_le(),
                tracks_flushed: r.get_u64_le(),
                archived_bytes: r.get_u64_le(),
                pending_upload_bytes: r.get_u64_le(),
                last_manifest_lsn: r.get_u64_le(),
                upload_retries: r.get_u64_le(),
                coalesced_forces: r.get_u64_le(),
                group_commits: r.get_u64_le(),
            })
        }
        S_STATS => {
            need!(r, 17);
            let trace_events = r.get_u64_le();
            let trace_dropped = r.get_u64_le();
            let nstages = r.get_u8() as usize;
            let mut stages = Vec::with_capacity(nstages.min(16));
            for _ in 0..nstages {
                need!(r, 19);
                let stage = r.get_u8();
                let count = r.get_u64_le();
                let max_ns = r.get_u64_le();
                let nbuckets = r.get_u16_le() as usize;
                let mut buckets = Vec::with_capacity(nbuckets.min(64));
                for _ in 0..nbuckets {
                    need!(r, 9);
                    buckets.push((r.get_u8(), r.get_u64_le()));
                }
                stages.push(StageStats {
                    stage,
                    count,
                    max_ns,
                    buckets,
                });
            }
            Ok(Response::Stats {
                stages,
                trace_events,
                trace_dropped,
            })
        }
        other => Err(DecodeError(format!("unknown response kind {other}"))),
    }
}

/// Pack `(LSN, data)` records into batches whose encoded `WriteLog`
/// packets stay below [`MAX_PACKET_BYTES`]. Each batch holds at least one
/// record (an oversized record travels alone).
#[must_use]
pub fn pack_batches(records: &[(Lsn, LogData)]) -> Vec<Vec<(Lsn, LogData)>> {
    const HEADER_SLACK: usize = 64;
    let mut batches = Vec::new();
    let mut current: Vec<(Lsn, LogData)> = Vec::new();
    let mut current_bytes = HEADER_SLACK;
    for (lsn, data) in records {
        let cost = 12 + data.len();
        if !current.is_empty() && current_bytes + cost > MAX_PACKET_BYTES {
            batches.push(std::mem::take(&mut current));
            current_bytes = HEADER_SLACK;
        }
        current.push((*lsn, data.clone()));
        current_bytes += cost;
    }
    if !current.is_empty() {
        batches.push(current);
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let p = Packet {
            conn: 7,
            seq: 42,
            alloc: 100,
            msg,
        };
        let bytes = p.encode();
        let q = Packet::decode(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_handshake() {
        roundtrip(Message::Syn {
            incarnation: 3,
            isn: 1000,
        });
        roundtrip(Message::SynAck {
            incarnation: 5,
            isn: 2000,
            ack: 1000,
        });
        roundtrip(Message::HandshakeAck { ack: 2000 });
    }

    #[test]
    fn roundtrip_write_force() {
        let records = vec![
            (Lsn(5), LogData::from(vec![1u8; 100])),
            (Lsn(6), LogData::from(vec![2u8; 50])),
        ];
        roundtrip(Message::WriteLog {
            client: ClientId(1),
            epoch: Epoch(3),
            records: records.clone(),
        });
        roundtrip(Message::ForceLog {
            client: ClientId(1),
            epoch: Epoch(3),
            records,
        });
        roundtrip(Message::WriteLog {
            client: ClientId(1),
            epoch: Epoch(3),
            records: vec![],
        });
    }

    #[test]
    fn roundtrip_control() {
        roundtrip(Message::NewInterval {
            client: ClientId(2),
            epoch: Epoch(9),
            starting_lsn: Lsn(77),
        });
        roundtrip(Message::NewHighLsn {
            client: ClientId(2),
            lsn: Lsn(99),
        });
        roundtrip(Message::MissingInterval {
            client: ClientId(2),
            lo: Lsn(5),
            hi: Lsn(9),
        });
    }

    #[test]
    fn roundtrip_rpcs() {
        let recs = vec![
            LogRecord::present(Lsn(9), Epoch(4), vec![7u8; 30]),
            LogRecord::not_present(Lsn(10), Epoch(4)),
        ];
        for body in [
            Request::IntervalList {
                client: ClientId(3),
            },
            Request::ReadLogForward {
                client: ClientId(3),
                lsn: Lsn(1),
                max_records: 16,
            },
            Request::ReadLogBackward {
                client: ClientId(3),
                lsn: Lsn(10),
                max_records: 16,
            },
            Request::CopyLog {
                client: ClientId(3),
                epoch: Epoch(4),
                records: recs,
            },
            Request::InstallCopies {
                client: ClientId(3),
                epoch: Epoch(4),
            },
            Request::GenRead { generator: 1 },
            Request::GenWrite {
                generator: 1,
                value: 12,
            },
        ] {
            roundtrip(Message::Request { id: 55, body });
        }
        let list = IntervalList::from_intervals(vec![
            Interval::new(Epoch(1), Lsn(1), Lsn(3)),
            Interval::new(Epoch(3), Lsn(3), Lsn(9)),
        ])
        .unwrap();
        for body in [
            Response::Intervals { intervals: list },
            Response::Intervals {
                intervals: IntervalList::new(),
            },
            Response::Records {
                records: vec![LogRecord::present(Lsn(1), Epoch(1), vec![1])],
            },
            Response::Records { records: vec![] },
            Response::Ok,
            Response::Err {
                code: codes::OVERLOADED,
                detail: "busy".into(),
            },
            Response::GenValue { value: 1234 },
        ] {
            roundtrip(Message::Response { id: 55, body });
        }
    }

    #[test]
    fn corruption_rejected() {
        let p = Packet::bare(Message::NewHighLsn {
            client: ClientId(1),
            lsn: Lsn(5),
        });
        let mut bytes = p.encode().to_vec();
        for i in 0..bytes.len() {
            bytes[i] ^= 0x40;
            assert!(
                Packet::decode(&bytes).is_err(),
                "undetected corruption at byte {i}"
            );
            bytes[i] ^= 0x40;
        }
        assert!(Packet::decode(&bytes[..4]).is_err());
        assert!(Packet::decode(&[]).is_err());
    }

    #[test]
    fn invalid_interval_list_rejected() {
        // Hand-craft a Response::Intervals with a reversed interval.
        let good = Packet::bare(Message::Response {
            id: 1,
            body: Response::Intervals {
                intervals: IntervalList::from_intervals(vec![Interval::new(
                    Epoch(1),
                    Lsn(1),
                    Lsn(2),
                )])
                .unwrap(),
            },
        });
        // Decode body, flip lo/hi in raw bytes, re-CRC — simpler: encode a
        // packet manually with lo > hi.
        let mut body = BytesMut::new();
        body.put_u64_le(0);
        body.put_u64_le(0);
        body.put_u64_le(0);
        body.put_u8(K_RESPONSE);
        body.put_u64_le(1);
        body.put_u8(S_INTERVALS);
        body.put_u32_le(1);
        body.put_u64_le(1); // epoch
        body.put_u64_le(5); // lo
        body.put_u64_le(2); // hi < lo!
        let mut out = BytesMut::new();
        out.put_u16_le(MAGIC);
        out.put_u16_le(0);
        out.put_u32_le(crc32(&body));
        out.extend_from_slice(&body);
        assert!(Packet::decode(&out).is_err());
        assert!(Packet::decode(&good.encode()).is_ok());
    }

    #[test]
    fn pack_batches_respects_packet_size() {
        let records: Vec<(Lsn, LogData)> = (1..=100u64)
            .map(|i| (Lsn(i), LogData::from(vec![0u8; 700])))
            .collect();
        let batches = pack_batches(&records);
        assert!(batches.len() > 1);
        let mut expected = 1u64;
        for batch in &batches {
            assert!(!batch.is_empty());
            let msg = Message::WriteLog {
                client: ClientId(1),
                epoch: Epoch(1),
                records: batch.clone(),
            };
            assert!(Packet::bare(msg).encoded_len() <= MAX_PACKET_BYTES);
            for (lsn, _) in batch {
                assert_eq!(lsn.0, expected);
                expected += 1;
            }
        }
        assert_eq!(expected, 101);
    }

    #[test]
    fn oversized_record_travels_alone() {
        let records = vec![
            (Lsn(1), LogData::from(vec![0u8; MAX_PACKET_BYTES * 2])),
            (Lsn(2), LogData::from(vec![0u8; 10])),
        ];
        let batches = pack_batches(&records);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len(), 1);
    }
}
