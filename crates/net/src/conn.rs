//! Watson-style connection machinery (§4.2): a sans-I/O state machine
//! providing the three-way handshake, permanently unique sequence numbers,
//! duplicate detection across crashes, and moving-window flow control with
//! allocations.
//!
//! "To establish communication with a log server, a client initiates a
//! three way handshake. Both client and server then maintain a small
//! amount of state while the connection is active. This allows packets to
//! contain permanently unique sequence numbers, and permits duplicate
//! packets to be detected even across a crash of the receiving node. All
//! calls participate in a moving window flow control strategy at the
//! packet level. An allocation inserted in every packet specifies the
//! highest sequence number the other party is permitted to send without
//! waiting. Deadlocks are prevented by allowing either party to exceed its
//! allocation, so long as it pauses several seconds between packets."
//!
//! The state machine is transport-free: callers feed incoming packets to
//! [`Connection::on_packet`] and ship whatever packets the methods return.

use std::collections::BTreeSet;

use crate::wire::{Message, Packet};

/// Why a send was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The connection is not established yet.
    NotEstablished,
    /// The peer's allocation is exhausted; wait for a new allocation or —
    /// after pausing — use [`Connection::send_exceeding_allocation`].
    AllocationExhausted {
        /// Highest sequence number the peer currently permits.
        allocation: u64,
    },
}

/// Connection role (who sent the SYN).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed,
    SynSent,
    SynReceived,
    Established,
}

/// One side of a §4.2 connection.
#[derive(Debug)]
pub struct Connection {
    /// Local incarnation number: bumped every process restart, making
    /// `(incarnation, seq)` permanently unique.
    incarnation: u64,
    state: State,
    /// Next sequence number to assign to an outgoing packet.
    next_seq: u64,
    /// Peer incarnation learned in the handshake.
    peer_incarnation: Option<u64>,
    /// Highest sequence number the peer has permitted us to send.
    peer_allocation: u64,
    /// Sequence numbers we have delivered (for duplicate filtering);
    /// everything at or below `recv_floor` is also considered seen.
    recv_floor: u64,
    recv_seen: BTreeSet<u64>,
    /// How many packets beyond the contiguity floor we grant the peer.
    window: u64,
}

/// What [`Connection::on_packet`] produced.
#[derive(Debug, Default)]
pub struct Incoming {
    /// Packets to transmit in response (handshake steps).
    pub replies: Vec<Packet>,
    /// The application message, if the packet carried a fresh one.
    pub delivered: Option<Message>,
    /// True if the packet was discarded as a duplicate.
    pub duplicate: bool,
}

impl Connection {
    /// Create a closed connection endpoint.
    ///
    /// `incarnation` must be fresh per process start (a restart counter or
    /// coarse timestamp); `isn` is the initial sequence number; `window`
    /// is the number of packets granted beyond the last delivered one.
    #[must_use]
    pub fn new(incarnation: u64, isn: u64, window: u64) -> Self {
        Connection {
            incarnation,
            state: State::Closed,
            next_seq: isn,
            peer_incarnation: None,
            peer_allocation: 0,
            recv_floor: 0,
            recv_seen: BTreeSet::new(),
            window: window.max(1),
        }
    }

    /// Begin the three-way handshake; returns the SYN to transmit.
    #[must_use]
    pub fn connect(&mut self) -> Packet {
        self.state = State::SynSent;
        Packet {
            conn: self.incarnation,
            seq: self.next_seq,
            alloc: 0,
            log: 0,
            msg: Message::Syn {
                incarnation: self.incarnation,
                isn: self.next_seq,
            },
        }
    }

    /// True once the handshake completed.
    #[must_use]
    pub fn is_established(&self) -> bool {
        self.state == State::Established
    }

    /// Highest sequence number the peer currently allows us to use.
    #[must_use]
    pub fn allocation(&self) -> u64 {
        self.peer_allocation
    }

    /// Wrap `msg` in the next packet if the peer's allocation permits.
    ///
    /// # Errors
    /// [`SendError`] when unestablished or beyond the allocation.
    pub fn send(&mut self, msg: Message) -> Result<Packet, SendError> {
        if self.state != State::Established {
            return Err(SendError::NotEstablished);
        }
        if self.next_seq > self.peer_allocation {
            return Err(SendError::AllocationExhausted {
                allocation: self.peer_allocation,
            });
        }
        Ok(self.raw_packet(msg))
    }

    /// The §4.2 deadlock escape: send beyond the allocation. The caller is
    /// responsible for having paused "several seconds" first so a slow
    /// receiver is not overrun.
    ///
    /// # Errors
    /// [`SendError::NotEstablished`] before the handshake completes.
    pub fn send_exceeding_allocation(&mut self, msg: Message) -> Result<Packet, SendError> {
        if self.state != State::Established {
            return Err(SendError::NotEstablished);
        }
        Ok(self.raw_packet(msg))
    }

    fn raw_packet(&mut self, msg: Message) -> Packet {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.saturating_add(1);
        Packet {
            conn: self.conn_id(),
            seq,
            alloc: self.grant(),
            log: 0,
            msg,
        }
    }

    /// The allocation we currently extend to the peer ("each party
    /// attempts to supply the other with unused allocation at all times").
    fn grant(&self) -> u64 {
        self.recv_floor + self.window
    }

    fn conn_id(&self) -> u64 {
        // Combine both incarnations (symmetrically, so the two ends agree)
        // so packets from a previous crash epoch of either party can never
        // be mistaken for this connection's.
        let a = self.incarnation.min(self.peer_incarnation.unwrap_or(0));
        let b = self.incarnation.max(self.peer_incarnation.unwrap_or(0));
        a ^ b.rotate_left(32) ^ (a.wrapping_add(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Feed an incoming packet.
    #[must_use]
    pub fn on_packet(&mut self, pkt: &Packet) -> Incoming {
        let mut out = Incoming::default();
        match (&pkt.msg, self.state) {
            (Message::Syn { incarnation, isn }, State::Closed | State::SynReceived) => {
                self.peer_incarnation = Some(*incarnation);
                self.recv_floor = *isn;
                self.state = State::SynReceived;
                out.replies.push(Packet {
                    conn: self.conn_id(),
                    seq: self.next_seq,
                    alloc: self.grant(),
                    log: 0,
                    msg: Message::SynAck {
                        incarnation: self.incarnation,
                        isn: self.next_seq,
                        ack: *isn,
                    },
                });
            }
            (
                Message::SynAck {
                    incarnation,
                    isn,
                    ack,
                },
                State::SynSent,
            ) => {
                if *ack == self.next_seq {
                    self.peer_incarnation = Some(*incarnation);
                    self.recv_floor = *isn;
                    self.peer_allocation = pkt.alloc;
                    self.state = State::Established;
                    self.next_seq = self.next_seq.saturating_add(1); // the SYN consumed a sequence number
                    out.replies.push(Packet {
                        conn: self.conn_id(),
                        seq: self.next_seq,
                        alloc: self.grant(),
                        log: 0,
                        msg: Message::HandshakeAck { ack: *isn },
                    });
                    self.next_seq = self.next_seq.saturating_add(1);
                }
            }
            (Message::HandshakeAck { ack }, State::SynReceived) => {
                if *ack == self.next_seq {
                    self.state = State::Established;
                    self.next_seq = self.next_seq.saturating_add(1); // the SYNACK consumed one
                    self.peer_allocation = pkt.alloc;
                    self.recv_floor += 1; // the SYN is consumed
                }
            }
            (_, State::Established) => {
                // Reject packets from a different (e.g. pre-crash)
                // connection: their conn id cannot match.
                if pkt.conn != self.conn_id() {
                    out.duplicate = true;
                    return out;
                }
                self.peer_allocation = self.peer_allocation.max(pkt.alloc);
                if pkt.seq <= self.recv_floor || self.recv_seen.contains(&pkt.seq) {
                    out.duplicate = true;
                    return out;
                }
                self.recv_seen.insert(pkt.seq);
                // Advance the contiguity floor past consecutive seqs.
                while self.recv_seen.remove(&(self.recv_floor + 1)) {
                    self.recv_floor += 1;
                }
                out.delivered = Some(pkt.msg.clone());
            }
            _ => {
                // Stray packet for a dead state; ignore.
                out.duplicate = true;
            }
        }
        out
    }
}

/// Drive both ends of a handshake to completion over a perfect in-test
/// channel; convenience for tests and examples.
#[must_use]
pub fn establish_pair(window: u64) -> (Connection, Connection) {
    let mut a = Connection::new(100, 1000, window);
    let mut b = Connection::new(200, 5000, window);
    let syn = a.connect();
    let r1 = b.on_packet(&syn);
    if let Some(synack) = r1.replies.first() {
        let r2 = a.on_packet(synack);
        if let Some(hsack) = r2.replies.first() {
            let _ = b.on_packet(hsack);
        }
    }
    assert!(a.is_established() && b.is_established());
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlog_types::{ClientId, Lsn};

    fn msg(lsn: u64) -> Message {
        Message::NewHighLsn {
            client: ClientId(1),
            lsn: Lsn(lsn),
        }
    }

    #[test]
    fn three_way_handshake() {
        let (a, b) = establish_pair(8);
        assert!(a.is_established());
        assert!(b.is_established());
        assert!(a.allocation() > 0);
        assert!(b.allocation() > 0);
    }

    #[test]
    fn data_flows_both_ways() {
        let (mut a, mut b) = establish_pair(8);
        let p = a.send(msg(1)).unwrap();
        let r = b.on_packet(&p);
        assert_eq!(r.delivered, Some(msg(1)));
        let p = b.send(msg(2)).unwrap();
        let r = a.on_packet(&p);
        assert_eq!(r.delivered, Some(msg(2)));
    }

    #[test]
    fn duplicates_filtered() {
        let (mut a, mut b) = establish_pair(8);
        let p = a.send(msg(1)).unwrap();
        assert_eq!(b.on_packet(&p).delivered, Some(msg(1)));
        let r = b.on_packet(&p);
        assert!(r.duplicate);
        assert_eq!(r.delivered, None);
    }

    #[test]
    fn reordered_packets_all_delivered_once() {
        let (mut a, mut b) = establish_pair(16);
        let p1 = a.send(msg(1)).unwrap();
        let p2 = a.send(msg(2)).unwrap();
        let p3 = a.send(msg(3)).unwrap();
        assert_eq!(b.on_packet(&p3).delivered, Some(msg(3)));
        assert_eq!(b.on_packet(&p1).delivered, Some(msg(1)));
        assert!(b.on_packet(&p3).duplicate);
        assert_eq!(b.on_packet(&p2).delivered, Some(msg(2)));
        assert!(b.on_packet(&p1).duplicate);
        assert!(b.on_packet(&p2).duplicate);
    }

    #[test]
    fn allocation_blocks_and_refills() {
        let (mut a, mut b) = establish_pair(3);
        // Drain the allocation.
        let mut sent = Vec::new();
        loop {
            match a.send(msg(sent.len() as u64)) {
                Ok(p) => sent.push(p),
                Err(SendError::AllocationExhausted { .. }) => break,
                Err(e) => panic!("{e:?}"),
            }
        }
        assert!(!sent.is_empty());
        // Deliver them; b's next packet carries a fresh allocation.
        for p in &sent {
            let _ = b.on_packet(p);
        }
        let refill = b.send(msg(99)).unwrap();
        let _ = a.on_packet(&refill);
        assert!(a.send(msg(100)).is_ok(), "allocation should have refilled");
    }

    #[test]
    fn pause_override_exceeds_allocation() {
        let (mut a, mut b) = establish_pair(1);
        while a.send(msg(0)).is_ok() {}
        let p = a.send_exceeding_allocation(msg(7)).unwrap();
        // The receiver still accepts it (it is not beyond its dup filter).
        let r = b.on_packet(&p);
        assert!(r.delivered.is_some() || r.duplicate);
    }

    #[test]
    fn cross_crash_duplicates_rejected() {
        let (mut a, mut b) = establish_pair(8);
        let old = a.send(msg(1)).unwrap();
        assert_eq!(b.on_packet(&old).delivered, Some(msg(1)));

        // b crashes and reconnects with a new incarnation.
        let mut b2 = Connection::new(201, 9000, 8);
        let syn = b2.connect();
        let mut a2 = Connection::new(101, 2000, 8);
        let r1 = a2.on_packet(&syn);
        let r2 = b2.on_packet(&r1.replies[0]);
        let _ = a2.on_packet(&r2.replies[0]);
        assert!(b2.is_established());

        // A delayed packet from the old connection must be rejected by the
        // new one: its conn id embeds the old incarnations.
        let stale = old;
        let r = b2.on_packet(&stale);
        assert!(r.duplicate);
        assert_eq!(r.delivered, None);
    }

    #[test]
    fn send_before_establish_fails() {
        let mut c = Connection::new(1, 1, 8);
        assert_eq!(c.send(msg(1)), Err(SendError::NotEstablished));
        let _ = c.connect();
        assert_eq!(c.send(msg(1)), Err(SendError::NotEstablished));
    }
}
