//! The specialized low-level log-server protocol of §4.2.
//!
//! The paper rejects layering the log service on "expensive general
//! purpose protocols": simple error-free operations must take a single
//! packet each way, multiple log records are packed per packet, writes are
//! **asynchronous messages** (`WriteLog`, `ForceLog`) acknowledged by
//! `NewHighLSN`, losses are detected by the *server* from LSN
//! discontinuities and reported promptly with `MissingInterval`, and only
//! infrequent operations (reads, interval lists, recovery copies) are
//! strict RPCs.
//!
//! This crate provides:
//!
//! * [`wire`] — the packet format: every Figure 4-1 message, CRC-framed,
//!   packed to a configurable packet size;
//! * [`conn`] — the Watson-style connection machinery the paper describes
//!   (three-way handshake, permanently unique sequence numbers,
//!   moving-window flow control with allocations, the pause-then-exceed
//!   deadlock escape), as a sans-I/O state machine;
//! * [`mem`] — an in-process datagram network with deterministic,
//!   seed-driven fault injection (loss, duplication, reordering, delay,
//!   partitions) used by tests and simulations;
//! * [`udp`] — the same endpoint interface over real `std::net` UDP
//!   sockets, demonstrating the protocol on an actual network;
//! * [`pool`] — the fixed-size buffer pool behind the zero-copy wire
//!   path: packets are encoded single-pass into pooled buffers
//!   ([`Packet::encode_into`](wire::Packet::encode_into)) and decoded
//!   with payload views borrowed from the receive buffer
//!   ([`Packet::decode_shared`](wire::Packet::decode_shared)).
//!
//! The paper also notes (§4.2, final paragraphs) that when records are
//! smaller than a packet, "the log sequence numbers themselves can be used
//! efficiently for duplicate detection and flow control", eliminating
//! connection establishment. The client/server crates use that LSN-based
//! mode for the logging stream, while [`conn`] realizes the general
//! mechanism and is exercised by its own tests and the UDP example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod mem;
pub mod pool;
pub mod udp;
pub mod wire;

pub use mem::{FaultPlan, MemEndpoint, MemNetwork, MemShardRx};
pub use pool::BufPool;
pub use wire::{Message, NodeAddr, Packet, Request, Response, MAX_PACKET_BYTES};

use std::io;
use std::time::Duration;

/// A datagram endpoint: unreliable, unordered, message-oriented.
///
/// Both the in-memory network and the UDP transport implement this; all
/// protocol logic above is transport-agnostic.
pub trait Endpoint: Send {
    /// This endpoint's address.
    fn local_addr(&self) -> NodeAddr;

    /// Send one datagram (best effort; may be silently dropped by the
    /// network).
    ///
    /// # Errors
    /// Only on local failures (unknown peer, socket error) — loss is not an
    /// error.
    fn send(&self, to: NodeAddr, packet: &Packet) -> io::Result<()>;

    /// Receive the next datagram, waiting up to `timeout`.
    ///
    /// # Errors
    /// Propagates socket errors; a timeout yields `Ok(None)`.
    fn recv(&self, timeout: Duration) -> io::Result<Option<(NodeAddr, Packet)>>;

    /// Send the same datagram to several destinations. Transports that
    /// can encode once and fan the bytes out (replication sends identical
    /// packets to every replica) override this; the default just loops.
    ///
    /// # Errors
    /// As [`Endpoint::send`]; the first local failure aborts the fan-out.
    fn send_many(&self, tos: &[NodeAddr], packet: &Packet) -> io::Result<()> {
        for &to in tos {
            self.send(to, packet)?;
        }
        Ok(())
    }
}

/// One shard's receive handle on a [`RoutedEndpoint`].
pub trait ShardRx: Send + 'static {
    /// Receive the next packet routed to this shard, waiting up to
    /// `timeout`. `Duration::ZERO` polls without blocking.
    ///
    /// # Errors
    /// Propagates transport failures; a timeout yields `Ok(None)`.
    fn recv(&mut self, timeout: Duration) -> io::Result<Option<(NodeAddr, Packet)>>;
}

/// An endpoint whose transport routes inbound frames to per-shard
/// receive queues *before* decode, from the wire header's log hint
/// ([`Packet::peek_route_hint`](wire::Packet::peek_route_hint)).
///
/// The shard supervisor skips its dispatcher thread on such endpoints:
/// the sending thread picks the destination queue, so a packet crosses
/// exactly one thread boundary on its way into a shard loop. Transports
/// without native routing (UDP) simply don't implement this and get the
/// dispatcher instead.
pub trait RoutedEndpoint: Endpoint {
    /// The per-shard receive handle type.
    type Rx: ShardRx;

    /// Split the receive side into `shards` routed queues (clamped to at
    /// least one). The endpoint's own [`Endpoint::recv`] yields nothing
    /// afterwards; replies still go out through it from any thread.
    fn shard_rx(&self, shards: usize) -> Vec<Self::Rx>;
}
