//! Deterministic in-process datagram network with fault injection.
//!
//! Tests and simulations run whole client/server clusters inside one
//! process; the network delivers encoded packets between endpoints and
//! injects faults — loss, duplication, reordering, partitions, downed
//! nodes — from a seeded RNG, so every failure schedule is reproducible.
//!
//! Every packet is round-tripped through the real wire encoding
//! ([`Packet::encode`] / [`Packet::decode`]), so the in-memory network
//! exercises exactly the bytes UDP would carry.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::wire::{NodeAddr, Packet, MAX_PACKET_BYTES};
use crate::Endpoint;

/// Fault-injection parameters. All probabilities are per-packet.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Probability a packet is silently dropped.
    pub loss: f64,
    /// Probability a packet is delivered twice.
    pub duplicate: f64,
    /// Probability a packet is held and delivered after its successor.
    pub reorder: f64,
    /// RNG seed; identical seeds give identical fault schedules.
    pub seed: u64,
}

impl FaultPlan {
    /// A perfectly reliable network.
    #[must_use]
    pub fn reliable() -> Self {
        FaultPlan {
            loss: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            seed: 0,
        }
    }

    /// A mildly misbehaving LAN (1% loss, 0.5% duplication, 2% reorder).
    #[must_use]
    pub fn flaky(seed: u64) -> Self {
        FaultPlan {
            loss: 0.01,
            duplicate: 0.005,
            reorder: 0.02,
            seed,
        }
    }

    /// A severely misbehaving network for stress tests.
    #[must_use]
    pub fn hostile(seed: u64) -> Self {
        FaultPlan {
            loss: 0.15,
            duplicate: 0.05,
            reorder: 0.10,
            seed,
        }
    }
}

/// Network-wide delivery counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets offered to the network.
    pub sent: u64,
    /// Packets actually enqueued for delivery (including duplicates).
    pub delivered: u64,
    /// Packets dropped by loss, partitions, or downed nodes.
    pub dropped: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Packets delivered out of order.
    pub reordered: u64,
    /// Total encoded bytes offered.
    pub bytes: u64,
}

struct Hub {
    queues: HashMap<NodeAddr, VecDeque<(NodeAddr, Vec<u8>)>>,
    /// Held packet per destination, released after the next send to it.
    held: HashMap<NodeAddr, (NodeAddr, Vec<u8>)>,
    partitions: HashSet<(NodeAddr, NodeAddr)>,
    down: HashSet<NodeAddr>,
    rng: StdRng,
    plan: FaultPlan,
    stats: NetStats,
}

/// A shared in-process network. Clone handles freely.
#[derive(Clone)]
pub struct MemNetwork {
    hub: Arc<(Mutex<Hub>, Condvar)>,
}

impl MemNetwork {
    /// Create a network with the given fault plan.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        MemNetwork {
            hub: Arc::new((
                Mutex::new(Hub {
                    queues: HashMap::new(),
                    held: HashMap::new(),
                    partitions: HashSet::new(),
                    down: HashSet::new(),
                    rng: StdRng::seed_from_u64(plan.seed),
                    plan,
                    stats: NetStats::default(),
                }),
                Condvar::new(),
            )),
        }
    }

    /// Register an endpoint at `addr` (replacing any previous queue).
    #[must_use]
    pub fn endpoint(&self, addr: NodeAddr) -> MemEndpoint {
        let (hub, _) = &*self.hub;
        hub.lock().queues.insert(addr, VecDeque::new());
        MemEndpoint {
            net: self.clone(),
            addr,
            obs: dlog_obs::Obs::off(),
        }
    }

    /// Sever both directions between `a` and `b`.
    pub fn partition(&self, a: NodeAddr, b: NodeAddr) {
        let (hub, _) = &*self.hub;
        let mut h = hub.lock();
        h.partitions.insert((a, b));
        h.partitions.insert((b, a));
    }

    /// Restore connectivity between `a` and `b`.
    pub fn heal(&self, a: NodeAddr, b: NodeAddr) {
        let (hub, _) = &*self.hub;
        let mut h = hub.lock();
        h.partitions.remove(&(a, b));
        h.partitions.remove(&(b, a));
    }

    /// Mark a node down (all its traffic is dropped) or back up.
    pub fn set_down(&self, addr: NodeAddr, down: bool) {
        let (hub, _) = &*self.hub;
        let mut h = hub.lock();
        if down {
            h.down.insert(addr);
            // A downed node loses anything in flight to it.
            if let Some(q) = h.queues.get_mut(&addr) {
                q.clear();
            }
        } else {
            h.down.remove(&addr);
        }
    }

    /// True if the node is currently marked down.
    #[must_use]
    pub fn is_down(&self, addr: NodeAddr) -> bool {
        let (hub, _) = &*self.hub;
        hub.lock().down.contains(&addr)
    }

    /// Delivery counters.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        let (hub, _) = &*self.hub;
        hub.lock().stats
    }

    fn send_impl(&self, from: NodeAddr, to: NodeAddr, packet: &Packet) -> io::Result<()> {
        let bytes = packet.encode().to_vec();
        if bytes.len() > MAX_PACKET_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "packet of {} bytes exceeds MTU {MAX_PACKET_BYTES}",
                    bytes.len()
                ),
            ));
        }
        let (hub, cv) = &*self.hub;
        let mut h = hub.lock();
        h.stats.sent += 1;
        h.stats.bytes += bytes.len() as u64;

        if h.down.contains(&from) || h.down.contains(&to) || h.partitions.contains(&(from, to)) {
            h.stats.dropped += 1;
            return Ok(());
        }
        if !h.queues.contains_key(&to) {
            h.stats.dropped += 1; // no such node: a LAN just loses it
            return Ok(());
        }
        let plan = h.plan;
        if h.rng.gen_bool(plan.loss) {
            h.stats.dropped += 1;
            return Ok(());
        }
        let duplicate = plan.duplicate > 0.0 && h.rng.gen_bool(plan.duplicate);
        let hold = plan.reorder > 0.0 && h.rng.gen_bool(plan.reorder);

        // Release a previously held packet *after* this one (reordering).
        let mut deliveries: Vec<(NodeAddr, Vec<u8>)> = Vec::with_capacity(3);
        if hold && !h.held.contains_key(&to) {
            h.held.insert(to, (from, bytes.clone()));
        } else {
            deliveries.push((from, bytes.clone()));
        }
        if let Some((hf, hb)) = h.held.remove(&to) {
            if !deliveries.is_empty() || !hold {
                h.stats.reordered += 1;
                deliveries.push((hf, hb));
            } else {
                h.held.insert(to, (hf, hb));
            }
        }
        if duplicate {
            h.stats.duplicated += 1;
            deliveries.push((from, bytes));
        }
        if !deliveries.is_empty() {
            h.stats.delivered += deliveries.len() as u64;
            if let Some(q) = h.queues.get_mut(&to) {
                for d in deliveries {
                    q.push_back(d);
                }
                cv.notify_all();
            }
        }
        Ok(())
    }

    fn recv_impl(
        &self,
        addr: NodeAddr,
        timeout: Duration,
    ) -> io::Result<Option<(NodeAddr, Packet)>> {
        let (hub, cv) = &*self.hub;
        let deadline = Instant::now() + timeout;
        let mut h = hub.lock();
        loop {
            if let Some(q) = h.queues.get_mut(&addr) {
                if let Some((from, bytes)) = q.pop_front() {
                    drop(h);
                    return match Packet::decode(&bytes) {
                        Ok(p) => Ok(Some((from, p))),
                        // A corrupt datagram is dropped, as a NIC would.
                        Err(_) => Ok(None),
                    };
                }
            } else {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    "endpoint unregistered",
                ));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            cv.wait_until(&mut h, deadline);
        }
    }
}

/// An endpoint on a [`MemNetwork`].
pub struct MemEndpoint {
    net: MemNetwork,
    addr: NodeAddr,
    obs: dlog_obs::Obs,
}

impl MemEndpoint {
    /// Attach an observability handle; subsequent sends emit
    /// `PacketSend` trace events and latency samples.
    pub fn set_obs(&mut self, obs: dlog_obs::Obs) {
        self.obs = obs;
    }
}

impl Endpoint for MemEndpoint {
    fn local_addr(&self) -> NodeAddr {
        self.addr
    }

    fn send(&self, to: NodeAddr, packet: &Packet) -> io::Result<()> {
        let span = self.obs.start();
        self.net.send_impl(self.addr, to, packet)?;
        self.obs
            .event(dlog_obs::Stage::PacketSend, packet.lsn_hint(), to.0);
        self.obs.sample_since(dlog_obs::Stage::PacketSend, span);
        Ok(())
    }

    fn recv(&self, timeout: Duration) -> io::Result<Option<(NodeAddr, Packet)>> {
        self.net.recv_impl(self.addr, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Message;
    use dlog_types::{ClientId, Lsn};

    fn ping(lsn: u64) -> Packet {
        Packet::bare(Message::NewHighLsn {
            client: ClientId(1),
            lsn: Lsn(lsn),
        })
    }

    #[test]
    fn reliable_delivery() {
        let net = MemNetwork::new(FaultPlan::reliable());
        let a = net.endpoint(NodeAddr(1));
        let b = net.endpoint(NodeAddr(2));
        a.send(NodeAddr(2), &ping(5)).unwrap();
        let (from, p) = b.recv(Duration::from_millis(100)).unwrap().unwrap();
        assert_eq!(from, NodeAddr(1));
        assert_eq!(p, ping(5));
        // Nothing else arrives.
        assert!(b.recv(Duration::from_millis(10)).unwrap().is_none());
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let mut outcomes = Vec::new();
        for _ in 0..2 {
            let net = MemNetwork::new(FaultPlan {
                loss: 0.5,
                duplicate: 0.0,
                reorder: 0.0,
                seed: 42,
            });
            let a = net.endpoint(NodeAddr(1));
            let b = net.endpoint(NodeAddr(2));
            let mut got = Vec::new();
            for i in 0..50 {
                a.send(NodeAddr(2), &ping(i)).unwrap();
            }
            while let Some((_, p)) = b.recv(Duration::from_millis(5)).unwrap() {
                if let Message::NewHighLsn { lsn, .. } = p.msg {
                    got.push(lsn.0);
                }
            }
            outcomes.push(got);
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert!(outcomes[0].len() < 50, "some packets must drop at 50% loss");
        assert!(!outcomes[0].is_empty(), "some packets must survive");
    }

    #[test]
    fn partition_blocks_both_ways() {
        let net = MemNetwork::new(FaultPlan::reliable());
        let a = net.endpoint(NodeAddr(1));
        let b = net.endpoint(NodeAddr(2));
        net.partition(NodeAddr(1), NodeAddr(2));
        a.send(NodeAddr(2), &ping(1)).unwrap();
        b.send(NodeAddr(1), &ping(2)).unwrap();
        assert!(b.recv(Duration::from_millis(10)).unwrap().is_none());
        assert!(a.recv(Duration::from_millis(10)).unwrap().is_none());
        net.heal(NodeAddr(1), NodeAddr(2));
        a.send(NodeAddr(2), &ping(3)).unwrap();
        assert!(b.recv(Duration::from_millis(100)).unwrap().is_some());
    }

    #[test]
    fn down_node_loses_traffic_and_queue() {
        let net = MemNetwork::new(FaultPlan::reliable());
        let a = net.endpoint(NodeAddr(1));
        let b = net.endpoint(NodeAddr(2));
        a.send(NodeAddr(2), &ping(1)).unwrap();
        net.set_down(NodeAddr(2), true);
        a.send(NodeAddr(2), &ping(2)).unwrap();
        net.set_down(NodeAddr(2), false);
        // Both the queued and the in-flight packet are gone.
        assert!(b.recv(Duration::from_millis(10)).unwrap().is_none());
        a.send(NodeAddr(2), &ping(3)).unwrap();
        let (_, p) = b.recv(Duration::from_millis(100)).unwrap().unwrap();
        assert_eq!(p, ping(3));
    }

    #[test]
    fn duplicates_and_reorders_happen() {
        let net = MemNetwork::new(FaultPlan {
            loss: 0.0,
            duplicate: 0.3,
            reorder: 0.3,
            seed: 7,
        });
        let a = net.endpoint(NodeAddr(1));
        let b = net.endpoint(NodeAddr(2));
        let n = 200;
        for i in 0..n {
            a.send(NodeAddr(2), &ping(i)).unwrap();
        }
        let mut got = Vec::new();
        while let Some((_, p)) = b.recv(Duration::from_millis(5)).unwrap() {
            if let Message::NewHighLsn { lsn, .. } = p.msg {
                got.push(lsn.0);
            }
        }
        assert!(got.len() as u64 > n, "duplicates should inflate the count");
        let sorted = {
            let mut s = got.clone();
            s.sort_unstable();
            s
        };
        assert_ne!(got, sorted, "reordering should scramble delivery order");
        let stats = net.stats();
        assert!(stats.duplicated > 0);
        assert!(stats.reordered > 0);
    }

    #[test]
    fn unknown_destination_is_dropped() {
        let net = MemNetwork::new(FaultPlan::reliable());
        let a = net.endpoint(NodeAddr(1));
        a.send(NodeAddr(99), &ping(1)).unwrap();
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn oversized_packet_rejected() {
        let net = MemNetwork::new(FaultPlan::reliable());
        let a = net.endpoint(NodeAddr(1));
        let _b = net.endpoint(NodeAddr(2));
        let big = Packet::bare(Message::WriteLog {
            client: ClientId(1),
            epoch: dlog_types::Epoch(1),
            records: vec![(
                Lsn(1),
                dlog_types::LogData::from(vec![0u8; MAX_PACKET_BYTES]),
            )],
        });
        assert!(a.send(NodeAddr(2), &big).is_err());
    }
}
