//! Deterministic in-process datagram network with fault injection.
//!
//! Tests and simulations run whole client/server clusters inside one
//! process; the network delivers encoded packets between endpoints and
//! injects faults — loss, duplication, reordering, partitions, downed
//! nodes — from a seeded RNG, so every failure schedule is reproducible.
//!
//! Every packet is round-tripped through the real wire encoding
//! ([`Packet::encode_into`] / [`Packet::decode_shared`]), so the
//! in-memory network exercises exactly the bytes UDP would carry — and
//! the same pooled, zero-copy buffer discipline: packets are encoded into
//! pooled buffers, queues pass `Arc` handles around (duplicates are
//! refcount bumps, not copies), and receivers decode payload views
//! straight out of the shared buffer.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::pool::BufPool;
use crate::wire::{NodeAddr, Packet, MAX_PACKET_BYTES};
use crate::Endpoint;

/// Fault-injection parameters. All probabilities are per-packet.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Probability a packet is silently dropped.
    pub loss: f64,
    /// Probability a packet is delivered twice.
    pub duplicate: f64,
    /// Probability a packet is held and delivered after its successor.
    pub reorder: f64,
    /// RNG seed; identical seeds give identical fault schedules.
    pub seed: u64,
}

impl FaultPlan {
    /// A perfectly reliable network.
    #[must_use]
    pub fn reliable() -> Self {
        FaultPlan {
            loss: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            seed: 0,
        }
    }

    /// A mildly misbehaving LAN (1% loss, 0.5% duplication, 2% reorder).
    #[must_use]
    pub fn flaky(seed: u64) -> Self {
        FaultPlan {
            loss: 0.01,
            duplicate: 0.005,
            reorder: 0.02,
            seed,
        }
    }

    /// A severely misbehaving network for stress tests.
    #[must_use]
    pub fn hostile(seed: u64) -> Self {
        FaultPlan {
            loss: 0.15,
            duplicate: 0.05,
            reorder: 0.10,
            seed,
        }
    }
}

/// Network-wide delivery counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets offered to the network.
    pub sent: u64,
    /// Packets actually enqueued for delivery (including duplicates).
    pub delivered: u64,
    /// Packets dropped by loss, partitions, or downed nodes.
    pub dropped: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Packets delivered out of order.
    pub reordered: u64,
    /// Total encoded bytes offered.
    pub bytes: u64,
    /// Packets steered to one shard queue by the wire header's log hint
    /// (only shard-routed endpoints count here; zero-hint control frames
    /// are broadcast to every shard and counted under `delivered` only).
    pub routed: u64,
}

/// One endpoint's delivery queue, with its own lock and condvar so a
/// send wakes exactly the destination thread — never the whole cluster.
/// On a loaded box the difference between `notify_one` on the target and
/// a global `notify_all` is the difference between one context switch
/// per packet and N.
struct EndpointQueue {
    inbox: Mutex<Inbox>,
    cv: Condvar,
}

impl EndpointQueue {
    fn new() -> Arc<EndpointQueue> {
        Arc::new(EndpointQueue {
            inbox: Mutex::new(Inbox::default()),
            cv: Condvar::new(),
        })
    }

    /// Push one frame and wake a sleeping receiver (skipping the notify
    /// syscall entirely when the receiver is running or spin-polling).
    fn push(&self, from: NodeAddr, bytes: Arc<Vec<u8>>) {
        let mut b = self.inbox.lock();
        b.q.push_back((from, bytes));
        let wake = b.sleepers > 0;
        drop(b);
        if wake {
            self.cv.notify_one();
        }
    }

    /// Drop everything in flight (node marked down).
    fn clear(&self) {
        self.inbox.lock().q.clear();
    }
}

/// Where an endpoint's inbound frames land: one queue, or one queue per
/// shard with the pick made from the encoded header's log hint at
/// delivery time. Routed delivery is the transport-level twin of the
/// shard supervisor's dispatcher — in-process the *sending* thread is
/// the dispatcher, so a routed frame reaches its shard loop with no
/// extra thread hop and no second queue transfer.
enum Route {
    Single(Arc<EndpointQueue>),
    Sharded(Arc<[Arc<EndpointQueue>]>),
}

/// The queue plus a count of receivers blocked on the condvar, guarded
/// by the same mutex: a sender that sees `sleepers == 0` skips the
/// notify syscall entirely (the receiver is running, or spin-polling,
/// and will find the packet itself), and the shared lock makes the
/// check race-free — a receiver increments before releasing the lock to
/// sleep, so a sender can never observe stale zero.
#[derive(Default)]
struct Inbox {
    q: VecDeque<(NodeAddr, Arc<Vec<u8>>)>,
    sleepers: u32,
}

/// Yields a receiver burns on an empty queue before paying the futex
/// sleep. On an oversubscribed box the sender is usually runnable:
/// `yield_now` lets it push and the next poll finds the packet, saving
/// the sleep/wake syscall pair on both sides of every round trip.
const SPIN_YIELDS: u32 = 64;

/// Read-mostly cluster topology: which endpoints exist, which links are
/// severed, which nodes are down. Senders and receivers take the read
/// lock; only control-plane calls (partition/heal/set_down/endpoint)
/// write, so concurrent traffic to different endpoints never serializes
/// here.
struct Topology {
    queues: HashMap<NodeAddr, Route>,
    partitions: HashSet<(NodeAddr, NodeAddr)>,
    down: HashSet<NodeAddr>,
}

/// Seeded fault schedule state. Only locked when the plan can actually
/// inject faults — a reliable plan's send path never touches it.
struct FaultState {
    rng: StdRng,
    /// Held packet per destination, released after the next send to it.
    held: HashMap<NodeAddr, (NodeAddr, Arc<Vec<u8>>)>,
}

#[derive(Default)]
struct AtomicNetStats {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    bytes: AtomicU64,
    routed: AtomicU64,
}

struct Inner {
    topo: RwLock<Topology>,
    faults: Mutex<FaultState>,
    stats: AtomicNetStats,
    plan: FaultPlan,
}

/// A shared in-process network. Clone handles freely.
#[derive(Clone)]
pub struct MemNetwork {
    inner: Arc<Inner>,
}

impl MemNetwork {
    /// Create a network with the given fault plan.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        MemNetwork {
            inner: Arc::new(Inner {
                topo: RwLock::new(Topology {
                    queues: HashMap::new(),
                    partitions: HashSet::new(),
                    down: HashSet::new(),
                }),
                faults: Mutex::new(FaultState {
                    rng: StdRng::seed_from_u64(plan.seed),
                    held: HashMap::new(),
                }),
                stats: AtomicNetStats::default(),
                plan,
            }),
        }
    }

    /// Register an endpoint at `addr` (replacing any previous queue).
    #[must_use]
    pub fn endpoint(&self, addr: NodeAddr) -> MemEndpoint {
        self.inner
            .topo
            .write()
            .queues
            .insert(addr, Route::Single(EndpointQueue::new()));
        MemEndpoint {
            net: self.clone(),
            addr,
            obs: dlog_obs::Obs::off(),
            pool: BufPool::for_packets(),
        }
    }

    /// Sever both directions between `a` and `b`.
    pub fn partition(&self, a: NodeAddr, b: NodeAddr) {
        let mut t = self.inner.topo.write();
        t.partitions.insert((a, b));
        t.partitions.insert((b, a));
    }

    /// Restore connectivity between `a` and `b`.
    pub fn heal(&self, a: NodeAddr, b: NodeAddr) {
        let mut t = self.inner.topo.write();
        t.partitions.remove(&(a, b));
        t.partitions.remove(&(b, a));
    }

    /// Mark a node down (all its traffic is dropped) or back up.
    pub fn set_down(&self, addr: NodeAddr, down: bool) {
        let mut t = self.inner.topo.write();
        if down {
            t.down.insert(addr);
            // A downed node loses anything in flight to it — every shard
            // queue of a routed endpoint included.
            match t.queues.get(&addr) {
                Some(Route::Single(ep)) => ep.clear(),
                Some(Route::Sharded(eps)) => {
                    for ep in eps.iter() {
                        ep.clear();
                    }
                }
                None => {}
            }
        } else {
            t.down.remove(&addr);
        }
    }

    /// True if the node is currently marked down.
    #[must_use]
    pub fn is_down(&self, addr: NodeAddr) -> bool {
        self.inner.topo.read().down.contains(&addr)
    }

    /// Delivery counters.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        let s = &self.inner.stats;
        NetStats {
            sent: s.sent.load(Ordering::Relaxed),
            delivered: s.delivered.load(Ordering::Relaxed),
            dropped: s.dropped.load(Ordering::Relaxed),
            duplicated: s.duplicated.load(Ordering::Relaxed),
            reordered: s.reordered.load(Ordering::Relaxed),
            bytes: s.bytes.load(Ordering::Relaxed),
            routed: s.routed.load(Ordering::Relaxed),
        }
    }

    fn send_impl(
        &self,
        pool: &BufPool,
        from: NodeAddr,
        to: NodeAddr,
        packet: &Packet,
    ) -> io::Result<()> {
        self.send_many_impl(pool, from, std::slice::from_ref(&to), packet)
    }

    /// Fan one packet out to several destinations with a single encode:
    /// replication sends the same bytes to every target, so the encode +
    /// CRC pass is paid once and each delivery is an `Arc` refcount bump
    /// onto the same pooled buffer.
    fn send_many_impl(
        &self,
        pool: &BufPool,
        from: NodeAddr,
        tos: &[NodeAddr],
        packet: &Packet,
    ) -> io::Result<()> {
        // Encode single-pass into a buffer from the *sender's own* pool:
        // per-endpoint pools keep checkout order deterministic and spare
        // the hot path a network-global lock. The queue entries below are
        // Arc handles onto this one buffer — a duplicate delivery is a
        // refcount bump, not a second copy of the bytes. The pool parks
        // our handle immediately and reissues the buffer once the receiver
        // (and any payload views it decoded) let go.
        let mut bytes = pool.checkout();
        packet.encode_into(Arc::make_mut(&mut bytes));
        if bytes.len() > MAX_PACKET_BYTES {
            let len = bytes.len();
            pool.give_back(bytes);
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("packet of {len} bytes exceeds MTU {MAX_PACKET_BYTES}"),
            ));
        }
        let stats = &self.inner.stats;
        let plan = self.inner.plan;
        let faulty = plan.loss > 0.0 || plan.duplicate > 0.0 || plan.reorder > 0.0;
        let topo = self.inner.topo.read();
        for &to in tos {
            stats.sent.fetch_add(1, Ordering::Relaxed);
            stats.bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
            self.deliver(&topo, from, to, &bytes, faulty, plan);
        }
        drop(topo);
        pool.give_back(bytes);
        Ok(())
    }

    /// Decide one destination's fate and enqueue accordingly. Stats are
    /// atomics; `topo` is the caller's read guard (held across a whole
    /// fan-out so a concurrent `set_down` can't split it).
    fn deliver(
        &self,
        topo: &Topology,
        from: NodeAddr,
        to: NodeAddr,
        bytes: &Arc<Vec<u8>>,
        faulty: bool,
        plan: FaultPlan,
    ) {
        let stats = &self.inner.stats;
        'fate: {
            if topo.down.contains(&from)
                || topo.down.contains(&to)
                || topo.partitions.contains(&(from, to))
            {
                stats.dropped.fetch_add(1, Ordering::Relaxed);
                break 'fate;
            }
            let Some(route) = topo.queues.get(&to) else {
                stats.dropped.fetch_add(1, Ordering::Relaxed); // a LAN just loses it
                break 'fate;
            };

            if !faulty {
                // Reliable fast path: no RNG draw, no fault-state lock —
                // concurrent senders only share this read guard and the
                // destination's own queue lock(s).
                self.enqueue_routed(route, from, bytes);
                break 'fate;
            }

            // The fault-state lock serializes fate decisions AND delivery
            // into the destination queue, so the delivery order of a
            // seeded schedule stays exactly the fate order.
            let mut f = self.inner.faults.lock();
            if f.rng.gen_bool(plan.loss) {
                stats.dropped.fetch_add(1, Ordering::Relaxed);
                break 'fate;
            }
            let duplicate = plan.duplicate > 0.0 && f.rng.gen_bool(plan.duplicate);
            let hold = plan.reorder > 0.0 && f.rng.gen_bool(plan.reorder);

            // Release a previously held packet *after* this one (reordering).
            let mut deliveries: Vec<(NodeAddr, Arc<Vec<u8>>)> = Vec::with_capacity(3);
            if hold && !f.held.contains_key(&to) {
                f.held.insert(to, (from, Arc::clone(bytes)));
            } else {
                deliveries.push((from, Arc::clone(bytes)));
            }
            if let Some((hf, hb)) = f.held.remove(&to) {
                if !deliveries.is_empty() || !hold {
                    stats.reordered.fetch_add(1, Ordering::Relaxed);
                    deliveries.push((hf, hb));
                } else {
                    f.held.insert(to, (hf, hb));
                }
            }
            if duplicate {
                stats.duplicated.fetch_add(1, Ordering::Relaxed);
                deliveries.push((from, Arc::clone(bytes)));
            }
            for (f, b) in deliveries {
                self.enqueue_routed(route, f, &b);
            }
        }
    }

    /// Enqueue one frame at its resolved destination: straight into a
    /// single queue, or — for a shard-routed endpoint — into the queue
    /// the header's log hint hashes to, with zero-hint control frames
    /// fanned to every shard (the same broadcast rule the supervisor's
    /// dispatcher applies to `route_key() == None` traffic).
    fn enqueue_routed(&self, route: &Route, from: NodeAddr, bytes: &Arc<Vec<u8>>) {
        let stats = &self.inner.stats;
        match route {
            Route::Single(ep) => {
                stats.delivered.fetch_add(1, Ordering::Relaxed);
                ep.push(from, Arc::clone(bytes));
            }
            Route::Sharded(eps) => match Packet::peek_route_hint(bytes) {
                Some(id) => {
                    if let Some(ep) = eps.get(id.shard(eps.len())) {
                        stats.delivered.fetch_add(1, Ordering::Relaxed);
                        stats.routed.fetch_add(1, Ordering::Relaxed);
                        ep.push(from, Arc::clone(bytes));
                    }
                }
                None => {
                    stats
                        .delivered
                        .fetch_add(eps.len() as u64, Ordering::Relaxed);
                    for ep in eps.iter() {
                        ep.push(from, Arc::clone(bytes));
                    }
                }
            },
        }
    }

    fn recv_impl(
        &self,
        addr: NodeAddr,
        timeout: Duration,
    ) -> io::Result<Option<(NodeAddr, Packet)>> {
        // Resolve our queue under the topology read lock, then wait on the
        // queue's own lock/condvar — senders to *other* endpoints never
        // touch it.
        let ep = match self.inner.topo.read().queues.get(&addr) {
            Some(Route::Single(ep)) => Arc::clone(ep),
            Some(Route::Sharded(_)) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "endpoint is shard-routed; receive on its shard handles",
                ));
            }
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    "endpoint unregistered",
                ));
            }
        };
        Ok(recv_from(&ep, timeout))
    }
}

/// Pop one frame from `ep` within `timeout` and decode it zero-copy:
/// payloads are views into the pooled buffer; dropping the handle leaves
/// the buffer parked in the pool until those views are released. Shared
/// by single-queue receive and per-shard receive handles. A corrupt
/// datagram is dropped (`None`), as a NIC would.
fn recv_from(ep: &EndpointQueue, timeout: Duration) -> Option<(NodeAddr, Packet)> {
    let deadline = Instant::now() + timeout;
    let mut spins = 0u32;
    loop {
        {
            let mut b = ep.inbox.lock();
            loop {
                if let Some((from, bytes)) = b.q.pop_front() {
                    drop(b);
                    return match Packet::decode_shared(&bytes) {
                        Ok(p) => Some((from, p)),
                        Err(_) => None,
                    };
                }
                if Instant::now() >= deadline {
                    return None;
                }
                if spins < SPIN_YIELDS {
                    // Cooperative poll: release the lock and cede the
                    // CPU below so the sender can run, then re-check —
                    // cheaper than a futex sleep when the packet is
                    // about to arrive anyway.
                    break;
                }
                b.sleepers += 1;
                ep.cv.wait_until(&mut b, deadline);
                b.sleepers -= 1;
            }
        }
        spins += 1;
        std::thread::yield_now();
    }
}

/// An endpoint on a [`MemNetwork`].
pub struct MemEndpoint {
    net: MemNetwork,
    addr: NodeAddr,
    obs: dlog_obs::Obs,
    /// Send-side wire buffers; endpoint-local so checkout never contends
    /// with other nodes' traffic (and stays deterministic under replay).
    pool: BufPool,
}

impl MemEndpoint {
    /// Attach an observability handle; subsequent sends emit
    /// `PacketSend` trace events and latency samples.
    pub fn set_obs(&mut self, obs: dlog_obs::Obs) {
        self.obs = obs;
    }
}

impl Endpoint for MemEndpoint {
    fn local_addr(&self) -> NodeAddr {
        self.addr
    }

    fn send(&self, to: NodeAddr, packet: &Packet) -> io::Result<()> {
        let span = self.obs.start();
        self.net.send_impl(&self.pool, self.addr, to, packet)?;
        self.obs
            .event(dlog_obs::Stage::PacketSend, packet.lsn_hint(), to.0);
        self.obs.sample_since(dlog_obs::Stage::PacketSend, span);
        Ok(())
    }

    fn recv(&self, timeout: Duration) -> io::Result<Option<(NodeAddr, Packet)>> {
        self.net.recv_impl(self.addr, timeout)
    }

    fn send_many(&self, tos: &[NodeAddr], packet: &Packet) -> io::Result<()> {
        let span = self.obs.start();
        self.net
            .send_many_impl(&self.pool, self.addr, tos, packet)?;
        for &to in tos {
            self.obs
                .event(dlog_obs::Stage::PacketSend, packet.lsn_hint(), to.0);
        }
        self.obs.sample_since(dlog_obs::Stage::PacketSend, span);
        Ok(())
    }
}

/// One shard's receive handle on a routed [`MemEndpoint`]: a cached
/// reference to that shard's queue, so receiving never takes the
/// topology lock. Handles go stale when the node reboots (a fresh
/// endpoint re-registers its queues), matching a socket closed on crash.
pub struct MemShardRx {
    queue: Arc<EndpointQueue>,
}

impl crate::ShardRx for MemShardRx {
    fn recv(&mut self, timeout: Duration) -> io::Result<Option<(NodeAddr, Packet)>> {
        Ok(recv_from(&self.queue, timeout))
    }
}

impl crate::RoutedEndpoint for MemEndpoint {
    type Rx = MemShardRx;

    fn shard_rx(&self, shards: usize) -> Vec<MemShardRx> {
        let queues: Vec<Arc<EndpointQueue>> =
            (0..shards.max(1)).map(|_| EndpointQueue::new()).collect();
        let rxs = queues
            .iter()
            .map(|q| MemShardRx {
                queue: Arc::clone(q),
            })
            .collect();
        self.net
            .inner
            .topo
            .write()
            .queues
            .insert(self.addr, Route::Sharded(queues.into()));
        rxs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Message;
    use dlog_types::{ClientId, Lsn};

    fn ping(lsn: u64) -> Packet {
        Packet::bare(Message::NewHighLsn {
            client: ClientId(1),
            lsn: Lsn(lsn),
        })
    }

    #[test]
    fn reliable_delivery() {
        let net = MemNetwork::new(FaultPlan::reliable());
        let a = net.endpoint(NodeAddr(1));
        let b = net.endpoint(NodeAddr(2));
        a.send(NodeAddr(2), &ping(5)).unwrap();
        let (from, p) = b.recv(Duration::from_millis(100)).unwrap().unwrap();
        assert_eq!(from, NodeAddr(1));
        assert_eq!(p, ping(5));
        // Nothing else arrives.
        assert!(b.recv(Duration::from_millis(10)).unwrap().is_none());
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let mut outcomes = Vec::new();
        for _ in 0..2 {
            let net = MemNetwork::new(FaultPlan {
                loss: 0.5,
                duplicate: 0.0,
                reorder: 0.0,
                seed: 42,
            });
            let a = net.endpoint(NodeAddr(1));
            let b = net.endpoint(NodeAddr(2));
            let mut got = Vec::new();
            for i in 0..50 {
                a.send(NodeAddr(2), &ping(i)).unwrap();
            }
            while let Some((_, p)) = b.recv(Duration::from_millis(5)).unwrap() {
                if let Message::NewHighLsn { lsn, .. } = p.msg {
                    got.push(lsn.0);
                }
            }
            outcomes.push(got);
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert!(outcomes[0].len() < 50, "some packets must drop at 50% loss");
        assert!(!outcomes[0].is_empty(), "some packets must survive");
    }

    #[test]
    fn partition_blocks_both_ways() {
        let net = MemNetwork::new(FaultPlan::reliable());
        let a = net.endpoint(NodeAddr(1));
        let b = net.endpoint(NodeAddr(2));
        net.partition(NodeAddr(1), NodeAddr(2));
        a.send(NodeAddr(2), &ping(1)).unwrap();
        b.send(NodeAddr(1), &ping(2)).unwrap();
        assert!(b.recv(Duration::from_millis(10)).unwrap().is_none());
        assert!(a.recv(Duration::from_millis(10)).unwrap().is_none());
        net.heal(NodeAddr(1), NodeAddr(2));
        a.send(NodeAddr(2), &ping(3)).unwrap();
        assert!(b.recv(Duration::from_millis(100)).unwrap().is_some());
    }

    #[test]
    fn down_node_loses_traffic_and_queue() {
        let net = MemNetwork::new(FaultPlan::reliable());
        let a = net.endpoint(NodeAddr(1));
        let b = net.endpoint(NodeAddr(2));
        a.send(NodeAddr(2), &ping(1)).unwrap();
        net.set_down(NodeAddr(2), true);
        a.send(NodeAddr(2), &ping(2)).unwrap();
        net.set_down(NodeAddr(2), false);
        // Both the queued and the in-flight packet are gone.
        assert!(b.recv(Duration::from_millis(10)).unwrap().is_none());
        a.send(NodeAddr(2), &ping(3)).unwrap();
        let (_, p) = b.recv(Duration::from_millis(100)).unwrap().unwrap();
        assert_eq!(p, ping(3));
    }

    #[test]
    fn duplicates_and_reorders_happen() {
        let net = MemNetwork::new(FaultPlan {
            loss: 0.0,
            duplicate: 0.3,
            reorder: 0.3,
            seed: 7,
        });
        let a = net.endpoint(NodeAddr(1));
        let b = net.endpoint(NodeAddr(2));
        let n = 200;
        for i in 0..n {
            a.send(NodeAddr(2), &ping(i)).unwrap();
        }
        let mut got = Vec::new();
        while let Some((_, p)) = b.recv(Duration::from_millis(5)).unwrap() {
            if let Message::NewHighLsn { lsn, .. } = p.msg {
                got.push(lsn.0);
            }
        }
        assert!(got.len() as u64 > n, "duplicates should inflate the count");
        let sorted = {
            let mut s = got.clone();
            s.sort_unstable();
            s
        };
        assert_ne!(got, sorted, "reordering should scramble delivery order");
        let stats = net.stats();
        assert!(stats.duplicated > 0);
        assert!(stats.reordered > 0);
    }

    #[test]
    fn unknown_destination_is_dropped() {
        let net = MemNetwork::new(FaultPlan::reliable());
        let a = net.endpoint(NodeAddr(1));
        a.send(NodeAddr(99), &ping(1)).unwrap();
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn oversized_packet_rejected() {
        let net = MemNetwork::new(FaultPlan::reliable());
        let a = net.endpoint(NodeAddr(1));
        let _b = net.endpoint(NodeAddr(2));
        let big = Packet::bare(Message::WriteLog {
            client: ClientId(1),
            epoch: dlog_types::Epoch(1),
            records: vec![(
                Lsn(1),
                dlog_types::LogData::from(vec![0u8; MAX_PACKET_BYTES]),
            )],
        });
        assert!(a.send(NodeAddr(2), &big).is_err());
    }
}
