//! Property test for the §4.2 connection machine: over a channel that
//! loses, duplicates, and reorders packets, every delivered message is
//! delivered exactly once and duplicates never reach the application.

use std::collections::VecDeque;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dlog_net::conn::establish_pair;
use dlog_net::wire::{Message, Packet};
use dlog_types::{ClientId, Lsn};

fn msg(i: u64) -> Message {
    Message::NewHighLsn {
        client: ClientId(1),
        lsn: Lsn(i),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn exactly_once_delivery_under_chaos(
        seed in any::<u64>(),
        count in 1usize..60,
        loss in 0.0f64..0.4,
        dup in 0.0f64..0.4,
    ) {
        let (mut a, mut b) = establish_pair(1024);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut channel: VecDeque<Packet> = VecDeque::new();

        // Sender emits each message up to 3 times (the retry behaviour of
        // the async protocol); the channel chaos-processes them.
        for i in 0..count as u64 {
            let original = a.send(msg(i)).expect("window large enough");
            for attempt in 0..3 {
                let _ = attempt;
                if rng.gen_bool(loss) {
                    continue;
                }
                channel.push_back(original.clone());
                if rng.gen_bool(dup) {
                    channel.push_back(original.clone());
                }
                // Occasional reorder: swap with the previous entry.
                let n = channel.len();
                if n >= 2 && rng.gen_bool(0.3) {
                    channel.swap(n - 1, n - 2);
                }
            }
        }

        let mut delivered: Vec<u64> = Vec::new();
        while let Some(p) = channel.pop_front() {
            let r = b.on_packet(&p);
            if let Some(Message::NewHighLsn { lsn, .. }) = r.delivered {
                delivered.push(lsn.0);
            }
        }
        // Exactly-once: no value twice.
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), before, "duplicate delivery: {:?}", delivered);
        // Completeness: any message whose 3 attempts were not all lost
        // must arrive. (We only assert the weaker sanity bound — at least
        // everything arrives when loss = 0.)
        if loss == 0.0 {
            prop_assert_eq!(sorted.len(), count);
        }
    }
}
