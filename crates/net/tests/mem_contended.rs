//! Contended stress tests for the in-memory network's sleeper-count
//! condvar protocol (`Inbox.sleepers` under `EndpointQueue.inbox`).
//!
//! The send path skips the notify syscall whenever it observes
//! `sleepers == 0`; the receive path increments the count *before*
//! releasing the lock to sleep. The correctness claim is that this
//! lock-coupled handoff can never lose a wakeup: a sender either sees
//! the sleeper (and notifies) or the receiver has not slept yet (and
//! will find the packet on its next locked poll). These tests drive
//! the transition hard from both sides — many senders racing one
//! blocked receiver, bursts separated by idle gaps that force the
//! futex sleep, and two receivers draining one queue — and fail on a
//! bounded wall-clock budget instead of hanging if a wakeup is lost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use dlog_net::mem::{FaultPlan, MemNetwork};
use dlog_net::wire::Message;
use dlog_net::{Endpoint, NodeAddr, Packet};
use dlog_types::{ClientId, Lsn};

fn ping(lsn: u64) -> Packet {
    Packet::bare(Message::NewHighLsn {
        client: ClientId(1),
        lsn: Lsn(lsn),
    })
}

fn lsn_of(p: &Packet) -> u64 {
    match &p.msg {
        Message::NewHighLsn { lsn, .. } => lsn.0,
        other => panic!("unexpected message: {other:?}"),
    }
}

/// Many senders race one receiver. The reliable plan drops and
/// duplicates nothing, so every packet must arrive exactly once; the
/// LSN checksum catches loss and duplication together. The receiver
/// outruns the senders between bursts, so it repeatedly exhausts its
/// spin budget and enters the condvar sleep exactly when senders are
/// deciding whether to notify — the race under test.
#[test]
fn many_senders_never_lose_a_wakeup() {
    const SENDERS: u64 = 8;
    const PER_SENDER: u64 = 500;
    let deadline = Instant::now() + Duration::from_secs(60);

    let net = MemNetwork::new(FaultPlan::reliable());
    let rx = net.endpoint(NodeAddr(0));
    let mut received = 0u64;
    let mut checksum = 0u64;
    std::thread::scope(|s| {
        for t in 0..SENDERS {
            let tx = net.endpoint(NodeAddr(t + 1));
            s.spawn(move || {
                for i in 0..PER_SENDER {
                    tx.send(NodeAddr(0), &ping(t * PER_SENDER + i + 1)).unwrap();
                    if i % 64 == 0 {
                        // Let the receiver drain and go back to sleep so
                        // later sends hit a parked receiver, not a warm
                        // spin loop.
                        std::thread::yield_now();
                    }
                }
            });
        }
        while received < SENDERS * PER_SENDER {
            assert!(
                Instant::now() < deadline,
                "lost wakeup or deadlock: {received} of {} packets after 60s",
                SENDERS * PER_SENDER
            );
            if let Some((_, p)) = rx.recv(Duration::from_millis(200)).unwrap() {
                received += 1;
                checksum += lsn_of(&p);
            }
        }
    });
    let n = SENDERS * PER_SENDER;
    assert_eq!(received, n);
    assert_eq!(checksum, n * (n + 1) / 2, "a packet was lost or duplicated");
    let stats = net.stats();
    assert_eq!(stats.sent, n);
    assert_eq!(stats.delivered, n);
    assert_eq!(stats.dropped, 0);
}

/// Bursts separated by idle gaps: every gap is long enough for the
/// receiver to burn its spin yields and park on the condvar, so each
/// burst's first send must take the `sleepers > 0` notify branch. A
/// lost wakeup would strand the receiver until its timeout; the tight
/// per-burst budget turns that into a failure instead of a slow pass.
#[test]
fn sleep_wake_transitions_deliver_every_burst() {
    const BURSTS: u64 = 40;
    const BURST_LEN: u64 = 5;

    let net = MemNetwork::new(FaultPlan::reliable());
    let rx = net.endpoint(NodeAddr(0));
    let tx = net.endpoint(NodeAddr(1));
    std::thread::scope(|s| {
        s.spawn(move || {
            for b in 0..BURSTS {
                for i in 0..BURST_LEN {
                    tx.send(NodeAddr(0), &ping(b * BURST_LEN + i + 1)).unwrap();
                }
                // Idle long enough for the receiver to finish the burst,
                // spin dry, and park before the next burst begins.
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let mut next = 1u64;
        let deadline = Instant::now() + Duration::from_secs(30);
        while next <= BURSTS * BURST_LEN {
            assert!(
                Instant::now() < deadline,
                "receiver stranded at packet {next}: wakeup lost after a sleep transition"
            );
            if let Some((_, p)) = rx.recv(Duration::from_millis(100)).unwrap() {
                // One sender, reliable plan: arrival order is send order.
                assert_eq!(lsn_of(&p), next, "burst delivery out of order");
                next += 1;
            }
        }
    });
}

/// Two receiver threads share one endpoint queue, so `notify_one` must
/// pick a parked receiver that actually drains the packet. Both
/// receivers sleeping while a packet sits queued would be a lost
/// wakeup; the budget bounds the test instead of hanging it.
#[test]
fn competing_receivers_drain_the_queue() {
    const TOTAL: u64 = 2_000;

    let net = MemNetwork::new(FaultPlan::reliable());
    let rx = net.endpoint(NodeAddr(0));
    let received = AtomicU64::new(0);
    let checksum = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..2 {
            let rx = &rx;
            let received = &received;
            let checksum = &checksum;
            s.spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(60);
                while received.load(Ordering::Relaxed) < TOTAL {
                    assert!(
                        Instant::now() < deadline,
                        "competing receivers stalled: lost wakeup with a non-empty queue"
                    );
                    if let Some((_, p)) = rx.recv(Duration::from_millis(50)).unwrap() {
                        checksum.fetch_add(lsn_of(&p), Ordering::Relaxed);
                        received.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        let tx = net.endpoint(NodeAddr(1));
        for i in 1..=TOTAL {
            tx.send(NodeAddr(0), &ping(i)).unwrap();
            if i % 128 == 0 {
                std::thread::yield_now();
            }
        }
    });
    assert_eq!(received.load(Ordering::Relaxed), TOTAL);
    assert_eq!(
        checksum.load(Ordering::Relaxed),
        TOTAL * (TOTAL + 1) / 2,
        "a packet was lost or duplicated across the two receivers"
    );
}
