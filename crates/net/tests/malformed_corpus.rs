//! Malformed-frame corpus: every file under `tests/corpus/` is a
//! hand-minimized broken wire frame that must decode to a clean
//! [`DecodeError`] — no panic, no unbounded allocation — through both
//! `Packet::decode` and `Packet::decode_shared`.
//!
//! Each frame is the smallest mutation of valid traffic that reaches one
//! specific failure arm of the decoder: header checks (magic, reserved,
//! CRC, length), unknown kind tags at all three dispatch levels, count
//! fields that overrun or exceed the absurdity cap, length prefixes that
//! run past the buffer, truncations at every fixed-width reader, and
//! semantic rejects (interval bounds). The corpus is committed; the
//! `bless_corpus` generator (`--ignored`) rewrites it deterministically.

use std::path::PathBuf;
use std::sync::Arc;

use dlog_net::wire::{Message, Packet};
use dlog_types::{ClientId, Epoch, LogData, Lsn};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Decode attempts on a malformed frame may allocate error strings and a
/// few capped `Vec::with_capacity` scratch vectors, but never more — the
/// decoder's absurdity caps are what this bound locks in.
const MAX_ALLOCS_PER_DECODE: u64 = 64;

#[test]
fn corpus_is_rejected_cleanly_and_cheaply() {
    let dir = corpus_dir();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus missing — run the bless_corpus test with --ignored")
        .map(|e| e.expect("read_dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "bin"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 30,
        "corpus shrank to {} frames (expected at least 30)",
        entries.len()
    );
    for path in entries {
        let bytes = std::fs::read(&path).expect("read corpus frame");
        let name = path.file_name().unwrap_or_default().to_string_lossy();

        let before = dlog_obs::gauge::thread_allocs();
        let owned = Packet::decode(&bytes);
        let owned_allocs = dlog_obs::gauge::thread_allocs() - before;
        let err = owned.expect_err(&format!("{name}: owned decode accepted a malformed frame"));
        assert!(
            !err.to_string().is_empty(),
            "{name}: error carries no detail"
        );
        assert!(
            owned_allocs <= MAX_ALLOCS_PER_DECODE,
            "{name}: owned decode allocated {owned_allocs} times (cap {MAX_ALLOCS_PER_DECODE})"
        );

        let shared = Arc::new(bytes);
        let before = dlog_obs::gauge::thread_allocs();
        let borrowed = Packet::decode_shared(&shared);
        let shared_allocs = dlog_obs::gauge::thread_allocs() - before;
        borrowed.expect_err(&format!("{name}: shared decode accepted a malformed frame"));
        assert!(
            shared_allocs <= MAX_ALLOCS_PER_DECODE,
            "{name}: shared decode allocated {shared_allocs} times (cap {MAX_ALLOCS_PER_DECODE})"
        );
    }
}

/// Valid frames from the same seeds still decode — guards against the
/// corpus test passing vacuously because decode rejects everything.
#[test]
fn seed_frames_still_decode() {
    for p in seeds() {
        let bytes = p.encode();
        assert_eq!(Packet::decode(&bytes).expect("valid frame rejected"), p);
    }
}

// ---------------------------------------------------------------------------
// Corpus generator. Deterministic; run with
// `cargo test -p dlog-net --test malformed_corpus -- --ignored bless` to
// regenerate the committed files after a wire-format change.

const MAGIC: u16 = 0xD10C;

fn crc32(data: &[u8]) -> u32 {
    let mut state = 0xFFFF_FFFFu32;
    for &b in data {
        state ^= u32::from(b);
        for _ in 0..8 {
            state = if state & 1 != 0 {
                (state >> 1) ^ 0xEDB8_8320
            } else {
                state >> 1
            };
        }
    }
    state ^ 0xFFFF_FFFF
}

/// Frame an arbitrary (possibly malformed) body with a *correct* header,
/// so the mutation under test is reached instead of tripping the CRC.
fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 8);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Body prefix shared by every message: conn/seq/alloc/log, all zero.
fn envelope(msg_bytes: &[u8]) -> Vec<u8> {
    let mut body = vec![0u8; 32];
    body.extend_from_slice(msg_bytes);
    body
}

fn seeds() -> Vec<Packet> {
    vec![
        Packet::bare(Message::WriteLog {
            client: ClientId(7),
            epoch: Epoch(3),
            records: vec![(Lsn(41), LogData::from(&b"seed-record"[..]))],
        }),
        Packet::bare(Message::Syn {
            incarnation: 9,
            isn: 100,
        }),
    ]
}

#[allow(clippy::too_many_lines)]
fn corpus() -> Vec<(&'static str, Vec<u8>)> {
    let valid = seeds()[0].encode();

    let mut frames: Vec<(&'static str, Vec<u8>)> = Vec::new();

    // --- Header-level rejects ---------------------------------------------
    frames.push(("01-empty", Vec::new()));
    frames.push(("02-one-byte", vec![0x0C]));
    frames.push(("03-seven-bytes", valid[..7].to_vec()));
    let mut f = valid.clone();
    f[0] ^= 0xFF; // magic
    frames.push(("04-bad-magic", f));
    let mut f = valid.clone();
    f[2] = 1; // reserved word must be zero
    frames.push(("05-reserved-nonzero", f));
    let mut f = valid.clone();
    f[4..8].fill(0); // crc field zeroed
    frames.push(("06-crc-zeroed", f));
    let mut f = valid.clone();
    let last = f.len() - 1;
    f[last] ^= 0x01; // body bit flip without fixing the crc
    frames.push(("07-body-bitflip", f));
    frames.push(("08-header-only", frame(&[])));
    // 24 bytes was a full envelope before the `log` routing field; now it
    // is one u64 short — pins the widened header boundary.
    frames.push(("09-envelope-short", frame(&[0u8; 24])));

    // --- Message-level rejects --------------------------------------------
    frames.push(("10-no-kind-tag", frame(&[0u8; 32])));
    frames.push(("11-kind-zero", frame(&envelope(&[0]))));
    frames.push(("12-kind-eleven", frame(&envelope(&[11]))));
    frames.push(("13-kind-255", frame(&envelope(&[255]))));
    // K_SYN (1) with only `incarnation`, no `isn`.
    let mut m = vec![1u8];
    m.extend_from_slice(&9u64.to_le_bytes());
    frames.push(("14-syn-truncated", frame(&envelope(&m))));

    // WriteLog (kind 4): client u64, epoch u64, count u32, records.
    let writelog_hdr = |count: u32| {
        let mut m = vec![4u8];
        m.extend_from_slice(&7u64.to_le_bytes());
        m.extend_from_slice(&3u64.to_le_bytes());
        m.extend_from_slice(&count.to_le_bytes());
        m
    };
    let mut m = vec![4u8];
    m.extend_from_slice(&7u64.to_le_bytes());
    frames.push(("15-writelog-no-epoch", frame(&envelope(&m))));
    frames.push((
        "16-writelog-count-absurd",
        frame(&envelope(&writelog_hdr(u32::MAX))),
    ));
    // Count claims two records; only one follows.
    let mut m = writelog_hdr(2);
    m.extend_from_slice(&41u64.to_le_bytes());
    m.extend_from_slice(&3u32.to_le_bytes());
    m.extend_from_slice(b"abc");
    frames.push(("17-writelog-count-overrun", frame(&envelope(&m))));
    // Data length prefix runs past the buffer.
    let mut m = writelog_hdr(1);
    m.extend_from_slice(&41u64.to_le_bytes());
    m.extend_from_slice(&0xFFFFu32.to_le_bytes());
    m.extend_from_slice(b"abc");
    frames.push(("18-writelog-data-overrun", frame(&envelope(&m))));
    // Valid message plus trailing garbage.
    let mut body = vec![0u8; 32];
    let mut m = writelog_hdr(1);
    m.extend_from_slice(&41u64.to_le_bytes());
    m.extend_from_slice(&3u32.to_le_bytes());
    m.extend_from_slice(b"abc");
    body.extend_from_slice(&m);
    body.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
    frames.push(("19-writelog-trailing-bytes", frame(&body)));
    // ForceLog (kind 5) with a u32::MAX data length.
    let mut m = vec![5u8];
    m.extend_from_slice(&7u64.to_le_bytes());
    m.extend_from_slice(&3u64.to_le_bytes());
    m.extend_from_slice(&1u32.to_le_bytes());
    m.extend_from_slice(&41u64.to_le_bytes());
    m.extend_from_slice(&u32::MAX.to_le_bytes());
    frames.push(("20-forcelog-data-len-max", frame(&envelope(&m))));

    // --- Request-level rejects (kind 9 = Request, id u64, then tag) -------
    let request = |tag_and_rest: &[u8]| {
        let mut m = vec![9u8];
        m.extend_from_slice(&77u64.to_le_bytes());
        m.extend_from_slice(tag_and_rest);
        frame(&envelope(&m))
    };
    frames.push(("21-request-tag-zero", request(&[0])));
    frames.push(("22-request-tag-255", request(&[255])));
    let mut m = vec![9u8];
    m.extend_from_slice(&77u32.to_le_bytes()); // id cut in half
    frames.push(("23-request-id-truncated", frame(&envelope(&m))));
    // CopyLog (tag 4): client, epoch, record count.
    let mut m = vec![4u8];
    m.extend_from_slice(&7u64.to_le_bytes());
    m.extend_from_slice(&3u64.to_le_bytes());
    m.extend_from_slice(&u32::MAX.to_le_bytes());
    frames.push(("24-copylog-count-absurd", request(&m)));
    let mut m = vec![4u8];
    m.extend_from_slice(&7u64.to_le_bytes());
    m.extend_from_slice(&3u64.to_le_bytes());
    m.extend_from_slice(&1u32.to_le_bytes());
    m.extend_from_slice(&41u64.to_le_bytes());
    m.extend_from_slice(&3u32.to_le_bytes()); // epoch cut short
    frames.push(("25-copylog-record-truncated", request(&m)));
    // ReadLogForward (tag 2) missing max_records.
    let mut m = vec![2u8];
    m.extend_from_slice(&7u64.to_le_bytes());
    m.extend_from_slice(&41u64.to_le_bytes());
    frames.push(("26-readfwd-no-max", request(&m)));

    // --- Response-level rejects (kind 10 = Response, id u64, then tag) ----
    let response = |tag_and_rest: &[u8]| {
        let mut m = vec![10u8];
        m.extend_from_slice(&77u64.to_le_bytes());
        m.extend_from_slice(tag_and_rest);
        frame(&envelope(&m))
    };
    frames.push(("27-response-tag-zero", response(&[0])));
    frames.push(("28-response-tag-255", response(&[255])));
    // Err (tag 4): code u16, detail length overruns the buffer.
    let mut m = vec![4u8];
    m.extend_from_slice(&2u16.to_le_bytes());
    m.extend_from_slice(&100u32.to_le_bytes());
    m.extend_from_slice(b"abc");
    frames.push(("29-err-detail-overrun", response(&m)));
    // Status (tag 6) with 16 of its 17 counters.
    let mut m = vec![6u8];
    for i in 0..16u64 {
        m.extend_from_slice(&i.to_le_bytes());
    }
    frames.push(("30-status-truncated", response(&m)));
    // Stats (tag 7): six gauges, then a stage count with no stages.
    let mut m = vec![7u8];
    for _ in 0..6 {
        m.extend_from_slice(&5u64.to_le_bytes());
    }
    m.push(3); // claims three stages, none follow
    frames.push(("31-stats-stage-overrun", response(&m)));
    // Stats with one stage claiming 500 buckets and none present.
    let mut m = vec![7u8];
    for _ in 0..6 {
        m.extend_from_slice(&5u64.to_le_bytes());
    }
    m.push(1);
    m.push(0); // stage id
    m.extend_from_slice(&1u64.to_le_bytes());
    m.extend_from_slice(&1u64.to_le_bytes());
    m.extend_from_slice(&500u16.to_le_bytes());
    frames.push(("32-stats-bucket-overrun", response(&m)));
    // Intervals (tag 1): lo > hi.
    let interval = |epoch: u64, lo: u64, hi: u64| {
        let mut m = vec![1u8];
        m.extend_from_slice(&1u32.to_le_bytes());
        m.extend_from_slice(&epoch.to_le_bytes());
        m.extend_from_slice(&lo.to_le_bytes());
        m.extend_from_slice(&hi.to_le_bytes());
        m
    };
    frames.push(("33-interval-lo-above-hi", response(&interval(1, 50, 10))));
    frames.push(("34-interval-lo-zero", response(&interval(1, 0, 10))));
    let mut m = vec![1u8];
    m.extend_from_slice(&u32::MAX.to_le_bytes());
    frames.push(("35-interval-count-absurd", response(&m)));

    frames
}

/// Regenerate `tests/corpus/` (run explicitly with `--ignored`).
#[test]
#[ignore = "corpus generator; run manually after a wire-format change"]
fn bless_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (name, bytes) in corpus() {
        std::fs::write(dir.join(format!("{name}.bin")), &bytes).expect("write corpus frame");
    }
}
