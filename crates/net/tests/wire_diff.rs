//! Differential wire-format battery: the zero-copy single-pass encoder
//! (`Packet::encode_into`) against an independent reference encoder.
//!
//! The reference below re-implements the *legacy* two-buffer scheme the
//! crate used before the zero-copy rewrite — build the body in one
//! `BytesMut`, then prepend a header around it — sharing **no code** with
//! `dlog_net::wire` (its own CRC, its own writers). Any divergence in
//! framing, field order, endianness, truncation caps, or CRC between the
//! two paths shows up as a byte mismatch on some generated message.
//!
//! Three properties, over arbitrary `Message`s:
//!   1. reference encoding == `encode_into` output, byte for byte;
//!   2. `decode(encode(m)) == m` (and `decode_shared` agrees);
//!   3. `encoded_len()` predicts the exact length, before encoding.

use bytes::{BufMut, BytesMut};
use proptest::prelude::*;

use dlog_net::wire::{pack_batches, Message, Packet, Request, Response, StageStats};
use dlog_types::{ClientId, Epoch, Interval, IntervalList, LogData, LogRecord, Lsn};

// ---------------------------------------------------------------------------
// Reference encoder (legacy two-buffer layout; independent of dlog_net).

const MAGIC: u16 = 0xD10C;

fn ref_crc32(data: &[u8]) -> u32 {
    let mut state = 0xFFFF_FFFFu32;
    for &b in data {
        state ^= u32::from(b);
        for _ in 0..8 {
            state = if state & 1 != 0 {
                (state >> 1) ^ 0xEDB8_8320
            } else {
                state >> 1
            };
        }
    }
    state ^ 0xFFFF_FFFF
}

fn ref_encode(p: &Packet) -> Vec<u8> {
    let mut body = BytesMut::with_capacity(256);
    body.put_u64_le(p.conn);
    body.put_u64_le(p.seq);
    body.put_u64_le(p.alloc);
    body.put_u64_le(p.log);
    ref_message(&p.msg, &mut body);

    let mut out = BytesMut::with_capacity(body.len() + 8);
    out.put_u16_le(MAGIC);
    out.put_u16_le(0); // reserved
    out.put_u32_le(ref_crc32(&body));
    out.extend_from_slice(&body);
    out.to_vec()
}

fn ref_data(out: &mut BytesMut, d: &LogData) {
    out.put_u32_le(d.len() as u32);
    out.put_slice(d.as_bytes());
}

fn ref_lsn_batch(out: &mut BytesMut, records: &[(Lsn, LogData)]) {
    out.put_u32_le(records.len() as u32);
    for (lsn, data) in records {
        out.put_u64_le(lsn.0);
        ref_data(out, data);
    }
}

fn ref_records(out: &mut BytesMut, records: &[LogRecord]) {
    out.put_u32_le(records.len() as u32);
    for rec in records {
        out.put_u64_le(rec.lsn.0);
        out.put_u64_le(rec.epoch.0);
        out.put_u8(u8::from(rec.present));
        ref_data(out, &rec.data);
    }
}

fn ref_intervals(out: &mut BytesMut, list: &IntervalList) {
    out.put_u32_le(list.len() as u32);
    for iv in list {
        out.put_u64_le(iv.epoch.0);
        out.put_u64_le(iv.lo.0);
        out.put_u64_le(iv.hi.0);
    }
}

fn ref_message(msg: &Message, out: &mut BytesMut) {
    match msg {
        Message::Syn { incarnation, isn } => {
            out.put_u8(1);
            out.put_u64_le(*incarnation);
            out.put_u64_le(*isn);
        }
        Message::SynAck {
            incarnation,
            isn,
            ack,
        } => {
            out.put_u8(2);
            out.put_u64_le(*incarnation);
            out.put_u64_le(*isn);
            out.put_u64_le(*ack);
        }
        Message::HandshakeAck { ack } => {
            out.put_u8(3);
            out.put_u64_le(*ack);
        }
        Message::WriteLog {
            client,
            epoch,
            records,
        } => {
            out.put_u8(4);
            out.put_u64_le(client.0);
            out.put_u64_le(epoch.0);
            ref_lsn_batch(out, records);
        }
        Message::ForceLog {
            client,
            epoch,
            records,
        } => {
            out.put_u8(5);
            out.put_u64_le(client.0);
            out.put_u64_le(epoch.0);
            ref_lsn_batch(out, records);
        }
        Message::NewInterval {
            client,
            epoch,
            starting_lsn,
        } => {
            out.put_u8(6);
            out.put_u64_le(client.0);
            out.put_u64_le(epoch.0);
            out.put_u64_le(starting_lsn.0);
        }
        Message::NewHighLsn { client, lsn } => {
            out.put_u8(7);
            out.put_u64_le(client.0);
            out.put_u64_le(lsn.0);
        }
        Message::MissingInterval { client, lo, hi } => {
            out.put_u8(8);
            out.put_u64_le(client.0);
            out.put_u64_le(lo.0);
            out.put_u64_le(hi.0);
        }
        Message::Request { id, body } => {
            out.put_u8(9);
            out.put_u64_le(*id);
            ref_request(body, out);
        }
        Message::Response { id, body } => {
            out.put_u8(10);
            out.put_u64_le(*id);
            ref_response(body, out);
        }
    }
}

fn ref_request(body: &Request, out: &mut BytesMut) {
    match body {
        Request::IntervalList { client } => {
            out.put_u8(1);
            out.put_u64_le(client.0);
        }
        Request::ReadLogForward {
            client,
            lsn,
            max_records,
        } => {
            out.put_u8(2);
            out.put_u64_le(client.0);
            out.put_u64_le(lsn.0);
            out.put_u32_le(*max_records);
        }
        Request::ReadLogBackward {
            client,
            lsn,
            max_records,
        } => {
            out.put_u8(3);
            out.put_u64_le(client.0);
            out.put_u64_le(lsn.0);
            out.put_u32_le(*max_records);
        }
        Request::CopyLog {
            client,
            epoch,
            records,
        } => {
            out.put_u8(4);
            out.put_u64_le(client.0);
            out.put_u64_le(epoch.0);
            ref_records(out, records);
        }
        Request::InstallCopies { client, epoch } => {
            out.put_u8(5);
            out.put_u64_le(client.0);
            out.put_u64_le(epoch.0);
        }
        Request::GenRead { generator } => {
            out.put_u8(6);
            out.put_u64_le(*generator);
        }
        Request::GenWrite { generator, value } => {
            out.put_u8(7);
            out.put_u64_le(*generator);
            out.put_u64_le(*value);
        }
        Request::Status => out.put_u8(8),
        Request::Stats => out.put_u8(9),
    }
}

fn ref_response(body: &Response, out: &mut BytesMut) {
    match body {
        Response::Intervals { intervals } => {
            out.put_u8(1);
            ref_intervals(out, intervals);
        }
        Response::Records { records } => {
            out.put_u8(2);
            ref_records(out, records);
        }
        Response::Ok => out.put_u8(3),
        Response::Err { code, detail } => {
            out.put_u8(4);
            out.put_u16_le(*code);
            out.put_u32_le(detail.len() as u32);
            out.put_slice(detail.as_bytes());
        }
        Response::GenValue { value } => {
            out.put_u8(5);
            out.put_u64_le(*value);
        }
        Response::Status {
            records_stored,
            duplicates_ignored,
            naks_sent,
            writes_shed,
            rpcs,
            forces_acked,
            clients,
            on_disk_bytes,
            tracks_flushed,
            archived_bytes,
            pending_upload_bytes,
            last_manifest_lsn,
            upload_retries,
            coalesced_forces,
            group_commits,
            shard,
            shards,
        } => {
            out.put_u8(6);
            for v in [
                records_stored,
                duplicates_ignored,
                naks_sent,
                writes_shed,
                rpcs,
                forces_acked,
                clients,
                on_disk_bytes,
                tracks_flushed,
                archived_bytes,
                pending_upload_bytes,
                last_manifest_lsn,
                upload_retries,
                coalesced_forces,
                group_commits,
                shard,
                shards,
            ] {
                out.put_u64_le(*v);
            }
        }
        Response::Stats {
            stages,
            trace_events,
            trace_dropped,
            ingest_allocs,
            ingest_records,
            shard,
            shards,
        } => {
            out.put_u8(7);
            out.put_u64_le(*trace_events);
            out.put_u64_le(*trace_dropped);
            out.put_u64_le(*ingest_allocs);
            out.put_u64_le(*ingest_records);
            out.put_u64_le(*shard);
            out.put_u64_le(*shards);
            out.put_u8(stages.len().min(u8::MAX as usize) as u8);
            for s in stages.iter().take(u8::MAX as usize) {
                out.put_u8(s.stage);
                out.put_u64_le(s.count);
                out.put_u64_le(s.max_ns);
                out.put_u16_le(s.buckets.len().min(u16::MAX as usize) as u16);
                for (bucket, count) in s.buckets.iter().take(u16::MAX as usize) {
                    out.put_u8(*bucket);
                    out.put_u64_le(*count);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Message generators (mirroring wire_props.rs, kept local so this test
// stays self-contained).

fn arb_data() -> impl Strategy<Value = LogData> {
    proptest::collection::vec(any::<u8>(), 0..300).prop_map(LogData::from)
}

fn arb_record() -> impl Strategy<Value = LogRecord> {
    (1u64..1000, 1u64..20, any::<bool>(), arb_data()).prop_map(|(lsn, epoch, present, data)| {
        if present {
            LogRecord::present(Lsn(lsn), Epoch(epoch), data)
        } else {
            LogRecord::not_present(Lsn(lsn), Epoch(epoch))
        }
    })
}

fn arb_batch() -> impl Strategy<Value = Vec<(Lsn, LogData)>> {
    proptest::collection::vec((1u64..10_000, arb_data()), 0..8)
        .prop_map(|v| v.into_iter().map(|(l, d)| (Lsn(l), d)).collect())
}

fn arb_interval_list() -> impl Strategy<Value = IntervalList> {
    proptest::collection::vec((1u64..5, 1u64..500, 0u64..40), 0..6).prop_map(|triples| {
        let mut list = IntervalList::new();
        let mut lo = 1u64;
        let mut epoch = 1u64;
        for (de, dlo, span) in triples {
            epoch += de;
            lo += dlo;
            let hi = lo + span;
            let _ = list.push(Interval::new(Epoch(epoch), Lsn(lo), Lsn(hi)));
            lo = hi;
        }
        list
    })
}

fn arb_request() -> impl Strategy<Value = Request> {
    let client = (1u64..50).prop_map(ClientId);
    prop_oneof![
        client
            .clone()
            .prop_map(|client| Request::IntervalList { client }),
        (client.clone(), 1u64..10_000, 1u32..200).prop_map(|(client, l, m)| {
            Request::ReadLogForward {
                client,
                lsn: Lsn(l),
                max_records: m,
            }
        }),
        (client.clone(), 1u64..10_000, 1u32..200).prop_map(|(client, l, m)| {
            Request::ReadLogBackward {
                client,
                lsn: Lsn(l),
                max_records: m,
            }
        }),
        (
            client.clone(),
            1u64..20,
            proptest::collection::vec(arb_record(), 0..5)
        )
            .prop_map(|(client, e, records)| Request::CopyLog {
                client,
                epoch: Epoch(e),
                records
            }),
        (client, 1u64..20).prop_map(|(client, e)| Request::InstallCopies {
            client,
            epoch: Epoch(e)
        }),
        (1u64..50).prop_map(|g| Request::GenRead { generator: g }),
        (1u64..50, 1u64..10_000).prop_map(|(g, v)| Request::GenWrite {
            generator: g,
            value: v
        }),
        Just(Request::Status),
        Just(Request::Stats),
    ]
}

fn arb_stage_stats() -> impl Strategy<Value = StageStats> {
    (
        0u8..9,
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec((0u8..64, any::<u64>()), 0..6),
    )
        .prop_map(|(stage, count, max_ns, buckets)| StageStats {
            stage,
            count,
            max_ns,
            buckets,
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        arb_interval_list().prop_map(|intervals| Response::Intervals { intervals }),
        proptest::collection::vec(arb_record(), 0..5)
            .prop_map(|records| Response::Records { records }),
        Just(Response::Ok),
        (1u16..10, "[a-zA-Z0-9 :_-]{0,40}")
            .prop_map(|(code, detail)| Response::Err { code, detail }),
        any::<u64>().prop_map(|value| Response::GenValue { value }),
        proptest::collection::vec(any::<u64>(), 17).prop_map(|v| Response::Status {
            records_stored: v[0],
            duplicates_ignored: v[1],
            naks_sent: v[2],
            writes_shed: v[3],
            rpcs: v[4],
            forces_acked: v[5],
            clients: v[6],
            on_disk_bytes: v[7],
            tracks_flushed: v[8],
            archived_bytes: v[9],
            pending_upload_bytes: v[10],
            last_manifest_lsn: v[11],
            upload_retries: v[12],
            coalesced_forces: v[13],
            group_commits: v[14],
            shard: v[15],
            shards: v[16],
        }),
        (
            proptest::collection::vec(arb_stage_stats(), 0..7),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(
                |(
                    stages,
                    trace_events,
                    trace_dropped,
                    ingest_allocs,
                    ingest_records,
                    shard,
                    shards,
                )| {
                    Response::Stats {
                        stages,
                        trace_events,
                        trace_dropped,
                        ingest_allocs,
                        ingest_records,
                        shard,
                        shards,
                    }
                },
            ),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    let client = (1u64..50).prop_map(ClientId);
    prop_oneof![
        (any::<u64>(), any::<u64>())
            .prop_map(|(incarnation, isn)| Message::Syn { incarnation, isn }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(incarnation, isn, ack)| {
            Message::SynAck {
                incarnation,
                isn,
                ack,
            }
        }),
        any::<u64>().prop_map(|ack| Message::HandshakeAck { ack }),
        (client.clone(), 1u64..20, arb_batch()).prop_map(|(client, e, records)| {
            Message::WriteLog {
                client,
                epoch: Epoch(e),
                records,
            }
        }),
        (client.clone(), 1u64..20, arb_batch()).prop_map(|(client, e, records)| {
            Message::ForceLog {
                client,
                epoch: Epoch(e),
                records,
            }
        }),
        (client.clone(), 1u64..20, 1u64..10_000).prop_map(|(client, e, l)| {
            Message::NewInterval {
                client,
                epoch: Epoch(e),
                starting_lsn: Lsn(l),
            }
        }),
        (client.clone(), 1u64..10_000).prop_map(|(client, l)| Message::NewHighLsn {
            client,
            lsn: Lsn(l)
        }),
        (client, 1u64..10_000, 0u64..500).prop_map(|(client, lo, span)| {
            Message::MissingInterval {
                client,
                lo: Lsn(lo),
                hi: Lsn(lo + span),
            }
        }),
        (any::<u64>(), arb_request()).prop_map(|(id, body)| Message::Request { id, body }),
        (any::<u64>(), arb_response()).prop_map(|(id, body)| Message::Response { id, body }),
    ]
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        arb_message(),
    )
        .prop_map(|(conn, seq, alloc, log, msg)| Packet {
            conn,
            seq,
            alloc,
            log,
            msg,
        })
}

// ---------------------------------------------------------------------------
// The differential properties.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The single-pass zero-copy encoder and the independent two-buffer
    /// reference produce identical bytes for every message.
    #[test]
    fn encode_into_matches_reference(p in arb_packet()) {
        let reference = ref_encode(&p);
        let mut single_pass = Vec::new();
        p.encode_into(&mut single_pass);
        prop_assert_eq!(&reference, &single_pass);
        // And the owned-wrapper path is the same bytes again.
        prop_assert_eq!(&reference, &p.encode());
    }

    /// Round trip through both decode paths reproduces the message.
    #[test]
    fn decode_roundtrips(p in arb_packet()) {
        let bytes = p.encode();
        let owned = Packet::decode(&bytes).expect("decode");
        prop_assert_eq!(&owned, &p);
        let shared = std::sync::Arc::new(bytes);
        let borrowed = Packet::decode_shared(&shared).expect("decode_shared");
        prop_assert_eq!(&borrowed, &p);
    }

    /// `encoded_len` predicts the exact output length without encoding.
    #[test]
    fn encoded_len_is_exact(p in arb_packet()) {
        let mut out = Vec::new();
        p.encode_into(&mut out);
        prop_assert_eq!(out.len(), p.encoded_len());
    }

    /// Batches packed for the wire re-encode byte-identically through the
    /// reference too (exercises shared, non-zero-offset payload views).
    #[test]
    fn packed_batches_stay_differential(records in proptest::collection::vec((1u64..10_000, arb_data()), 0..40)) {
        let records: Vec<(Lsn, LogData)> = records.into_iter().map(|(l, d)| (Lsn(l), d)).collect();
        for batch in pack_batches(&records) {
            let p = Packet::bare(Message::WriteLog {
                client: ClientId(3),
                epoch: Epoch(2),
                records: batch,
            });
            let mut single_pass = Vec::new();
            p.encode_into(&mut single_pass);
            prop_assert_eq!(ref_encode(&p), single_pass);
        }
    }
}
