//! Property tests for the wire format: arbitrary messages survive
//! encode/decode, corruption never yields a wrong packet (it fails), and
//! batch packing always respects the packet size.

use proptest::prelude::*;

use dlog_net::wire::{
    pack_batches, Message, Packet, Request, Response, StageStats, MAX_PACKET_BYTES,
};
use dlog_types::{ClientId, Epoch, Interval, IntervalList, LogData, LogRecord, Lsn};

fn arb_data() -> impl Strategy<Value = LogData> {
    proptest::collection::vec(any::<u8>(), 0..300).prop_map(LogData::from)
}

fn arb_record() -> impl Strategy<Value = LogRecord> {
    (1u64..1000, 1u64..100, any::<bool>(), arb_data()).prop_map(|(lsn, epoch, present, data)| {
        LogRecord {
            lsn: Lsn(lsn),
            epoch: Epoch(epoch),
            present,
            data: if present { data } else { LogData::empty() },
        }
    })
}

fn arb_lsn_batch() -> impl Strategy<Value = Vec<(Lsn, LogData)>> {
    proptest::collection::vec((1u64..10_000, arb_data()), 0..8)
        .prop_map(|v| v.into_iter().map(|(l, d)| (Lsn(l), d)).collect())
}

fn arb_interval_list() -> impl Strategy<Value = IntervalList> {
    proptest::collection::vec((1u64..6, 1u64..8), 0..5).prop_map(|steps| {
        let mut list = IntervalList::new();
        let mut epoch = 0u64;
        let mut lo = 1u64;
        for (de, len) in steps {
            epoch += de;
            let hi = lo + len;
            list.push(Interval::new(Epoch(epoch), Lsn(lo), Lsn(hi)))
                .unwrap();
            lo = hi + 2;
        }
        list
    })
}

fn arb_request() -> impl Strategy<Value = Request> {
    let client = (1u64..50).prop_map(ClientId);
    prop_oneof![
        client
            .clone()
            .prop_map(|c| Request::IntervalList { client: c }),
        (client.clone(), 1u64..9999, 1u32..512).prop_map(|(c, l, m)| Request::ReadLogForward {
            client: c,
            lsn: Lsn(l),
            max_records: m
        }),
        (client.clone(), 1u64..9999, 1u32..512).prop_map(|(c, l, m)| Request::ReadLogBackward {
            client: c,
            lsn: Lsn(l),
            max_records: m
        }),
        (
            client.clone(),
            1u64..100,
            proptest::collection::vec(arb_record(), 0..5)
        )
            .prop_map(|(c, e, records)| Request::CopyLog {
                client: c,
                epoch: Epoch(e),
                records
            }),
        (client, 1u64..100).prop_map(|(c, e)| Request::InstallCopies {
            client: c,
            epoch: Epoch(e)
        }),
        (1u64..50).prop_map(|g| Request::GenRead { generator: g }),
        (1u64..50, 1u64..10_000).prop_map(|(g, v)| Request::GenWrite {
            generator: g,
            value: v
        }),
        Just(Request::Status),
        Just(Request::Stats),
    ]
}

fn arb_stage_stats() -> impl Strategy<Value = StageStats> {
    (
        0u8..7,
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec((0u8..64, any::<u64>()), 0..6),
    )
        .prop_map(|(stage, count, max_ns, buckets)| StageStats {
            stage,
            count,
            max_ns,
            buckets,
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        arb_interval_list().prop_map(|intervals| Response::Intervals { intervals }),
        proptest::collection::vec(arb_record(), 0..6)
            .prop_map(|records| Response::Records { records }),
        Just(Response::Ok),
        (0u16..10, "[a-z ]{0,40}").prop_map(|(code, detail)| Response::Err { code, detail }),
        (0u64..u64::MAX).prop_map(|value| Response::GenValue { value }),
        proptest::collection::vec(any::<u64>(), 17).prop_map(|v| Response::Status {
            records_stored: v[0],
            duplicates_ignored: v[1],
            naks_sent: v[2],
            writes_shed: v[3],
            rpcs: v[4],
            forces_acked: v[5],
            clients: v[6],
            on_disk_bytes: v[7],
            tracks_flushed: v[8],
            archived_bytes: v[9],
            pending_upload_bytes: v[10],
            last_manifest_lsn: v[11],
            upload_retries: v[12],
            coalesced_forces: v[13],
            group_commits: v[14],
            shard: v[15],
            shards: v[16],
        }),
        (
            proptest::collection::vec(arb_stage_stats(), 0..7),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(
                |(
                    stages,
                    trace_events,
                    trace_dropped,
                    ingest_allocs,
                    ingest_records,
                    shard,
                    shards,
                )| {
                    Response::Stats {
                        stages,
                        trace_events,
                        trace_dropped,
                        ingest_allocs,
                        ingest_records,
                        shard,
                        shards,
                    }
                },
            ),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    let client = (1u64..50).prop_map(ClientId);
    prop_oneof![
        (any::<u64>(), any::<u64>())
            .prop_map(|(incarnation, isn)| Message::Syn { incarnation, isn }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(incarnation, isn, ack)| {
            Message::SynAck {
                incarnation,
                isn,
                ack,
            }
        }),
        any::<u64>().prop_map(|ack| Message::HandshakeAck { ack }),
        (client.clone(), 1u64..100, arb_lsn_batch()).prop_map(|(c, e, records)| {
            Message::WriteLog {
                client: c,
                epoch: Epoch(e),
                records,
            }
        }),
        (client.clone(), 1u64..100, arb_lsn_batch()).prop_map(|(c, e, records)| {
            Message::ForceLog {
                client: c,
                epoch: Epoch(e),
                records,
            }
        }),
        (client.clone(), 1u64..100, 1u64..9999).prop_map(|(c, e, l)| Message::NewInterval {
            client: c,
            epoch: Epoch(e),
            starting_lsn: Lsn(l)
        }),
        (client.clone(), 1u64..9999).prop_map(|(c, l)| Message::NewHighLsn {
            client: c,
            lsn: Lsn(l)
        }),
        (client, 1u64..500, 0u64..500).prop_map(|(c, lo, extra)| Message::MissingInterval {
            client: c,
            lo: Lsn(lo),
            hi: Lsn(lo + extra)
        }),
        (any::<u64>(), arb_request()).prop_map(|(id, body)| Message::Request { id, body }),
        (any::<u64>(), arb_response()).prop_map(|(id, body)| Message::Response { id, body }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn roundtrip(msg in arb_message(), conn in any::<u64>(), seq in any::<u64>(), alloc in any::<u64>(), log in any::<u64>()) {
        let p = Packet { conn, seq, alloc, log, msg };
        let bytes = p.encode();
        let q = Packet::decode(&bytes).expect("decode own encoding");
        prop_assert_eq!(p, q);
    }

    /// Any single-byte corruption is either detected (decode error) —
    /// never silently accepted as a *different* packet.
    #[test]
    fn corruption_detected(msg in arb_message(), idx_seed in any::<usize>(), flip in 1u8..=255) {
        let p = Packet::bare(msg);
        let mut bytes = p.encode().to_vec();
        let idx = idx_seed % bytes.len();
        bytes[idx] ^= flip;
        match Packet::decode(&bytes) {
            Err(_) => {}
            Ok(q) => prop_assert_eq!(&q, &p, "corruption at {} yielded a different packet", idx),
        }
    }

    /// Truncations never decode.
    #[test]
    fn truncation_detected(msg in arb_message(), cut_seed in any::<usize>()) {
        let p = Packet::bare(msg);
        let bytes = p.encode();
        let cut = cut_seed % bytes.len();
        prop_assert!(Packet::decode(&bytes[..cut]).is_err());
    }

    /// pack_batches: preserves order and content, respects the MTU for
    /// normally-sized records, never emits an empty batch.
    #[test]
    fn packing_invariants(records in proptest::collection::vec((1u64..100_000, arb_data()), 0..60)) {
        let records: Vec<(Lsn, LogData)> = records.into_iter().map(|(l, d)| (Lsn(l), d)).collect();
        let batches = pack_batches(&records);
        let flat: Vec<(Lsn, LogData)> = batches.iter().flatten().cloned().collect();
        prop_assert_eq!(flat, records.clone());
        for batch in &batches {
            prop_assert!(!batch.is_empty());
            let msg = Message::WriteLog {
                client: ClientId(1),
                epoch: Epoch(1),
                records: batch.clone(),
            };
            let len = Packet::bare(msg).encoded_len();
            // Oversized single records may exceed the MTU alone; batches
            // of 2+ never do.
            if batch.len() > 1 {
                prop_assert!(len <= MAX_PACKET_BYTES, "batch of {} is {} bytes", batch.len(), len);
            }
        }
    }
}
