//! Property test: for any sequence of committed/aborted ET1 transactions
//! and any crash point, recovery from the log reproduces exactly the
//! state as of the last force (i.e. the last commit), in both classic
//! and split logging modes.

use proptest::prelude::*;

use dlog_workload::recovery::{LogMode, MemLog};
use dlog_workload::{BankDb, Et1Config, Et1Generator, RecoveryManager};

#[derive(Debug, Clone, Copy)]
enum Op {
    Commit,
    Abort,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![3 => Just(Op::Commit), 1 => Just(Op::Abort)],
        1..40,
    )
}

fn fresh_db() -> BankDb {
    BankDb::new(2_000, 40, 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn recovery_matches_last_committed_state(
        ops in arb_ops(),
        seed in any::<u64>(),
        classic in any::<bool>(),
    ) {
        let mode = if classic { LogMode::Classic } else { LogMode::Split };
        let mut mgr = RecoveryManager::new(MemLog::default(), fresh_db(), mode, 1 << 20);
        let mut gen = Et1Generator::new(Et1Config { accounts: 2_000, tellers: 40, branches: 4, seed });

        let mut state_at_last_commit = fresh_db();
        for op in &ops {
            let txn = gen.next_txn();
            match op {
                Op::Commit => {
                    mgr.run_et1(&txn).unwrap();
                    state_at_last_commit = mgr.db().clone();
                }
                Op::Abort => {
                    mgr.run_et1_abort(&txn).unwrap();
                }
            }
            prop_assert!(mgr.db().conserved());
        }

        // Crash at an arbitrary point: everything unforced is lost. The
        // last force was the last commit, so recovery must land there.
        let log = mgr.log_mut();
        log.crash();
        let recovered = RecoveryManager::recover(log, fresh_db()).unwrap();
        prop_assert!(recovered.conserved());
        prop_assert_eq!(recovered, state_at_last_commit);
    }

    /// A mid-transaction crash (records written, commit never forced)
    /// loses exactly that transaction.
    #[test]
    fn loser_transactions_vanish(
        committed in 0usize..15,
        seed in any::<u64>(),
    ) {
        let mut mgr =
            RecoveryManager::new(MemLog::default(), fresh_db(), LogMode::Classic, 1 << 20);
        let mut gen = Et1Generator::new(Et1Config { accounts: 2_000, tellers: 40, branches: 4, seed });
        for _ in 0..committed {
            mgr.run_et1(&gen.next_txn()).unwrap();
        }
        let committed_state = mgr.db().clone();

        // Start a transaction but crash before committing it.
        let t = mgr.begin();
        let loser = gen.next_txn();
        mgr.step(t, &loser).unwrap();

        let log = mgr.log_mut();
        log.crash();
        let recovered = RecoveryManager::recover(log, fresh_db()).unwrap();
        prop_assert_eq!(recovered, committed_state);
    }
}
