//! The debit–credit bank database: accounts, tellers, branches, history.
//!
//! Pages group records so the §5.2 page-cleaning path has something to
//! clean; the conservation invariant (account, teller, and branch totals
//! all equal) catches lost or double-applied updates after recovery.

use crate::et1::Et1Txn;

/// Records per page (accounts, tellers, and branches are page-structured
/// for the buffer-manager experiments).
pub const PAGE_RECORDS: u64 = 64;

/// Logical page namespaces (encoded into page ids).
const PAGE_SPACE_ACCOUNT: u64 = 1 << 32;
const PAGE_SPACE_TELLER: u64 = 2 << 32;
const PAGE_SPACE_BRANCH: u64 = 3 << 32;

/// An in-memory debit–credit database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BankDb {
    accounts: Vec<i64>,
    tellers: Vec<i64>,
    branches: Vec<i64>,
    /// (account, teller, branch, delta) history tuples.
    history: Vec<(u32, u32, u32, i64)>,
}

impl BankDb {
    /// A database with all balances zero.
    #[must_use]
    pub fn new(accounts: usize, tellers: usize, branches: usize) -> Self {
        BankDb {
            accounts: vec![0; accounts],
            tellers: vec![0; tellers],
            branches: vec![0; branches],
            history: Vec::new(),
        }
    }

    /// Apply a transaction's updates.
    pub fn apply(&mut self, t: &Et1Txn) {
        self.credit_account(t.account, t.delta);
        self.credit_teller(t.teller, t.delta);
        self.credit_branch(t.branch, t.delta);
        self.insert_history(t.account, t.teller, t.branch, t.delta);
    }

    /// Record-level mutator: credit one account (used by log replay).
    pub fn credit_account(&mut self, id: u32, delta: i64) {
        self.accounts[id as usize] += delta;
    }

    /// Record-level mutator: credit one teller.
    pub fn credit_teller(&mut self, id: u32, delta: i64) {
        self.tellers[id as usize] += delta;
    }

    /// Record-level mutator: credit one branch.
    pub fn credit_branch(&mut self, id: u32, delta: i64) {
        self.branches[id as usize] += delta;
    }

    /// Record-level mutator: append a history tuple.
    pub fn insert_history(&mut self, account: u32, teller: u32, branch: u32, delta: i64) {
        self.history.push((account, teller, branch, delta));
    }

    /// Reverse a transaction's updates (abort path).
    pub fn unapply(&mut self, t: &Et1Txn) {
        self.accounts[t.account as usize] -= t.delta;
        self.tellers[t.teller as usize] -= t.delta;
        self.branches[t.branch as usize] -= t.delta;
        // Remove the matching history tuple (last occurrence).
        if let Some(pos) = self
            .history
            .iter()
            .rposition(|&(a, te, b, d)| (a, te, b, d) == (t.account, t.teller, t.branch, t.delta))
        {
            self.history.remove(pos);
        }
    }

    /// Account balance.
    #[must_use]
    pub fn account(&self, id: u32) -> i64 {
        self.accounts[id as usize]
    }

    /// Teller balance.
    #[must_use]
    pub fn teller(&self, id: u32) -> i64 {
        self.tellers[id as usize]
    }

    /// Branch balance.
    #[must_use]
    pub fn branch(&self, id: u32) -> i64 {
        self.branches[id as usize]
    }

    /// History length (committed transactions).
    #[must_use]
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// The conservation invariant: every debit/credit touches one
    /// account, teller, and branch by the same delta, so the three totals
    /// must be identical (and equal the history total).
    #[must_use]
    pub fn conserved(&self) -> bool {
        let a: i64 = self.accounts.iter().sum();
        let t: i64 = self.tellers.iter().sum();
        let b: i64 = self.branches.iter().sum();
        let h: i64 = self.history.iter().map(|&(_, _, _, d)| d).sum();
        a == t && t == b && b == h
    }

    /// Page id containing an account record.
    #[must_use]
    pub fn account_page(account: u32) -> u64 {
        PAGE_SPACE_ACCOUNT | (u64::from(account) / PAGE_RECORDS)
    }

    /// Page id containing a teller record.
    #[must_use]
    pub fn teller_page(teller: u32) -> u64 {
        PAGE_SPACE_TELLER | (u64::from(teller) / PAGE_RECORDS)
    }

    /// Page id containing a branch record.
    #[must_use]
    pub fn branch_page(branch: u32) -> u64 {
        PAGE_SPACE_BRANCH | (u64::from(branch) / PAGE_RECORDS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(a: u32, t: u32, b: u32, d: i64) -> Et1Txn {
        Et1Txn {
            account: a,
            teller: t,
            branch: b,
            delta: d,
        }
    }

    #[test]
    fn apply_unapply_roundtrip() {
        let mut db = BankDb::new(100, 10, 2);
        let before = db.clone();
        let t = txn(5, 3, 1, 42);
        db.apply(&t);
        assert_eq!(db.account(5), 42);
        assert_eq!(db.teller(3), 42);
        assert_eq!(db.branch(1), 42);
        assert!(db.conserved());
        db.unapply(&t);
        assert_eq!(db, before);
    }

    #[test]
    fn conservation_detects_corruption() {
        let mut db = BankDb::new(10, 2, 1);
        db.apply(&txn(1, 0, 0, 10));
        assert!(db.conserved());
        db.accounts[1] += 1; // corrupt
        assert!(!db.conserved());
    }

    #[test]
    fn page_mapping() {
        assert_eq!(BankDb::account_page(0), BankDb::account_page(63));
        assert_ne!(BankDb::account_page(63), BankDb::account_page(64));
        // Namespaces never collide.
        assert_ne!(BankDb::account_page(0), BankDb::teller_page(0));
        assert_ne!(BankDb::teller_page(0), BankDb::branch_page(0));
    }
}
