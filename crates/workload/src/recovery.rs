//! A redo/undo recovery manager over any log.
//!
//! Transactions update the [`BankDb`] in place and log their updates
//! through the §5.2 [`SplitLogger`]; only the commit record is forced
//! (the ET1 profile of §4.1). After a crash, [`RecoveryManager::recover`]
//! rebuilds the database by scanning the log and replaying the redo
//! components of committed transactions in LSN order (deferred-update /
//! redo-winners recovery). Aborts roll back from the client-side undo
//! cache without touching the servers.

use dlog_core::split::{LogSink, SplitLogger, SplitRecord, TxnId};
use dlog_types::{DlogError, LogData, Lsn, Result};

use crate::bank::BankDb;
use crate::et1::{profile, Et1Txn, LongTxn};

/// Read access to a log, as the recovery manager needs it. Implemented
/// for the replicated log, the duplexed local log, and in-memory logs.
pub trait LogAccess: LogSink {
    /// Fetch the record at `lsn`.
    ///
    /// # Errors
    /// [`DlogError::NotPresent`] for recovery-masked LSNs,
    /// [`DlogError::NoSuchRecord`] past the end.
    fn read(&mut self, lsn: Lsn) -> Result<LogData>;

    /// LSN of the most recent record.
    ///
    /// # Errors
    /// Propagates log failures.
    fn end_of_log(&mut self) -> Result<Lsn>;
}

impl<E: dlog_net::Endpoint> LogAccess for dlog_core::ReplicatedLog<E> {
    fn read(&mut self, lsn: Lsn) -> Result<LogData> {
        dlog_core::ReplicatedLog::read(self, lsn)
    }

    fn end_of_log(&mut self) -> Result<Lsn> {
        dlog_core::ReplicatedLog::end_of_log(self)
    }
}

/// Adapter: the duplexed-disk baseline as a log (experiment E4).
pub struct DuplexAccess(pub dlog_storage::duplex::DuplexLog);

impl LogSink for DuplexAccess {
    fn write(&mut self, data: LogData) -> Result<Lsn> {
        Ok(self.0.append(data))
    }

    fn force(&mut self) -> Result<Lsn> {
        self.0.force()?;
        Ok(self.0.end_of_log())
    }
}

impl LogAccess for DuplexAccess {
    fn read(&mut self, lsn: Lsn) -> Result<LogData> {
        Ok(self.0.read(lsn)?.data)
    }

    fn end_of_log(&mut self) -> Result<Lsn> {
        Ok(self.0.end_of_log())
    }
}

/// A purely in-memory log for unit tests and simulations.
#[derive(Default, Debug)]
pub struct MemLog {
    records: Vec<LogData>,
    /// Records at or below this index are durable.
    pub forced_to: usize,
}

impl LogSink for MemLog {
    fn write(&mut self, data: LogData) -> Result<Lsn> {
        self.records.push(data);
        Ok(Lsn(self.records.len() as u64))
    }

    fn force(&mut self) -> Result<Lsn> {
        self.forced_to = self.records.len();
        Ok(Lsn(self.records.len() as u64))
    }
}

impl LogAccess for MemLog {
    fn read(&mut self, lsn: Lsn) -> Result<LogData> {
        self.records
            .get((lsn.0.saturating_sub(1)) as usize)
            .cloned()
            .ok_or(DlogError::NoSuchRecord { lsn })
    }

    fn end_of_log(&mut self) -> Result<Lsn> {
        Ok(Lsn(self.records.len() as u64))
    }
}

impl MemLog {
    /// Simulate a crash: unforced records are lost.
    pub fn crash(&mut self) {
        self.records.truncate(self.forced_to);
    }
}

/// Semantic content at the head of each redo payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Update {
    /// Account balance change.
    Account {
        /// Account id.
        id: u32,
        /// Amount.
        delta: i64,
    },
    /// Teller balance change.
    Teller {
        /// Teller id.
        id: u32,
        /// Amount.
        delta: i64,
    },
    /// Branch balance change.
    Branch {
        /// Branch id.
        id: u32,
        /// Amount.
        delta: i64,
    },
    /// History tuple insert.
    History {
        /// Account id.
        account: u32,
        /// Teller id.
        teller: u32,
        /// Branch id.
        branch: u32,
        /// Amount.
        delta: i64,
    },
    /// Bookkeeping record with no database effect (the two audit records
    /// of the ET1 profile).
    Audit,
    /// Savepoint marker in a long transaction (§2).
    Savepoint {
        /// Savepoint ordinal within the transaction.
        ordinal: u32,
    },
}

impl Update {
    /// Encode, padded with zeros to exactly `size` bytes.
    ///
    /// # Panics
    /// Panics if the semantic head exceeds `size`.
    #[must_use]
    pub fn encode_padded(&self, size: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(size);
        match self {
            Update::Account { id, delta } => {
                out.push(1);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&delta.to_le_bytes());
            }
            Update::Teller { id, delta } => {
                out.push(2);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&delta.to_le_bytes());
            }
            Update::Branch { id, delta } => {
                out.push(3);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&delta.to_le_bytes());
            }
            Update::History {
                account,
                teller,
                branch,
                delta,
            } => {
                out.push(4);
                out.extend_from_slice(&account.to_le_bytes());
                out.extend_from_slice(&teller.to_le_bytes());
                out.extend_from_slice(&branch.to_le_bytes());
                out.extend_from_slice(&delta.to_le_bytes());
            }
            Update::Audit => out.push(5),
            Update::Savepoint { ordinal } => {
                out.push(6);
                out.extend_from_slice(&ordinal.to_le_bytes());
            }
        }
        assert!(out.len() <= size, "semantic head exceeds record size");
        out.resize(size, 0);
        out
    }

    /// Decode the semantic head of a redo payload.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<Update> {
        let tag = *payload.first()?;
        let u32_at = |off: usize| -> Option<u32> {
            Some(u32::from_le_bytes(
                payload.get(off..off + 4)?.try_into().ok()?,
            ))
        };
        let i64_at = |off: usize| -> Option<i64> {
            Some(i64::from_le_bytes(
                payload.get(off..off + 8)?.try_into().ok()?,
            ))
        };
        match tag {
            1 => Some(Update::Account {
                id: u32_at(1)?,
                delta: i64_at(5)?,
            }),
            2 => Some(Update::Teller {
                id: u32_at(1)?,
                delta: i64_at(5)?,
            }),
            3 => Some(Update::Branch {
                id: u32_at(1)?,
                delta: i64_at(5)?,
            }),
            4 => Some(Update::History {
                account: u32_at(1)?,
                teller: u32_at(5)?,
                branch: u32_at(9)?,
                delta: i64_at(13)?,
            }),
            5 => Some(Update::Audit),
            6 => Some(Update::Savepoint {
                ordinal: u32_at(1)?,
            }),
            _ => None,
        }
    }
}

/// Whether log records are split (§5.2) or classic (undo travels with
/// redo in every record — the 700-byte ET1 profile).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogMode {
    /// Undo components ride in every record (baseline).
    Classic,
    /// Undo components stay in the client cache (§5.2).
    Split,
}

/// The recovery manager: runs transactions, aborts locally, recovers.
pub struct RecoveryManager<L: LogAccess> {
    logger: SplitLogger<L>,
    db: BankDb,
    mode: LogMode,
    next_txn: u64,
}

impl<L: LogAccess> RecoveryManager<L> {
    /// Wrap a log with a fresh database.
    #[must_use]
    pub fn new(log: L, db: BankDb, mode: LogMode, undo_cache_bytes: usize) -> Self {
        RecoveryManager {
            logger: SplitLogger::new(log, undo_cache_bytes),
            db,
            mode,
            next_txn: 1,
        }
    }

    /// The database.
    #[must_use]
    pub fn db(&self) -> &BankDb {
        &self.db
    }

    /// Splitting statistics (experiment E9).
    #[must_use]
    pub fn split_stats(&self) -> dlog_core::split::SplitStats {
        self.logger.stats()
    }

    /// The underlying log.
    pub fn log_mut(&mut self) -> &mut L {
        self.logger.sink_mut()
    }

    /// Run one ET1 transaction to commit: six data records then a forced
    /// commit — the §4.1 profile.
    ///
    /// # Errors
    /// Propagates log failures (the database is left applied only on
    /// success; callers treat failures as node crashes).
    pub fn run_et1(&mut self, txn: &Et1Txn) -> Result<Lsn> {
        let t = TxnId(self.next_txn);
        self.next_txn += 1;
        self.log_et1_body(t, txn)?;
        self.db.apply(txn);
        self.logger.commit(t)
    }

    /// Run an ET1 transaction but abort it: the database is unchanged and
    /// the rollback is served from the undo cache.
    ///
    /// # Errors
    /// Propagates log failures.
    pub fn run_et1_abort(&mut self, txn: &Et1Txn) -> Result<bool> {
        let t = TxnId(self.next_txn);
        self.next_txn += 1;
        self.log_et1_body(t, txn)?;
        self.db.apply(txn);
        let (_undos, fully_local) = self.logger.abort(t)?;
        self.db.unapply(txn);
        Ok(fully_local)
    }

    /// Run a long design transaction (§2) with savepoint markers.
    ///
    /// # Errors
    /// Propagates log failures.
    pub fn run_long(&mut self, long: &LongTxn) -> Result<Lsn> {
        let t = TxnId(self.next_txn);
        self.next_txn += 1;
        for (i, step) in long.steps.iter().enumerate() {
            self.log_step(t, step)?;
            self.db.apply(step);
            if (i + 1) % long.savepoint_every == 0 {
                let sp = Update::Savepoint {
                    ordinal: (i as u32 + 1),
                };
                self.logger.update(t, 0, sp.encode_padded(24), Vec::new())?;
            }
        }
        self.logger.commit(t)
    }

    /// The buffer manager cleans a page: spill its cached undo (§5.2).
    ///
    /// # Errors
    /// Propagates log failures.
    pub fn clean_page(&mut self, page: u64) -> Result<()> {
        self.logger.clean_page(page)
    }

    /// Begin an explicitly managed transaction (for callers that need
    /// mid-transaction control: savepoints, page cleaning, aborts).
    pub fn begin(&mut self) -> TxnId {
        let t = TxnId(self.next_txn);
        self.next_txn += 1;
        t
    }

    /// Perform one debit–credit step inside transaction `t`.
    ///
    /// # Errors
    /// Propagates log failures.
    pub fn step(&mut self, t: TxnId, s: &Et1Txn) -> Result<()> {
        self.log_step(t, s)?;
        self.db.apply(s);
        Ok(())
    }

    /// Log a savepoint marker inside transaction `t`.
    ///
    /// # Errors
    /// Propagates log failures.
    pub fn savepoint(&mut self, t: TxnId, ordinal: u32) -> Result<()> {
        let sp = Update::Savepoint { ordinal };
        self.logger.update(t, 0, sp.encode_padded(24), Vec::new())?;
        Ok(())
    }

    /// Roll an explicitly managed transaction back to savepoint
    /// `ordinal`: the `steps_since` performed after that savepoint are
    /// unapplied locally (undo cache), annulled in the log with a
    /// rollback record, and recovery will drop their redo components.
    ///
    /// # Errors
    /// Propagates log failures.
    pub fn rollback_to_savepoint(
        &mut self,
        t: TxnId,
        ordinal: u32,
        steps_since: &[Et1Txn],
    ) -> Result<()> {
        self.logger.rollback_to(t, ordinal)?;
        // Each step logged four update records (account/teller/branch/
        // history); release their cached undo and unapply semantically.
        let _ = self.logger.take_newest(t, steps_since.len() * 4);
        for s in steps_since.iter().rev() {
            self.db.unapply(s);
        }
        Ok(())
    }

    /// Commit an explicitly managed transaction (forces the log).
    ///
    /// # Errors
    /// Propagates log failures.
    pub fn commit_txn(&mut self, t: TxnId) -> Result<Lsn> {
        self.logger.commit(t)
    }

    /// Abort an explicitly managed transaction, rolling its `steps` back
    /// (newest first). Returns whether the abort was served entirely from
    /// the undo cache.
    ///
    /// # Errors
    /// Propagates log failures.
    pub fn abort_txn(&mut self, t: TxnId, steps: &[Et1Txn]) -> Result<bool> {
        let (_undos, fully_local) = self.logger.abort(t)?;
        for s in steps.iter().rev() {
            self.db.unapply(s);
        }
        Ok(fully_local)
    }

    fn log_et1_body(&mut self, t: TxnId, txn: &Et1Txn) -> Result<()> {
        let updates: [(Update, u64); 6] = [
            (
                Update::Account {
                    id: txn.account,
                    delta: txn.delta,
                },
                BankDb::account_page(txn.account),
            ),
            (
                Update::Teller {
                    id: txn.teller,
                    delta: txn.delta,
                },
                BankDb::teller_page(txn.teller),
            ),
            (
                Update::Branch {
                    id: txn.branch,
                    delta: txn.delta,
                },
                BankDb::branch_page(txn.branch),
            ),
            (
                Update::History {
                    account: txn.account,
                    teller: txn.teller,
                    branch: txn.branch,
                    delta: txn.delta,
                },
                0,
            ),
            (Update::Audit, 0),
            (Update::Audit, 0),
        ];
        for (i, (u, page)) in updates.iter().enumerate() {
            self.log_update(t, *u, *page, i)?;
        }
        Ok(())
    }

    fn log_step(&mut self, t: TxnId, step: &Et1Txn) -> Result<()> {
        self.log_update(
            t,
            Update::Account {
                id: step.account,
                delta: step.delta,
            },
            BankDb::account_page(step.account),
            0,
        )?;
        self.log_update(
            t,
            Update::Teller {
                id: step.teller,
                delta: step.delta,
            },
            BankDb::teller_page(step.teller),
            1,
        )?;
        self.log_update(
            t,
            Update::Branch {
                id: step.branch,
                delta: step.delta,
            },
            BankDb::branch_page(step.branch),
            2,
        )?;
        self.log_update(
            t,
            Update::History {
                account: step.account,
                teller: step.teller,
                branch: step.branch,
                delta: step.delta,
            },
            0,
            3,
        )
    }

    fn log_update(&mut self, t: TxnId, update: Update, page: u64, slot: usize) -> Result<()> {
        match self.mode {
            LogMode::Classic => {
                // Redo and undo travel together: the full profile payload.
                let payload = update.encode_padded(profile::DATA_PAYLOADS[slot]);
                self.logger.update(t, page, payload, Vec::new())?;
            }
            LogMode::Split => {
                let redo = update.encode_padded(profile::redo_bytes(slot));
                let undo = vec![0u8; profile::undo_bytes(slot)]; // before-image bytes
                self.logger.update(t, page, redo, undo)?;
            }
        }
        Ok(())
    }

    /// Rebuild a database from the log: scan every LSN, replay the redo
    /// components of committed transactions in order.
    ///
    /// # Errors
    /// Propagates log failures and corrupt records.
    pub fn recover(log: &mut L, db_template: BankDb) -> Result<BankDb> {
        let end = log.end_of_log()?;
        let mut db = db_template;
        // Per-transaction pending redo lists (savepoint markers included,
        // so partial rollbacks can rewind them).
        let mut pending: std::collections::HashMap<u64, Vec<Update>> =
            std::collections::HashMap::new();
        for l in 1..=end.0 {
            let data = match log.read(Lsn(l)) {
                Ok(d) => d,
                Err(DlogError::NotPresent { .. }) => continue, // masked by recovery
                Err(e) => return Err(e),
            };
            let Some(rec) = SplitRecord::decode(&data) else {
                return Err(DlogError::Corrupt(format!("undecodable log record at {l}")));
            };
            match rec {
                SplitRecord::Redo { txn, data, .. } => {
                    let Some(u) = Update::decode(data.as_bytes()) else {
                        return Err(DlogError::Corrupt(format!("bad redo payload at {l}")));
                    };
                    pending.entry(txn.0).or_default().push(u);
                }
                SplitRecord::Undo { .. } => {} // spilled undo: redo-pass ignores
                SplitRecord::Commit { txn } => {
                    for u in pending.remove(&txn.0).unwrap_or_default() {
                        apply_update(&mut db, &u);
                    }
                }
                SplitRecord::Abort { txn } => {
                    pending.remove(&txn.0);
                }
                SplitRecord::RollbackTo { txn, ordinal } => {
                    if let Some(list) = pending.get_mut(&txn.0) {
                        // Rewind to just after the matching savepoint
                        // marker (keep the marker so a second rollback to
                        // the same ordinal still finds it).
                        if let Some(idx) = list.iter().rposition(
                            |u| matches!(u, Update::Savepoint { ordinal: o } if *o == ordinal),
                        ) {
                            list.truncate(idx + 1);
                        } else {
                            return Err(DlogError::Corrupt(format!(
                                "rollback to unknown savepoint {ordinal} of txn {}",
                                txn.0
                            )));
                        }
                    }
                }
            }
        }
        // Uncommitted transactions are losers: dropped.
        Ok(db)
    }
}

fn apply_update(db: &mut BankDb, u: &Update) {
    match *u {
        Update::Account { id, delta } => db.credit_account(id, delta),
        Update::Teller { id, delta } => db.credit_teller(id, delta),
        Update::Branch { id, delta } => db.credit_branch(id, delta),
        Update::History {
            account,
            teller,
            branch,
            delta,
        } => {
            db.insert_history(account, teller, branch, delta);
        }
        Update::Audit | Update::Savepoint { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::et1::{Et1Config, Et1Generator, LongTxnGenerator};

    fn fresh_db() -> BankDb {
        BankDb::new(1000, 50, 5)
    }

    fn generator() -> Et1Generator {
        Et1Generator::new(Et1Config {
            accounts: 1000,
            tellers: 50,
            branches: 5,
            seed: 4,
        })
    }

    #[test]
    fn update_encode_decode() {
        for u in [
            Update::Account {
                id: 7,
                delta: -12345,
            },
            Update::Teller { id: 3, delta: 99 },
            Update::Branch { id: 1, delta: 1 },
            Update::History {
                account: 7,
                teller: 3,
                branch: 1,
                delta: -5,
            },
            Update::Audit,
            Update::Savepoint { ordinal: 4 },
        ] {
            let enc = u.encode_padded(100);
            assert_eq!(enc.len(), 100);
            assert_eq!(Update::decode(&enc), Some(u));
        }
        assert_eq!(Update::decode(&[]), None);
        assert_eq!(Update::decode(&[99, 0, 0]), None);
    }

    #[test]
    fn et1_profile_on_the_wire() {
        // One ET1 transaction in classic mode writes exactly 7 records and
        // 700 bytes, with one force — the §4.1 profile.
        let mut mgr =
            RecoveryManager::new(MemLog::default(), fresh_db(), LogMode::Classic, 1 << 20);
        let txn = generator().next_txn();
        mgr.run_et1(&txn).unwrap();
        let log = mgr.log_mut();
        let end = log.end_of_log().unwrap();
        assert_eq!(end, Lsn(7));
        let total: usize = (1..=7).map(|l| log.read(Lsn(l)).unwrap().len()).sum();
        assert_eq!(total, profile::BYTES_PER_TXN);
        assert_eq!(
            log.forced_to, 7,
            "only the commit forces, and it forces everything"
        );
    }

    #[test]
    fn split_mode_logs_less() {
        let txn = generator().next_txn();
        let mut classic =
            RecoveryManager::new(MemLog::default(), fresh_db(), LogMode::Classic, 1 << 20);
        classic.run_et1(&txn).unwrap();
        let mut split =
            RecoveryManager::new(MemLog::default(), fresh_db(), LogMode::Split, 1 << 20);
        split.run_et1(&txn).unwrap();
        let classic_bytes: usize = {
            let log = classic.log_mut();
            let end = log.end_of_log().unwrap();
            (1..=end.0).map(|l| log.read(Lsn(l)).unwrap().len()).sum()
        };
        let split_bytes: usize = {
            let log = split.log_mut();
            let end = log.end_of_log().unwrap();
            (1..=end.0).map(|l| log.read(Lsn(l)).unwrap().len()).sum()
        };
        assert!(
            split_bytes < classic_bytes,
            "split {split_bytes} must be below classic {classic_bytes}"
        );
        assert!(split.split_stats().undo_bytes_saved > 0);
    }

    #[test]
    fn recovery_replays_committed_only() {
        let mut mgr =
            RecoveryManager::new(MemLog::default(), fresh_db(), LogMode::Classic, 1 << 20);
        let mut gen = generator();
        let mut committed = Vec::new();
        for i in 0..20 {
            let txn = gen.next_txn();
            if i % 5 == 4 {
                mgr.run_et1_abort(&txn).unwrap();
            } else {
                mgr.run_et1(&txn).unwrap();
                committed.push(txn);
            }
        }
        let live_db = mgr.db().clone();
        assert!(live_db.conserved());
        assert_eq!(live_db.history_len(), committed.len());

        // Crash: unforced records vanish; then recover from the log.
        let log = mgr.log_mut();
        log.crash();
        let recovered = RecoveryManager::recover(log, fresh_db()).unwrap();
        assert_eq!(
            recovered, live_db,
            "recovered database must match the committed state"
        );
    }

    #[test]
    fn crash_mid_transaction_loses_only_it() {
        let mut mgr =
            RecoveryManager::new(MemLog::default(), fresh_db(), LogMode::Classic, 1 << 20);
        let mut gen = generator();
        let t1 = gen.next_txn();
        mgr.run_et1(&t1).unwrap();
        let committed_db = mgr.db().clone();

        // A transaction whose records are written but never committed.
        let t2 = gen.next_txn();
        let t = TxnId(999);
        mgr.log_et1_body(t, &t2).unwrap();
        mgr.db.apply(&t2);

        let log = mgr.log_mut();
        log.crash(); // commit of t1 was forced; t2's tail is unforced
        let recovered = RecoveryManager::recover(log, fresh_db()).unwrap();
        assert_eq!(recovered, committed_db);
        assert!(recovered.conserved());
    }

    #[test]
    fn abort_is_local_and_leaves_db_unchanged() {
        let mut mgr = RecoveryManager::new(MemLog::default(), fresh_db(), LogMode::Split, 1 << 20);
        let before = mgr.db().clone();
        let txn = generator().next_txn();
        let local = mgr.run_et1_abort(&txn).unwrap();
        assert!(local, "abort with a roomy cache must be local");
        assert_eq!(mgr.db(), &before);
        assert_eq!(mgr.split_stats().local_aborts, 1);
    }

    #[test]
    fn page_cleaning_spills_then_abort_is_remote() {
        let mut mgr = RecoveryManager::new(MemLog::default(), fresh_db(), LogMode::Split, 1 << 20);
        let mut gen = generator();
        let txn = gen.next_txn();
        let t = TxnId(mgr.next_txn);
        mgr.next_txn += 1;
        mgr.log_et1_body(t, &txn).unwrap();
        mgr.db.apply(&txn);
        // Clean the account page: its undo must spill.
        mgr.clean_page(BankDb::account_page(txn.account)).unwrap();
        assert!(mgr.split_stats().page_clean_spills >= 1);
        let (_, local) = mgr.logger.abort(t).unwrap();
        mgr.db.unapply(&txn);
        assert!(!local, "after a spill the abort needs the log");
    }

    #[test]
    fn long_transactions_recover() {
        let mut mgr = RecoveryManager::new(MemLog::default(), fresh_db(), LogMode::Split, 1 << 20);
        let mut gen = LongTxnGenerator::new(
            Et1Config {
                accounts: 1000,
                tellers: 50,
                branches: 5,
                seed: 8,
            },
            40,
            10,
        );
        mgr.run_long(&gen.next_txn()).unwrap();
        let live = mgr.db().clone();
        assert!(live.conserved());
        let log = mgr.log_mut();
        log.crash();
        let recovered = RecoveryManager::recover(log, fresh_db()).unwrap();
        assert!(recovered.conserved());
        assert_eq!(recovered, live);
    }
}

#[cfg(test)]
mod savepoint_tests {
    use super::*;
    use crate::et1::{Et1Config, Et1Generator};

    fn fresh_db() -> BankDb {
        BankDb::new(1000, 50, 5)
    }

    fn generator() -> Et1Generator {
        Et1Generator::new(Et1Config {
            accounts: 1000,
            tellers: 50,
            branches: 5,
            seed: 21,
        })
    }

    #[test]
    fn rollback_to_savepoint_keeps_earlier_work() {
        let mut mgr = RecoveryManager::new(MemLog::default(), fresh_db(), LogMode::Split, 1 << 20);
        let mut gen = generator();
        let t = mgr.begin();

        // Phase 1: two steps, then a savepoint.
        let kept: Vec<_> = (0..2).map(|_| gen.next_txn()).collect();
        for s in &kept {
            mgr.step(t, s).unwrap();
        }
        mgr.savepoint(t, 1).unwrap();
        let state_at_savepoint = mgr.db().clone();

        // Phase 2: three steps that get rolled back.
        let undone: Vec<_> = (0..3).map(|_| gen.next_txn()).collect();
        for s in &undone {
            mgr.step(t, s).unwrap();
        }
        mgr.rollback_to_savepoint(t, 1, &undone).unwrap();
        assert_eq!(
            mgr.db(),
            &state_at_savepoint,
            "rollback restores the savepoint state"
        );

        // Phase 3: continue and commit.
        let after: Vec<_> = (0..2).map(|_| gen.next_txn()).collect();
        for s in &after {
            mgr.step(t, s).unwrap();
        }
        mgr.commit_txn(t).unwrap();
        let live = mgr.db().clone();
        assert!(live.conserved());

        // Crash and recover: the annulled phase-2 redos must not replay.
        let log = mgr.log_mut();
        log.crash();
        let recovered = RecoveryManager::recover(log, fresh_db()).unwrap();
        assert_eq!(recovered, live);
    }

    #[test]
    fn nested_savepoints_rewind_independently() {
        let mut mgr = RecoveryManager::new(MemLog::default(), fresh_db(), LogMode::Split, 1 << 20);
        let mut gen = generator();
        let t = mgr.begin();

        let s1 = gen.next_txn();
        mgr.step(t, &s1).unwrap();
        mgr.savepoint(t, 1).unwrap();
        let s2 = gen.next_txn();
        mgr.step(t, &s2).unwrap();
        mgr.savepoint(t, 2).unwrap();
        let s3 = gen.next_txn();
        mgr.step(t, &s3).unwrap();

        // Rewind to 2 (drops s3), then to 1 (drops s2).
        mgr.rollback_to_savepoint(t, 2, std::slice::from_ref(&s3))
            .unwrap();
        mgr.rollback_to_savepoint(t, 1, std::slice::from_ref(&s2))
            .unwrap();
        mgr.commit_txn(t).unwrap();

        let live = mgr.db().clone();
        let log = mgr.log_mut();
        log.crash();
        let recovered = RecoveryManager::recover(log, fresh_db()).unwrap();
        assert_eq!(recovered, live);
        // Only s1 survived.
        assert_eq!(recovered.history_len(), 1);
    }

    #[test]
    fn rollback_then_full_abort() {
        let mut mgr = RecoveryManager::new(MemLog::default(), fresh_db(), LogMode::Split, 1 << 20);
        let before = mgr.db().clone();
        let mut gen = generator();
        let t = mgr.begin();
        let s1 = gen.next_txn();
        mgr.step(t, &s1).unwrap();
        mgr.savepoint(t, 1).unwrap();
        let s2 = gen.next_txn();
        mgr.step(t, &s2).unwrap();
        mgr.rollback_to_savepoint(t, 1, std::slice::from_ref(&s2))
            .unwrap();
        // Abort the remainder entirely.
        mgr.abort_txn(t, std::slice::from_ref(&s1)).unwrap();
        assert_eq!(mgr.db(), &before);

        let log = mgr.log_mut();
        log.force().unwrap();
        let recovered = RecoveryManager::recover(log, fresh_db()).unwrap();
        assert_eq!(recovered, before);
    }

    #[test]
    fn recovery_rejects_rollback_to_unknown_savepoint() {
        // Hand-craft a log with a rollback naming a savepoint that was
        // never written: recovery must fail loudly, not guess.
        let mut log = MemLog::default();
        use dlog_core::split::{LogSink, SplitRecord};
        let t = TxnId(1);
        LogSink::write(
            &mut log,
            SplitRecord::Redo {
                txn: t,
                page: 0,
                data: Update::Account { id: 1, delta: 5 }.encode_padded(50).into(),
            }
            .encode(),
        )
        .unwrap();
        LogSink::write(
            &mut log,
            SplitRecord::RollbackTo { txn: t, ordinal: 9 }.encode(),
        )
        .unwrap();
        LogSink::write(&mut log, SplitRecord::Commit { txn: t }.encode()).unwrap();
        LogSink::force(&mut log).unwrap();
        assert!(RecoveryManager::recover(&mut log, fresh_db()).is_err());
    }
}
