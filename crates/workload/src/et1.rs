//! ET1 (debit–credit) transaction generation with the paper's log
//! profile, plus the long "design transaction" workload of §2.
//!
//! §4.1: "Each ET1 transaction in the TABS prototype writes 700 bytes of
//! log data in seven log records. Only the final commit record written by
//! a local ET1 transaction must be forced to disk." The constants below
//! reproduce that profile exactly (see `log_profile_is_700_bytes`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One debit–credit transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Et1Txn {
    /// Account updated.
    pub account: u32,
    /// Teller handling the transaction.
    pub teller: u32,
    /// The teller's branch.
    pub branch: u32,
    /// Amount debited/credited.
    pub delta: i64,
}

/// Database sizing and randomness for the generator.
#[derive(Clone, Debug)]
pub struct Et1Config {
    /// Number of accounts.
    pub accounts: u32,
    /// Number of tellers.
    pub tellers: u32,
    /// Number of branches.
    pub branches: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Et1Config {
    /// A small, laptop-friendly bank.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        Et1Config {
            accounts: 10_000,
            tellers: 100,
            branches: 10,
            seed,
        }
    }
}

/// Seeded ET1 transaction stream.
#[derive(Clone, Debug)]
pub struct Et1Generator {
    cfg: Et1Config,
    rng: StdRng,
}

impl Et1Generator {
    /// Create a generator.
    #[must_use]
    pub fn new(cfg: Et1Config) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Et1Generator { cfg, rng }
    }

    /// The next transaction: uniform account and teller; the branch is
    /// the teller's home branch, as in the benchmark definition.
    pub fn next_txn(&mut self) -> Et1Txn {
        let account = self.rng.gen_range(0..self.cfg.accounts);
        let teller = self.rng.gen_range(0..self.cfg.tellers);
        let branch = teller % self.cfg.branches;
        let mut delta = self.rng.gen_range(-999_999i64..=999_999);
        if delta == 0 {
            delta = 1;
        }
        Et1Txn {
            account,
            teller,
            branch,
            delta,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &Et1Config {
        &self.cfg
    }
}

/// The ET1 log profile of §4.1.
pub mod profile {
    /// Log records per transaction.
    pub const RECORDS_PER_TXN: usize = 7;
    /// Total log bytes per transaction (encoded records).
    pub const BYTES_PER_TXN: usize = 700;
    /// Forced writes per transaction (the commit record).
    pub const FORCES_PER_TXN: usize = 1;

    /// Encoded-size overhead of a `SplitRecord::Redo` (kind + txn + page).
    pub const REDO_OVERHEAD: usize = 17;
    /// Encoded size of a `SplitRecord::Commit`.
    pub const COMMIT_BYTES: usize = 9;

    /// Payload bytes of the six data records: account, teller, branch
    /// updates, the history insert, and two bookkeeping records. Chosen
    /// so that six redo records plus the commit encode to exactly 700
    /// bytes: 6·17 + Σ payloads + 9 = 700.
    pub const DATA_PAYLOADS: [usize; 6] = [100, 100, 100, 120, 85, 84];

    /// Fraction of each data payload that is the undo (before-image)
    /// component — the part §5.2 splitting keeps out of the log.
    pub const UNDO_FRACTION: f64 = 0.5;

    /// Undo bytes of data record `i`.
    #[must_use]
    pub fn undo_bytes(i: usize) -> usize {
        (DATA_PAYLOADS[i] as f64 * UNDO_FRACTION) as usize
    }

    /// Redo bytes of data record `i` (classic records carry both).
    #[must_use]
    pub fn redo_bytes(i: usize) -> usize {
        DATA_PAYLOADS[i] - undo_bytes(i)
    }
}

/// A long-running workstation transaction (§2: "long running
/// transactions are likely to contain many subtransactions or to use
/// frequent save points").
#[derive(Clone, Debug)]
pub struct LongTxn {
    /// The debit–credit steps the transaction performs.
    pub steps: Vec<Et1Txn>,
    /// A savepoint marker is logged every this many steps.
    pub savepoint_every: usize,
}

/// Generator of long design transactions.
#[derive(Clone, Debug)]
pub struct LongTxnGenerator {
    inner: Et1Generator,
    steps: usize,
    savepoint_every: usize,
}

impl LongTxnGenerator {
    /// Long transactions of `steps` updates with savepoints every
    /// `savepoint_every` steps.
    #[must_use]
    pub fn new(cfg: Et1Config, steps: usize, savepoint_every: usize) -> Self {
        LongTxnGenerator {
            inner: Et1Generator::new(cfg),
            steps,
            savepoint_every: savepoint_every.max(1),
        }
    }

    /// The next long transaction.
    pub fn next_txn(&mut self) -> LongTxn {
        let steps = (0..self.steps).map(|_| self.inner.next_txn()).collect();
        LongTxn {
            steps,
            savepoint_every: self.savepoint_every,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_profile_is_700_bytes() {
        let data: usize = profile::DATA_PAYLOADS
            .iter()
            .map(|p| p + profile::REDO_OVERHEAD)
            .sum();
        assert_eq!(data + profile::COMMIT_BYTES, profile::BYTES_PER_TXN);
        assert_eq!(profile::DATA_PAYLOADS.len() + 1, profile::RECORDS_PER_TXN);
        // Redo + undo partitions each payload.
        for i in 0..6 {
            assert_eq!(
                profile::redo_bytes(i) + profile::undo_bytes(i),
                profile::DATA_PAYLOADS[i]
            );
        }
    }

    #[test]
    fn generator_is_deterministic_and_in_range() {
        let cfg = Et1Config::small(9);
        let mut g1 = Et1Generator::new(cfg.clone());
        let mut g2 = Et1Generator::new(cfg.clone());
        for _ in 0..1000 {
            let a = g1.next_txn();
            let b = g2.next_txn();
            assert_eq!(a, b);
            assert!(a.account < cfg.accounts);
            assert!(a.teller < cfg.tellers);
            assert_eq!(a.branch, a.teller % cfg.branches);
            assert!(a.delta != 0);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut g1 = Et1Generator::new(Et1Config::small(1));
        let mut g2 = Et1Generator::new(Et1Config::small(2));
        let same = (0..100).filter(|_| g1.next_txn() == g2.next_txn()).count();
        assert!(same < 5);
    }

    #[test]
    fn long_txns() {
        let mut g = LongTxnGenerator::new(Et1Config::small(3), 50, 10);
        let t = g.next_txn();
        assert_eq!(t.steps.len(), 50);
        assert_eq!(t.savepoint_every, 10);
    }
}
