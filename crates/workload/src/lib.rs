//! Transaction workloads and a recovery manager over replicated logs.
//!
//! §2 of the paper names two client populations: multicomputer nodes
//! running short **ET1** transactions (the debit–credit benchmark of
//! "A Measure of Transaction Processing Power", a.k.a. TP1/DebitCredit),
//! and workstations running **long design transactions** with many
//! subtransactions or savepoints. §4.1 builds its whole capacity analysis
//! on the ET1 log profile: *700 bytes of log data in seven log records,
//! only the final commit record forced*.
//!
//! This crate provides:
//!
//! * [`et1`] — the ET1 transaction generator with exactly that log
//!   profile, plus a long-transaction generator for the workstation case;
//! * [`bank`] — the page-structured account/teller/branch/history
//!   database ET1 updates, with conservation invariants;
//! * [`recovery`] — a redo/undo recovery manager that runs transactions
//!   against the bank over any log ([`recovery::LogAccess`]), aborts from
//!   the §5.2 undo cache, and rebuilds the database from the log after a
//!   crash.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod et1;
pub mod recovery;

pub use bank::BankDb;
pub use et1::{Et1Config, Et1Generator, Et1Txn};
pub use recovery::{LogAccess, RecoveryManager};
