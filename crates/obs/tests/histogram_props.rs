//! Property tests for the latency histogram: merging is associative and
//! commutative, percentile extraction is monotone in `p` and bounded by
//! the recorded max, and the bucket boundaries partition the full `u64`
//! range with no panics.

use proptest::prelude::*;

use dlog_obs::{bucket_ceiling, bucket_index, HistogramSnapshot, LatencyHistogram, BUCKETS};

fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..16,        // tiny values around bucket 0
            1u64..1_000_000, // realistic nanosecond latencies
            any::<u64>(),    // the whole range, extremes included
        ],
        0..64,
    )
}

fn arb_snapshot() -> impl Strategy<Value = HistogramSnapshot> {
    arb_values().prop_map(|vs| {
        let mut s = HistogramSnapshot::empty();
        for v in vs {
            s.record(v);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every u64 lands in exactly one in-range bucket: `v` is at most its
    /// bucket's ceiling and strictly above the previous bucket's.
    #[test]
    fn buckets_cover_u64(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(v <= bucket_ceiling(i));
        if i > 0 {
            prop_assert!(v > bucket_ceiling(i - 1));
        }
    }

    /// Bucket ceilings are strictly increasing, so the buckets are
    /// disjoint and ordered.
    #[test]
    fn ceilings_strictly_increase(i in 0usize..BUCKETS - 1) {
        prop_assert!(bucket_ceiling(i) < bucket_ceiling(i + 1));
    }

    /// Merge is commutative.
    #[test]
    fn merge_commutative(a in arb_snapshot(), b in arb_snapshot()) {
        prop_assert_eq!(a.merge(&b), b.merge(&a));
    }

    /// Merge is associative.
    #[test]
    fn merge_associative(a in arb_snapshot(), b in arb_snapshot(), c in arb_snapshot()) {
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    }

    /// Merging with the empty snapshot is the identity.
    #[test]
    fn merge_identity(a in arb_snapshot()) {
        prop_assert_eq!(a.merge(&HistogramSnapshot::empty()), a);
    }

    /// Percentile extraction is monotone in p and never exceeds max.
    #[test]
    fn percentile_monotone(s in arb_snapshot(), p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(s.percentile(lo) <= s.percentile(hi));
        prop_assert!(s.percentile(hi) <= s.max);
    }

    /// Recording never panics anywhere in u64, the count adds up, and the
    /// concurrent histogram agrees with the plain snapshot built from the
    /// same values.
    #[test]
    fn record_no_panics_and_counts(vs in arb_values()) {
        let live = LatencyHistogram::new();
        let mut plain = HistogramSnapshot::empty();
        for &v in &vs {
            live.record(v);
            plain.record(v);
        }
        let snap = live.snapshot();
        prop_assert_eq!(snap, plain);
        prop_assert_eq!(snap.count(), vs.len() as u64);
        prop_assert_eq!(snap.max, vs.iter().copied().max().unwrap_or(0));
    }

    /// The sparse wire form loses nothing.
    #[test]
    fn sparse_roundtrip(s in arb_snapshot()) {
        prop_assert_eq!(HistogramSnapshot::from_sparse(&s.sparse(), s.max), s);
    }

    /// The percentile of everything (p = 1.0) is exactly the max, and the
    /// answer for any p is the ceiling of a non-empty bucket.
    #[test]
    fn percentile_hits_occupied_buckets(s in arb_snapshot(), p in 0.0f64..1.0) {
        prop_assume!(s.count() > 0);
        prop_assert_eq!(s.percentile(1.0), s.max);
        let q = s.percentile(p);
        let covered = s
            .sparse()
            .iter()
            .any(|(i, _)| bucket_ceiling(*i as usize).min(s.max) == q);
        prop_assert!(covered, "percentile {q} is not an occupied bucket bound");
    }
}
