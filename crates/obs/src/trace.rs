//! The deterministic stage-event trace: a bounded ring of typed events
//! keyed by LSN, so one record's full path — client write, packet send,
//! server ingest, force, acknowledgment, archive tick — can be
//! reconstructed after the fact.
//!
//! Events carry **no wall-clock data**: a sequence number, a stage tag,
//! an LSN, and a stage-specific detail word. Under a deterministic
//! schedule (seeded faults, synchronous pumping) two runs therefore
//! produce byte-identical traces — which `tests/trace_determinism.rs`
//! asserts, and which makes trace diffs a usable debugging tool.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A pipeline stage that can emit trace events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Client buffered a record (`lsn` = assigned LSN, `detail` = bytes).
    ClientWrite,
    /// An endpoint sent a packet (`lsn` = the packet's LSN hint,
    /// `detail` = destination node address).
    PacketSend,
    /// Server ingested a write/force batch (`lsn` = highest LSN in the
    /// batch, `detail` = records accepted).
    ServerIngest,
    /// Storage forced a client's records durable (`lsn` = the client's
    /// stored high LSN, `detail` = client id).
    Force,
    /// Server acknowledged with `NewHighLsn` (`lsn` = acked LSN,
    /// `detail` = `client_id << 1 | forced`, where `forced` is 1 for a
    /// `ForceLog` reply and 0 for an unsolicited lazy ack).
    AckHighLsn,
    /// Archive tier uploaded during an idle tick (`lsn` = last manifest
    /// LSN, `detail` = archived bytes).
    ArchiveTick,
    /// Group-commit round: one physical force covering every client
    /// whose `ForceLog` arrived within the coalescing window (`lsn` =
    /// highest LSN forced in the round, `detail` = batch size in
    /// clients). The stage histogram records **batch sizes**, not
    /// latencies — each round samples its client count.
    GroupCommit,
    /// A server crashed, losing volatile state — sessions, unacked
    /// counters, and pending group-commit obligations — while NVRAM and
    /// the on-disk stream survive (`lsn` = durable stream end position,
    /// `detail` = server id). Emitted by harnesses that simulate
    /// crashes (the model checker, the soak cluster), so counterexample
    /// traces show exactly where volatile state was lost.
    Crash,
    /// A crashed server completed recovery — checkpoint load, tail
    /// scan, NVRAM replay — and is serving again (`lsn` = durable
    /// stream end after recovery, `detail` = server id).
    Recover,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 9;

    /// Every stage, in tag order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::ClientWrite,
        Stage::PacketSend,
        Stage::ServerIngest,
        Stage::Force,
        Stage::AckHighLsn,
        Stage::ArchiveTick,
        Stage::GroupCommit,
        Stage::Crash,
        Stage::Recover,
    ];

    /// Dense index (also the wire tag).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Stage::ClientWrite => 0,
            Stage::PacketSend => 1,
            Stage::ServerIngest => 2,
            Stage::Force => 3,
            Stage::AckHighLsn => 4,
            Stage::ArchiveTick => 5,
            Stage::GroupCommit => 6,
            Stage::Crash => 7,
            Stage::Recover => 8,
        }
    }

    /// Wire tag.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        self.index() as u8
    }

    /// Decode a wire tag.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<Stage> {
        Stage::ALL.get(v as usize).copied()
    }

    /// Human-readable stage name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::ClientWrite => "client_write",
            Stage::PacketSend => "packet_send",
            Stage::ServerIngest => "server_ingest",
            Stage::Force => "force",
            Stage::AckHighLsn => "ack_high_lsn",
            Stage::ArchiveTick => "archive_tick",
            Stage::GroupCommit => "group_commit",
            Stage::Crash => "crash",
            Stage::Recover => "recover",
        }
    }
}

/// One trace event. Deliberately `Copy` and wall-clock-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global emission order within one [`crate::Obs`] handle.
    pub seq: u64,
    /// Which stage emitted it.
    pub stage: Stage,
    /// The LSN the event is keyed by (0 when not applicable).
    pub lsn: u64,
    /// Stage-specific detail word (see [`Stage`] docs).
    pub detail: u64,
}

impl TraceEvent {
    /// Canonical byte form (little endian), used by the determinism test
    /// to compare whole traces byte-for-byte.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; 25] {
        let mut out = [0u8; 25];
        for (slot, b) in out.iter_mut().zip(
            self.seq
                .to_le_bytes()
                .into_iter()
                .chain([self.stage.as_u8()])
                .chain(self.lsn.to_le_bytes())
                .chain(self.detail.to_le_bytes()),
        ) {
            *slot = b;
        }
        out
    }
}

struct Ring {
    buf: VecDeque<TraceEvent>,
    pushed: u64,
    dropped: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s. The buffer is preallocated
/// at construction, so pushes never allocate; when full, the oldest
/// event is dropped and counted.
pub struct TraceLog {
    cap: usize,
    ring: Mutex<Ring>,
}

impl TraceLog {
    /// A ring holding at most `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> TraceLog {
        let cap = capacity.max(1);
        TraceLog {
            cap,
            ring: Mutex::new(Ring {
                buf: VecDeque::with_capacity(cap),
                pushed: 0,
                dropped: 0,
            }),
        }
    }

    /// Append an event, evicting the oldest when full. A poisoned lock
    /// (a panicking peer thread) silently drops the event — tracing must
    /// never take the process down.
    pub fn push(&self, ev: TraceEvent) {
        let Ok(mut g) = self.ring.lock() else { return };
        if g.buf.len() == self.cap {
            g.buf.pop_front();
            g.dropped += 1;
        }
        g.buf.push_back(ev);
        g.pushed += 1;
    }

    /// The retained events ordered by `seq`, plus lifetime totals
    /// `(events, dropped)`.
    #[must_use]
    pub fn snapshot(&self) -> (Vec<TraceEvent>, u64, u64) {
        let Ok(g) = self.ring.lock() else {
            return (Vec::new(), 0, 0);
        };
        let mut events: Vec<TraceEvent> = g.buf.iter().copied().collect();
        events.sort_by_key(|e| e.seq);
        (events, g.pushed, g.dropped)
    }
}

/// The runtime twin of `dlog-lint`'s `ack-after-force` rule: every
/// *forced* `AckHighLsn` event (detail low bit set) must be preceded in
/// the trace by a `Force` event for the same client and LSN.
///
/// # Errors
/// Describes the first unmatched acknowledgment.
pub fn check_force_before_ack(events: &[TraceEvent]) -> Result<(), String> {
    let mut forced: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
    for e in events {
        match e.stage {
            Stage::Force => {
                forced.insert((e.detail, e.lsn));
            }
            Stage::AckHighLsn if e.detail & 1 == 1 => {
                let client = e.detail >> 1;
                if !forced.contains(&(client, e.lsn)) {
                    return Err(format!(
                        "trace seq {}: forced AckHighLsn for client {} lsn {} \
                         has no preceding Force event",
                        e.seq, client, e.lsn
                    ));
                }
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, stage: Stage, lsn: u64, detail: u64) -> TraceEvent {
        TraceEvent {
            seq,
            stage,
            lsn,
            detail,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let t = TraceLog::new(2);
        for i in 0..5u64 {
            t.push(ev(i, Stage::ClientWrite, i, 0));
        }
        let (events, pushed, dropped) = t.snapshot();
        assert_eq!(pushed, 5);
        assert_eq!(dropped, 3);
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), [3, 4]);
    }

    #[test]
    fn stage_tags_roundtrip() {
        for s in Stage::ALL {
            assert_eq!(Stage::from_u8(s.as_u8()), Some(s));
        }
        assert_eq!(Stage::from_u8(9), None);
    }

    #[test]
    fn force_before_ack_invariant() {
        // client 3, lsn 10: forced ack preceded by its force — ok.
        let good = [
            ev(0, Stage::Force, 10, 3),
            ev(1, Stage::AckHighLsn, 10, (3 << 1) | 1),
            // unsolicited ack needs no force:
            ev(2, Stage::AckHighLsn, 11, 3 << 1),
        ];
        assert!(check_force_before_ack(&good).is_ok());

        let bad = [ev(0, Stage::AckHighLsn, 10, (3 << 1) | 1)];
        let err = check_force_before_ack(&bad).unwrap_err();
        assert!(err.contains("client 3"), "{err}");
    }

    #[test]
    fn event_bytes_are_canonical() {
        let e = ev(1, Stage::Force, 2, 3);
        let b = e.to_bytes();
        assert_eq!(b[0], 1);
        assert_eq!(b[8], Stage::Force.as_u8());
        assert_eq!(b[9], 2);
        assert_eq!(b[17], 3);
    }
}
