//! Log₂-bucketed latency histograms.
//!
//! A histogram is 64 power-of-two buckets: bucket 0 holds values `0..=1`,
//! bucket *i* (for *i* ≥ 1) holds `2^i ..= 2^(i+1)-1`, and bucket 63's
//! ceiling saturates at `u64::MAX` — every `u64` value lands in exactly
//! one bucket with no panics. Recording is a pair of relaxed atomic adds
//! (allocation-free, lock-free); snapshots are plain arrays that merge by
//! saturating addition, which makes merging associative and commutative,
//! so per-server histograms can be combined client-side in any order.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per power of two of a `u64`.
pub const BUCKETS: usize = 64;

/// The bucket a value lands in. Total over all of `u64`, never out of
/// range: `0..=1` map to bucket 0, everything else to its log₂.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// Largest value belonging to bucket `i` (saturating at `u64::MAX`).
/// Out-of-range `i` also reports `u64::MAX`.
#[must_use]
pub fn bucket_ceiling(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A concurrent latency histogram. `record` is wait-free; readers take
/// [`LatencyHistogram::snapshot`] and work on the plain copy.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation (nanoseconds by convention).
    pub fn record(&self, v: u64) {
        if let Some(c) = self.counts.get(bucket_index(v)) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copy the current contents into a mergeable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, c) in buckets.iter_mut().zip(self.counts.iter()) {
            *slot = c.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`]: plain data, cheap to
/// merge, and the unit shipped over the wire (sparsely) by
/// `Response::Stats`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
    /// Largest value ever recorded (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0u64; BUCKETS],
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// Record into the snapshot directly (used when rebuilding from the
    /// wire or in tests; the live path records into [`LatencyHistogram`]).
    pub fn record(&mut self, v: u64) {
        if let Some(c) = self.buckets.get_mut(bucket_index(v)) {
            *c = c.saturating_add(1);
        }
        self.max = self.max.max(v);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, b| a.saturating_add(*b))
    }

    /// Merge two snapshots: per-bucket saturating sums and the larger
    /// max. Associative and commutative, so any merge order agrees.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        for (slot, b) in out.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot = slot.saturating_add(*b);
        }
        out.max = out.max.max(other.max);
        out
    }

    /// Upper bound of the bucket holding the `p`-quantile observation
    /// (`p` in `0.0..=1.0`), clamped to the recorded max; 0 when empty.
    /// Monotone in `p`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let rank = rank.clamp(1, total);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(*b);
            if cum >= rank {
                return bucket_ceiling(i).min(self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(index, count)` pairs — the wire form.
    #[must_use]
    pub fn sparse(&self) -> Vec<(u8, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (i as u8, *c))
            .collect()
    }

    /// Rebuild from the wire form. Out-of-range bucket indexes are
    /// ignored rather than panicking.
    #[must_use]
    pub fn from_sparse(pairs: &[(u8, u64)], max: u64) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for (i, c) in pairs {
            if let Some(slot) = out.buckets.get_mut(*i as usize) {
                *slot = slot.saturating_add(*c);
            }
        }
        out.max = max;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_u64() {
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < BUCKETS);
            assert!(v <= bucket_ceiling(i));
            if i > 0 {
                assert!(v > bucket_ceiling(i - 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn percentiles_track_distribution() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max, 1000);
        assert!(s.percentile(0.5) >= 500);
        assert!(s.percentile(0.99) >= 990);
        assert_eq!(s.percentile(1.0), 1000); // clamped to max
        assert!(s.percentile(0.5) <= s.percentile(0.95));
    }

    #[test]
    fn sparse_roundtrip() {
        let mut s = HistogramSnapshot::empty();
        for v in [0u64, 7, 7, 300, u64::MAX] {
            s.record(v);
        }
        let rebuilt = HistogramSnapshot::from_sparse(&s.sparse(), s.max);
        assert_eq!(s, rebuilt);
    }

    #[test]
    fn empty_percentile_is_zero() {
        assert_eq!(HistogramSnapshot::empty().percentile(0.99), 0);
    }
}
