//! Lock-free monotonic counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A lock-free monotonic event counter.
///
/// All operations are relaxed atomics: counters are observability state,
/// never synchronization state, so no ordering edge is implied.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn concurrent_adds_are_not_lost() {
        let c = std::sync::Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
