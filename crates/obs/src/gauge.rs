//! Allocation gauges, re-exported from the `dlog-alloc` counting
//! allocator shim.
//!
//! The zero-copy wire path (PR 8) is validated by *counting*, not by
//! inspection: `dlog-alloc` installs a `#[global_allocator]` that
//! forwards to `std`'s `System` allocator while keeping per-process and
//! per-thread allocation tallies. Components read a gauge before and
//! after a hot-path section and report the delta — the server's
//! `allocs_per_write`, the bench harness's per-scenario column, and the
//! differential wire tests' "no allocation blow-up on malformed input"
//! assertion all come from these three functions.
//!
//! Deltas, not absolutes: the counters are monotone and process-global
//! (or thread-global), so callers must subtract a starting sample with
//! wrapping arithmetic.

pub use dlog_alloc::{process_alloc_bytes, process_allocs, thread_allocs};

#[cfg(test)]
mod tests {
    #[test]
    fn thread_gauge_counts_an_allocation() {
        let before = super::thread_allocs();
        let v = vec![0u8; 4096];
        let after = super::thread_allocs();
        assert!(after.wrapping_sub(before) >= 1, "vec alloc not counted");
        drop(v);
    }

    #[test]
    fn process_gauge_is_monotone() {
        let a = super::process_allocs();
        let _boxed = Box::new([0u8; 128]);
        let b = super::process_allocs();
        assert!(b >= a);
        assert!(super::process_alloc_bytes() > 0);
    }
}
