//! **dlog-obs** — end-to-end observability for the dlog reproduction.
//!
//! The paper sizes the log service analytically (§4.1 capacity, §4.2
//! flow control); this crate is how the reproduction *measures* itself:
//!
//! * [`Counter`] — lock-free monotonic counters;
//! * [`LatencyHistogram`] — log₂-bucketed, mergeable latency histograms
//!   with p50/p95/p99/max extraction;
//! * [`TraceLog`] — a bounded ring of typed, wall-clock-free
//!   [`TraceEvent`]s keyed by LSN, so a record's path from
//!   `ClientWrite` through `PacketSend`, `ServerIngest`, `Force`, and
//!   `AckHighLsn` is reconstructable (and, under a deterministic
//!   schedule, byte-identical across runs).
//!
//! The [`Obs`] handle bundles one histogram per [`Stage`] with one trace
//! ring behind an `Option<Arc<…>>`: a disabled handle
//! ([`ObsOptions::off`]) is a `None` and every probe is a single branch,
//! so instrumentation compiles down to near-zero cost when off, and is
//! allocation-free on the hot path when on.
//!
//! This crate depends only on `dlog-alloc` (the counting global
//! allocator behind [`gauge`]) so every layer of the workspace can
//! carry a handle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod gauge;
pub mod hist;
pub mod trace;

pub use counter::Counter;
pub use hist::{bucket_ceiling, bucket_index, HistogramSnapshot, LatencyHistogram, BUCKETS};
pub use trace::{check_force_before_ack, Stage, TraceEvent, TraceLog};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How much observability a component should carry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsOptions {
    /// Collect anything at all.
    pub enabled: bool,
    /// Trace ring capacity in events.
    pub trace_capacity: usize,
}

impl ObsOptions {
    /// Observability disabled: probes are single-branch no-ops.
    #[must_use]
    pub fn off() -> ObsOptions {
        ObsOptions {
            enabled: false,
            trace_capacity: 0,
        }
    }

    /// Observability on with the default trace ring (65 536 events).
    #[must_use]
    pub fn on() -> ObsOptions {
        ObsOptions {
            enabled: true,
            trace_capacity: 1 << 16,
        }
    }

    /// Adjust the trace ring capacity.
    #[must_use]
    pub fn with_trace_capacity(mut self, capacity: usize) -> ObsOptions {
        self.trace_capacity = capacity;
        self
    }
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions::off()
    }
}

struct ObsCore {
    seq: AtomicU64,
    stages: [LatencyHistogram; Stage::COUNT],
    trace: TraceLog,
}

/// A cloneable observability handle. Clones share the same counters,
/// histograms, and trace ring, so a server, its store, and its endpoint
/// can feed one coherent trace.
#[derive(Clone, Default)]
pub struct Obs(Option<Arc<ObsCore>>);

impl Obs {
    /// Build a handle per `opts` (disabled options give a no-op handle).
    #[must_use]
    pub fn new(opts: &ObsOptions) -> Obs {
        if !opts.enabled {
            return Obs(None);
        }
        Obs(Some(Arc::new(ObsCore {
            seq: AtomicU64::new(0),
            stages: std::array::from_fn(|_| LatencyHistogram::new()),
            trace: TraceLog::new(opts.trace_capacity),
        })))
    }

    /// A permanently disabled handle.
    #[must_use]
    pub fn off() -> Obs {
        Obs(None)
    }

    /// Is anything being collected?
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Emit a trace event. The sequence number is drawn from a shared
    /// atomic, so events from every clone of this handle interleave into
    /// one total order.
    pub fn event(&self, stage: Stage, lsn: u64, detail: u64) {
        let Some(core) = &self.0 else { return };
        let seq = core.seq.fetch_add(1, Ordering::Relaxed);
        core.trace.push(TraceEvent {
            seq,
            stage,
            lsn,
            detail,
        });
    }

    /// Record a latency sample (nanoseconds) against a stage.
    pub fn sample(&self, stage: Stage, nanos: u64) {
        let Some(core) = &self.0 else { return };
        if let Some(h) = core.stages.get(stage.index()) {
            h.record(nanos);
        }
    }

    /// Start a timing span — `None` (and therefore free) when disabled.
    #[must_use]
    pub fn start(&self) -> Option<Instant> {
        if self.0.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Close a timing span opened by [`Obs::start`].
    pub fn sample_since(&self, stage: Stage, started: Option<Instant>) {
        if let Some(t) = started {
            self.sample(stage, t.elapsed().as_nanos() as u64);
        }
    }

    /// Copy out everything collected so far (`None` when disabled).
    #[must_use]
    pub fn snapshot(&self) -> Option<ObsSnapshot> {
        let core = self.0.as_ref()?;
        let stages = Stage::ALL
            .iter()
            .map(|s| StageSnapshot {
                stage: *s,
                hist: core
                    .stages
                    .get(s.index())
                    .map(LatencyHistogram::snapshot)
                    .unwrap_or_default(),
            })
            .collect();
        let (trace, trace_events, trace_dropped) = core.trace.snapshot();
        Some(ObsSnapshot {
            stages,
            trace,
            trace_events,
            trace_dropped,
        })
    }
}

/// One stage's latency histogram in a snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageSnapshot {
    /// The stage.
    pub stage: Stage,
    /// Its latency distribution.
    pub hist: HistogramSnapshot,
}

/// A point-in-time copy of an [`Obs`] handle's state.
#[derive(Clone, Debug)]
pub struct ObsSnapshot {
    /// One histogram per stage, in [`Stage::ALL`] order.
    pub stages: Vec<StageSnapshot>,
    /// Retained trace events ordered by sequence number.
    pub trace: Vec<TraceEvent>,
    /// Events ever emitted.
    pub trace_events: u64,
    /// Events evicted from the ring.
    pub trace_dropped: u64,
}

impl ObsSnapshot {
    /// The histogram for one stage (empty when absent).
    #[must_use]
    pub fn stage(&self, stage: Stage) -> HistogramSnapshot {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| s.hist)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::new(&ObsOptions::off());
        assert!(!obs.enabled());
        assert!(obs.start().is_none());
        obs.event(Stage::Force, 1, 2);
        obs.sample(Stage::Force, 3);
        assert!(obs.snapshot().is_none());
    }

    #[test]
    fn clones_share_one_trace() {
        let obs = Obs::new(&ObsOptions::on().with_trace_capacity(16));
        let other = obs.clone();
        obs.event(Stage::ClientWrite, 1, 0);
        other.event(Stage::Force, 1, 7);
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.trace_events, 2);
        assert_eq!(snap.trace.len(), 2);
        assert_eq!(snap.trace[0].stage, Stage::ClientWrite);
        assert_eq!(snap.trace[1].stage, Stage::Force);
    }

    #[test]
    fn samples_land_in_stage_histograms() {
        let obs = Obs::new(&ObsOptions::on());
        obs.sample(Stage::PacketSend, 100);
        obs.sample(Stage::PacketSend, 200);
        let span = obs.start();
        obs.sample_since(Stage::Force, span);
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.stage(Stage::PacketSend).count(), 2);
        assert_eq!(snap.stage(Stage::PacketSend).max, 200);
        assert_eq!(snap.stage(Stage::Force).count(), 1);
        assert_eq!(snap.stage(Stage::ClientWrite).count(), 0);
    }
}
