//! Shared pieces of the `dlog` command-line tools: tiny hand-rolled
//! argument parsing (the workspace stays dependency-light) and client
//! construction over UDP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::net::SocketAddr;

use dlog_core::client::{ClientOptions, ReplicatedLog};
use dlog_core::net::ClientNet;
use dlog_net::udp::UdpEndpoint;
use dlog_net::wire::NodeAddr;
use dlog_types::{ClientId, ReplicationConfig, ServerId};

/// Parsed `--key value` options plus positional arguments.
#[derive(Debug, Default)]
pub struct Args {
    options: HashMap<String, String>,
    /// Positional arguments in order.
    pub positional: Vec<String>,
}

impl Args {
    /// Parse `std::env::args()[1..]`-style input: `--key value` pairs and
    /// bare positionals, in any order.
    ///
    /// # Errors
    /// Returns a message when a `--key` lacks a value.
    pub fn parse(raw: impl Iterator<Item = String>) -> Result<Args, String> {
        let mut args = Args::default();
        let mut raw = raw.peekable();
        while let Some(a) = raw.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = raw.next().ok_or_else(|| format!("--{key} needs a value"))?;
                args.options.insert(key.to_string(), value);
            } else {
                args.positional.push(a);
            }
        }
        Ok(args)
    }

    /// Fetch an option, parsed.
    ///
    /// # Errors
    /// Returns a message on a malformed value.
    pub fn get<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.options.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    /// Fetch an option or a default.
    ///
    /// # Errors
    /// Returns a message on a malformed value.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        Ok(self.get(key)?.unwrap_or(default))
    }

    /// Fetch a required option.
    ///
    /// # Errors
    /// Returns a message when missing or malformed.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.get(key)?.ok_or_else(|| format!("--{key} is required"))
    }
}

/// Parse `host:port,host:port,...` into server socket addresses.
///
/// # Errors
/// Returns a message on malformed addresses.
pub fn parse_server_list(list: &str) -> Result<Vec<SocketAddr>, String> {
    list.split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|e| format!("bad server address {s:?}: {e}"))
        })
        .collect()
}

/// Build a replicated-log client over UDP against the given servers.
///
/// # Errors
/// Returns a message on socket or configuration failures.
pub fn udp_client(
    client_id: u64,
    servers: &[SocketAddr],
    n: usize,
    delta: u64,
) -> Result<ReplicatedLog<UdpEndpoint>, String> {
    let ep = UdpEndpoint::bind(NodeAddr(u64::MAX), "0.0.0.0:0".parse().unwrap())
        .map_err(|e| format!("bind client socket: {e}"))?;
    let mut addrs = HashMap::new();
    let mut ids = Vec::new();
    for (i, &sock) in servers.iter().enumerate() {
        let sid = ServerId(i as u64 + 1);
        ep.add_peer(NodeAddr(sid.0), sock);
        addrs.insert(sid, NodeAddr(sid.0));
        ids.push(sid);
    }
    let config = ReplicationConfig::new(ids, n, delta).map_err(|e| e.to_string())?;
    let mut opts = ClientOptions::new(config);
    // WAN-ish budgets for a CLI.
    opts.ack_timeout = std::time::Duration::from_millis(300);
    let net = ClientNet::new(ep, addrs);
    Ok(ReplicatedLog::new(ClientId(client_id), opts, net))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(ToString::to_string)).unwrap()
    }

    #[test]
    fn parses_options_and_positionals() {
        let a = args(&["--dir", "/tmp/x", "append", "--n", "2", "hello world"]);
        assert_eq!(a.get::<String>("dir").unwrap().unwrap(), "/tmp/x");
        assert_eq!(a.get_or::<usize>("n", 9).unwrap(), 2);
        assert_eq!(a.positional, vec!["append", "hello world"]);
        assert_eq!(a.get_or::<u64>("missing", 7).unwrap(), 7);
    }

    #[test]
    fn rejects_missing_value_and_bad_parse() {
        assert!(Args::parse(["--dir".to_string()].into_iter()).is_err());
        let a = args(&["--n", "abc"]);
        assert!(a.get::<usize>("n").is_err());
        assert!(a.require::<usize>("absent").is_err());
    }

    #[test]
    fn server_list() {
        let v = parse_server_list("127.0.0.1:7001, 127.0.0.1:7002").unwrap();
        assert_eq!(v.len(), 2);
        assert!(parse_server_list("nonsense").is_err());
    }
}
