//! `dlog` — the replicated-log client, on the command line.
//!
//! ```text
//! dlog --servers H:P,H:P,H:P [--client 1] [--n 2] [--delta 8] COMMAND ...
//!
//! commands:
//!   append TEXT...      WriteLog + force each TEXT, print the LSNs
//!   read LSN            print the record at LSN
//!   tail [K]            print the last K (default 10) records
//!   end                 print EndOfLog
//!   repair              re-replicate under-replicated records (§5.3)
//!   status              print each server's operational counters
//!   stats [--json]      print per-stage latency histograms (Stats RPC)
//!   bench [TXNS]        run ET1 transactions (default 100), print TPS
//!
//! offline archive maintenance (no --servers; the server must be stopped):
//!   archive status  --archive DIR            inspect the newest manifest
//!   archive push    --archive DIR --dir DIR  archive everything durable
//!   archive restore --archive DIR --dir DIR  rebuild DIR from the archive
//! ```
//!
//! Each invocation is one client *incarnation*: it runs the §3.1.2
//! restart procedure (drawing a fresh crash epoch and masking δ LSNs)
//! before touching the log — which is exactly what the paper's client
//! node does every time it boots.

use std::process::exit;

use dlog_cli::{parse_server_list, udp_client, Args};
use dlog_types::{DlogError, Lsn};
use dlog_workload::recovery::LogMode;
use dlog_workload::{BankDb, Et1Config, Et1Generator, RecoveryManager};

fn usage() -> &'static str {
    "usage: dlog --servers H:P,H:P,... [--client N] [--n 2] [--delta 8] COMMAND\n\
     commands: append TEXT... | read LSN | tail [K] | end | repair | status | stats [--json] | bench [TXNS]\n\
     offline:  archive status --archive DIR\n\
               archive push --archive DIR --dir DIR [--track-kb 64] [--nvram-kb 1024]\n\
               archive restore --archive DIR --dir DIR"
}

/// `dlog archive {status,push,restore}` — offline archive maintenance
/// against a local-directory object store. `push` and `restore` open the
/// server's store directory directly, so the server must be stopped.
fn run_archive(args: &Args) -> Result<(), String> {
    use dlog_archive::{load_latest, restore, Archiver, LocalDirStore};
    use dlog_storage::{LogStore, NvramDevice, StoreOptions};
    use std::sync::Arc;

    let sub = args
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or("archive needs a subcommand: status | push | restore")?;
    let archive_dir: String = args.require("archive")?;
    let objects = LocalDirStore::open(&archive_dir)
        .map_err(|e| format!("open archive {archive_dir}: {e}"))?;
    match sub {
        "status" => match load_latest(&objects).map_err(|e| e.to_string())? {
            Some(m) => {
                println!(
                    "{archive_dir}: generation {}, {} segments, {} archived bytes, \
                     stream [{}, {}), cut {}, last manifest lsn {}",
                    m.generation,
                    m.segments.len(),
                    m.archived_bytes(),
                    m.start(),
                    m.restore_end,
                    m.cut,
                    m.last_lsn().map_err(|e| e.to_string())?,
                );
            }
            None => println!("{archive_dir}: no valid manifest (empty archive)"),
        },
        "push" | "restore" => {
            let dir: String = args.require("dir")?;
            if sub == "restore" {
                let m = restore(&objects, &dir).map_err(|e| e.to_string())?;
                println!(
                    "restored {dir} from generation {}: {} segments, {} bytes",
                    m.generation,
                    m.segments.len(),
                    m.archived_bytes()
                );
                return Ok(());
            }
            let track_kb: usize = args.get_or("track-kb", 64)?;
            let nvram_kb: usize = args.get_or("nvram-kb", 1024)?;
            let opts = StoreOptions {
                track_bytes: track_kb * 1024,
                ..StoreOptions::default()
            };
            let mut store = LogStore::open(&dir, opts, NvramDevice::new(nvram_kb * 1024))
                .map_err(|e| format!("open store {dir}: {e}"))?;
            let mut archiver = Archiver::new(Arc::new(objects)).map_err(|e| e.to_string())?;
            let before = archiver.manifest().map_or(0, |m| m.restore_end);
            let m = archiver
                .archive_now(&mut store)
                .map_err(|e| e.to_string())?;
            println!(
                "pushed {} new bytes: generation {}, archive covers [{}, {})",
                m.restore_end - before,
                m.generation,
                m.start(),
                m.restore_end
            );
        }
        other => return Err(format!("unknown archive subcommand {other:?}")),
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw
        .iter()
        .any(|a| a == "help" || a == "--help" || a == "-h")
    {
        println!("{}", usage());
        return Ok(());
    }
    // `--json` is a bare flag; the Args parser only understands
    // `--key value` pairs, so extract it before parsing.
    let json = raw.iter().any(|a| a == "--json");
    raw.retain(|a| a != "--json");
    let args = Args::parse(raw.into_iter())?;
    if args.positional.first().map(String::as_str) == Some("archive") {
        return run_archive(&args);
    }
    let servers = parse_server_list(&args.require::<String>("servers")?)?;
    let client: u64 = args.get_or("client", 1)?;
    let n: usize = args.get_or("n", 2.min(servers.len()))?;
    let delta: u64 = args.get_or("delta", 8)?;

    let mut log = udp_client(client, &servers, n, delta)?;
    let cmd = args.positional.first().map(String::as_str).unwrap_or("end");
    if cmd == "status" {
        // Status needs no log initialization (and works even when the
        // init quorum is unavailable).
        use dlog_net::wire::Response;
        for (i, sock) in servers.iter().enumerate() {
            let sid = dlog_types::ServerId(i as u64 + 1);
            match log.server_status(sid) {
                Ok(Response::Status {
                    records_stored,
                    duplicates_ignored,
                    naks_sent,
                    writes_shed,
                    rpcs,
                    forces_acked,
                    clients,
                    on_disk_bytes,
                    tracks_flushed,
                    archived_bytes,
                    pending_upload_bytes,
                    last_manifest_lsn,
                    upload_retries,
                    coalesced_forces,
                    group_commits,
                    shard,
                    shards,
                }) => {
                    let sock = if shards > 1 {
                        format!("{sock}/s{shard}")
                    } else {
                        sock.to_string()
                    };
                    println!(
                        "{sock}: {records_stored} records, {clients} clients, {on_disk_bytes} bytes on disk, {tracks_flushed} tracks, {forces_acked} forces acked, {rpcs} rpcs, {naks_sent} naks, {duplicates_ignored} dups ignored, {writes_shed} shed"
                    );
                    println!(
                        "{sock}: archive: {archived_bytes} bytes archived, {pending_upload_bytes} pending upload, last manifest lsn {last_manifest_lsn}, {upload_retries} upload retries"
                    );
                    println!(
                        "{sock}: group commit: {coalesced_forces} forces coalesced into {group_commits} commits"
                    );
                }
                Ok(other) => println!("{sock}: unexpected reply {other:?}"),
                Err(e) => println!("{sock}: unreachable ({e})"),
            }
        }
        return Ok(());
    }
    if cmd == "stats" {
        // Like status: needs no log initialization, so a degraded cluster
        // can still be inspected.
        use dlog_net::wire::Response;
        use dlog_obs::{HistogramSnapshot, Stage};
        let mut merged: Vec<(u8, HistogramSnapshot)> = Vec::new();
        let mut total_events = 0u64;
        let mut total_dropped = 0u64;
        let mut total_allocs = 0u64;
        let mut total_records = 0u64;
        let mut reached = 0usize;
        for (i, sock) in servers.iter().enumerate() {
            let sid = dlog_types::ServerId(i as u64 + 1);
            match log.server_stats(sid) {
                Ok(Response::Stats {
                    stages,
                    trace_events,
                    trace_dropped,
                    ingest_allocs,
                    ingest_records,
                    shard,
                    shards,
                }) => {
                    reached += 1;
                    if !json && shards > 1 {
                        println!("{sock}: shard {shard} of {shards} (merged rows follow)");
                    }
                    total_events += trace_events;
                    total_dropped += trace_dropped;
                    total_allocs += ingest_allocs;
                    total_records += ingest_records;
                    if !json {
                        println!(
                            "{sock}: {trace_events} trace events ({trace_dropped} dropped), \
                             {} instrumented stages, {ingest_records} records ingested \
                             ({ingest_allocs} ingest allocs)",
                            stages.len()
                        );
                    }
                    for st in stages {
                        let snap = HistogramSnapshot::from_sparse(&st.buckets, st.max_ns);
                        match merged.iter_mut().find(|(s, _)| *s == st.stage) {
                            Some((_, m)) => *m = m.merge(&snap),
                            None => merged.push((st.stage, snap)),
                        }
                    }
                }
                Ok(other) => eprintln!("{sock}: unexpected reply {other:?}"),
                Err(e) => eprintln!("{sock}: unreachable ({e})"),
            }
        }
        merged.sort_by_key(|(s, _)| *s);
        let stage_name =
            |s: u8| Stage::from_u8(s).map_or("unknown".to_string(), |st| st.name().to_string());
        if json {
            let mut out = String::new();
            out.push_str("{\n");
            out.push_str(&format!("  \"servers_reached\": {reached},\n"));
            out.push_str(&format!("  \"trace_events\": {total_events},\n"));
            out.push_str(&format!("  \"trace_dropped\": {total_dropped},\n"));
            out.push_str(&format!("  \"ingest_allocs\": {total_allocs},\n"));
            out.push_str(&format!("  \"ingest_records\": {total_records},\n"));
            out.push_str(&format!(
                "  \"allocs_per_write\": {:.3},\n",
                total_allocs as f64 / total_records.max(1) as f64
            ));
            out.push_str("  \"stages\": {\n");
            for (k, (s, h)) in merged.iter().enumerate() {
                let comma = if k + 1 < merged.len() { "," } else { "" };
                out.push_str(&format!(
                    "    \"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \
                     \"p99_ns\": {}, \"max_ns\": {}}}{comma}\n",
                    stage_name(*s),
                    h.count(),
                    h.percentile(0.50),
                    h.percentile(0.95),
                    h.percentile(0.99),
                    h.max
                ));
            }
            out.push_str("  }\n}");
            println!("{out}");
        } else {
            for (s, h) in &merged {
                println!(
                    "{:>14}: n={} p50={}ns p95={}ns p99={}ns max={}ns",
                    stage_name(*s),
                    h.count(),
                    h.percentile(0.50),
                    h.percentile(0.95),
                    h.percentile(0.99),
                    h.max
                );
            }
            if merged.is_empty() {
                println!("no instrumented stages reported (servers run with obs off?)");
            }
            if total_records > 0 {
                println!(
                    "allocs_per_write: {:.3} ({total_allocs} allocs / {total_records} records)",
                    total_allocs as f64 / total_records as f64
                );
            }
        }
        return Ok(());
    }
    log.initialize().map_err(|e| format!("initialize: {e}"))?;
    match cmd {
        "append" => {
            if args.positional.len() < 2 {
                return Err("append needs at least one TEXT argument".into());
            }
            for text in &args.positional[1..] {
                let lsn = log.write(text.as_bytes()).map_err(|e| e.to_string())?;
                println!("{lsn}");
            }
            log.force().map_err(|e| format!("force: {e}"))?;
        }
        "read" => {
            let lsn: u64 = args
                .positional
                .get(1)
                .ok_or("read needs an LSN")?
                .parse()
                .map_err(|e| format!("bad LSN: {e}"))?;
            match log.read(Lsn(lsn)) {
                Ok(d) => println!("{}", String::from_utf8_lossy(d.as_bytes())),
                Err(DlogError::NotPresent { .. }) => println!("(not present)"),
                Err(e) => return Err(e.to_string()),
            }
        }
        "tail" => {
            let k: u64 = args
                .positional
                .get(1)
                .map_or(Ok(10), |s| s.parse())
                .unwrap_or(10);
            let end = log.end_of_log().map_err(|e| e.to_string())?;
            let lo = end.0.saturating_sub(k).saturating_add(1).max(1);
            for l in lo..=end.0 {
                match log.read(Lsn(l)) {
                    Ok(d) => println!("{l}: {}", String::from_utf8_lossy(d.as_bytes())),
                    Err(DlogError::NotPresent { .. }) => println!("{l}: (not present)"),
                    Err(e) => println!("{l}: <error: {e}>"),
                }
            }
        }
        "end" => {
            println!("{}", log.end_of_log().map_err(|e| e.to_string())?);
        }
        "repair" => {
            let report = log.repair().map_err(|e| e.to_string())?;
            println!(
                "live servers: {}, examined: {}, under-replicated: {}, copied: {}",
                report.live_servers,
                report.records_examined,
                report.under_replicated,
                report.records_copied
            );
        }
        "bench" => {
            let txns: u64 = args
                .positional
                .get(1)
                .map_or(Ok(100), |s| s.parse())
                .unwrap_or(100);
            let db = BankDb::new(10_000, 100, 10);
            let mut mgr = RecoveryManager::new(log, db, LogMode::Classic, 1 << 20);
            let mut gen = Et1Generator::new(Et1Config::small(client));
            let start = std::time::Instant::now();
            for _ in 0..txns {
                mgr.run_et1(&gen.next_txn()).map_err(|e| e.to_string())?;
            }
            let dt = start.elapsed();
            println!(
                "{txns} ET1 transactions in {:.1} ms = {:.0} TPS",
                dt.as_secs_f64() * 1e3,
                txns as f64 / dt.as_secs_f64()
            );
        }
        other => return Err(format!("unknown command {other:?}")),
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("dlog: {e}");
        eprintln!("{}", usage());
        exit(1);
    }
}
