//! `dlog` — the replicated-log client, on the command line.
//!
//! ```text
//! dlog --servers H:P,H:P,H:P [--client 1] [--n 2] [--delta 8] COMMAND ...
//!
//! commands:
//!   append TEXT...      WriteLog + force each TEXT, print the LSNs
//!   read LSN            print the record at LSN
//!   tail [K]            print the last K (default 10) records
//!   end                 print EndOfLog
//!   repair              re-replicate under-replicated records (§5.3)
//!   status              print each server's operational counters
//!   bench [TXNS]        run ET1 transactions (default 100), print TPS
//!
//! offline archive maintenance (no --servers; the server must be stopped):
//!   archive status  --archive DIR            inspect the newest manifest
//!   archive push    --archive DIR --dir DIR  archive everything durable
//!   archive restore --archive DIR --dir DIR  rebuild DIR from the archive
//! ```
//!
//! Each invocation is one client *incarnation*: it runs the §3.1.2
//! restart procedure (drawing a fresh crash epoch and masking δ LSNs)
//! before touching the log — which is exactly what the paper's client
//! node does every time it boots.

use std::process::exit;

use dlog_cli::{parse_server_list, udp_client, Args};
use dlog_types::{DlogError, Lsn};
use dlog_workload::recovery::LogMode;
use dlog_workload::{BankDb, Et1Config, Et1Generator, RecoveryManager};

fn usage() -> &'static str {
    "usage: dlog --servers H:P,H:P,... [--client N] [--n 2] [--delta 8] COMMAND\n\
     commands: append TEXT... | read LSN | tail [K] | end | repair | status | bench [TXNS]\n\
     offline:  archive status --archive DIR\n\
               archive push --archive DIR --dir DIR [--track-kb 64] [--nvram-kb 1024]\n\
               archive restore --archive DIR --dir DIR"
}

/// `dlog archive {status,push,restore}` — offline archive maintenance
/// against a local-directory object store. `push` and `restore` open the
/// server's store directory directly, so the server must be stopped.
fn run_archive(args: &Args) -> Result<(), String> {
    use dlog_archive::{load_latest, restore, Archiver, LocalDirStore};
    use dlog_storage::{LogStore, NvramDevice, StoreOptions};
    use std::sync::Arc;

    let sub = args
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or("archive needs a subcommand: status | push | restore")?;
    let archive_dir: String = args.require("archive")?;
    let objects = LocalDirStore::open(&archive_dir)
        .map_err(|e| format!("open archive {archive_dir}: {e}"))?;
    match sub {
        "status" => match load_latest(&objects).map_err(|e| e.to_string())? {
            Some(m) => {
                println!(
                    "{archive_dir}: generation {}, {} segments, {} archived bytes, \
                     stream [{}, {}), cut {}, last manifest lsn {}",
                    m.generation,
                    m.segments.len(),
                    m.archived_bytes(),
                    m.start(),
                    m.restore_end,
                    m.cut,
                    m.last_lsn().map_err(|e| e.to_string())?,
                );
            }
            None => println!("{archive_dir}: no valid manifest (empty archive)"),
        },
        "push" | "restore" => {
            let dir: String = args.require("dir")?;
            if sub == "restore" {
                let m = restore(&objects, &dir).map_err(|e| e.to_string())?;
                println!(
                    "restored {dir} from generation {}: {} segments, {} bytes",
                    m.generation,
                    m.segments.len(),
                    m.archived_bytes()
                );
                return Ok(());
            }
            let track_kb: usize = args.get_or("track-kb", 64)?;
            let nvram_kb: usize = args.get_or("nvram-kb", 1024)?;
            let opts = StoreOptions {
                track_bytes: track_kb * 1024,
                ..StoreOptions::default()
            };
            let mut store = LogStore::open(&dir, opts, NvramDevice::new(nvram_kb * 1024))
                .map_err(|e| format!("open store {dir}: {e}"))?;
            let mut archiver = Archiver::new(Arc::new(objects)).map_err(|e| e.to_string())?;
            let before = archiver.manifest().map_or(0, |m| m.restore_end);
            let m = archiver
                .archive_now(&mut store)
                .map_err(|e| e.to_string())?;
            println!(
                "pushed {} new bytes: generation {}, archive covers [{}, {})",
                m.restore_end - before,
                m.generation,
                m.start(),
                m.restore_end
            );
        }
        other => return Err(format!("unknown archive subcommand {other:?}")),
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw
        .iter()
        .any(|a| a == "help" || a == "--help" || a == "-h")
    {
        println!("{}", usage());
        return Ok(());
    }
    let args = Args::parse(raw.into_iter())?;
    if args.positional.first().map(String::as_str) == Some("archive") {
        return run_archive(&args);
    }
    let servers = parse_server_list(&args.require::<String>("servers")?)?;
    let client: u64 = args.get_or("client", 1)?;
    let n: usize = args.get_or("n", 2.min(servers.len()))?;
    let delta: u64 = args.get_or("delta", 8)?;

    let mut log = udp_client(client, &servers, n, delta)?;
    let cmd = args.positional.first().map(String::as_str).unwrap_or("end");
    if cmd == "status" {
        // Status needs no log initialization (and works even when the
        // init quorum is unavailable).
        use dlog_net::wire::Response;
        for (i, sock) in servers.iter().enumerate() {
            let sid = dlog_types::ServerId(i as u64 + 1);
            match log.server_status(sid) {
                Ok(Response::Status {
                    records_stored,
                    duplicates_ignored,
                    naks_sent,
                    writes_shed,
                    rpcs,
                    forces_acked,
                    clients,
                    on_disk_bytes,
                    tracks_flushed,
                    archived_bytes,
                    pending_upload_bytes,
                    last_manifest_lsn,
                    upload_retries,
                }) => {
                    println!(
                        "{sock}: {records_stored} records, {clients} clients, {on_disk_bytes} bytes on disk, {tracks_flushed} tracks, {forces_acked} forces acked, {rpcs} rpcs, {naks_sent} naks, {duplicates_ignored} dups ignored, {writes_shed} shed"
                    );
                    println!(
                        "{sock}: archive: {archived_bytes} bytes archived, {pending_upload_bytes} pending upload, last manifest lsn {last_manifest_lsn}, {upload_retries} upload retries"
                    );
                }
                Ok(other) => println!("{sock}: unexpected reply {other:?}"),
                Err(e) => println!("{sock}: unreachable ({e})"),
            }
        }
        return Ok(());
    }
    log.initialize().map_err(|e| format!("initialize: {e}"))?;
    match cmd {
        "append" => {
            if args.positional.len() < 2 {
                return Err("append needs at least one TEXT argument".into());
            }
            for text in &args.positional[1..] {
                let lsn = log.write(text.as_bytes()).map_err(|e| e.to_string())?;
                println!("{lsn}");
            }
            log.force().map_err(|e| format!("force: {e}"))?;
        }
        "read" => {
            let lsn: u64 = args
                .positional
                .get(1)
                .ok_or("read needs an LSN")?
                .parse()
                .map_err(|e| format!("bad LSN: {e}"))?;
            match log.read(Lsn(lsn)) {
                Ok(d) => println!("{}", String::from_utf8_lossy(d.as_bytes())),
                Err(DlogError::NotPresent { .. }) => println!("(not present)"),
                Err(e) => return Err(e.to_string()),
            }
        }
        "tail" => {
            let k: u64 = args
                .positional
                .get(1)
                .map_or(Ok(10), |s| s.parse())
                .unwrap_or(10);
            let end = log.end_of_log().map_err(|e| e.to_string())?;
            let lo = end.0.saturating_sub(k).saturating_add(1).max(1);
            for l in lo..=end.0 {
                match log.read(Lsn(l)) {
                    Ok(d) => println!("{l}: {}", String::from_utf8_lossy(d.as_bytes())),
                    Err(DlogError::NotPresent { .. }) => println!("{l}: (not present)"),
                    Err(e) => println!("{l}: <error: {e}>"),
                }
            }
        }
        "end" => {
            println!("{}", log.end_of_log().map_err(|e| e.to_string())?);
        }
        "repair" => {
            let report = log.repair().map_err(|e| e.to_string())?;
            println!(
                "live servers: {}, examined: {}, under-replicated: {}, copied: {}",
                report.live_servers,
                report.records_examined,
                report.under_replicated,
                report.records_copied
            );
        }
        "bench" => {
            let txns: u64 = args
                .positional
                .get(1)
                .map_or(Ok(100), |s| s.parse())
                .unwrap_or(100);
            let db = BankDb::new(10_000, 100, 10);
            let mut mgr = RecoveryManager::new(log, db, LogMode::Classic, 1 << 20);
            let mut gen = Et1Generator::new(Et1Config::small(client));
            let start = std::time::Instant::now();
            for _ in 0..txns {
                mgr.run_et1(&gen.next_txn()).map_err(|e| e.to_string())?;
            }
            let dt = start.elapsed();
            println!(
                "{txns} ET1 transactions in {:.1} ms = {:.0} TPS",
                dt.as_secs_f64() * 1e3,
                txns as f64 / dt.as_secs_f64()
            );
        }
        other => return Err(format!("unknown command {other:?}")),
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("dlog: {e}");
        eprintln!("{}", usage());
        exit(1);
    }
}
