//! `dlog` — the replicated-log client, on the command line.
//!
//! ```text
//! dlog --servers H:P,H:P,H:P [--client 1] [--n 2] [--delta 8] COMMAND ...
//!
//! commands:
//!   append TEXT...      WriteLog + force each TEXT, print the LSNs
//!   read LSN            print the record at LSN
//!   tail [K]            print the last K (default 10) records
//!   end                 print EndOfLog
//!   repair              re-replicate under-replicated records (§5.3)
//!   status              print each server's operational counters
//!   bench [TXNS]        run ET1 transactions (default 100), print TPS
//! ```
//!
//! Each invocation is one client *incarnation*: it runs the §3.1.2
//! restart procedure (drawing a fresh crash epoch and masking δ LSNs)
//! before touching the log — which is exactly what the paper's client
//! node does every time it boots.

use std::process::exit;

use dlog_cli::{parse_server_list, udp_client, Args};
use dlog_types::{DlogError, Lsn};
use dlog_workload::recovery::LogMode;
use dlog_workload::{BankDb, Et1Config, Et1Generator, RecoveryManager};

fn usage() -> &'static str {
    "usage: dlog --servers H:P,H:P,... [--client N] [--n 2] [--delta 8] COMMAND\n\
     commands: append TEXT... | read LSN | tail [K] | end | repair | status | bench [TXNS]"
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw
        .iter()
        .any(|a| a == "help" || a == "--help" || a == "-h")
    {
        println!("{}", usage());
        return Ok(());
    }
    let args = Args::parse(raw.into_iter())?;
    let servers = parse_server_list(&args.require::<String>("servers")?)?;
    let client: u64 = args.get_or("client", 1)?;
    let n: usize = args.get_or("n", 2.min(servers.len()))?;
    let delta: u64 = args.get_or("delta", 8)?;

    let mut log = udp_client(client, &servers, n, delta)?;
    let cmd = args.positional.first().map(String::as_str).unwrap_or("end");
    if cmd == "status" {
        // Status needs no log initialization (and works even when the
        // init quorum is unavailable).
        use dlog_net::wire::Response;
        for (i, sock) in servers.iter().enumerate() {
            let sid = dlog_types::ServerId(i as u64 + 1);
            match log.server_status(sid) {
                Ok(Response::Status {
                    records_stored,
                    duplicates_ignored,
                    naks_sent,
                    writes_shed,
                    rpcs,
                    forces_acked,
                    clients,
                    on_disk_bytes,
                    tracks_flushed,
                }) => println!(
                    "{sock}: {records_stored} records, {clients} clients, {on_disk_bytes} bytes on disk, {tracks_flushed} tracks, {forces_acked} forces acked, {rpcs} rpcs, {naks_sent} naks, {duplicates_ignored} dups ignored, {writes_shed} shed"
                ),
                Ok(other) => println!("{sock}: unexpected reply {other:?}"),
                Err(e) => println!("{sock}: unreachable ({e})"),
            }
        }
        return Ok(());
    }
    log.initialize().map_err(|e| format!("initialize: {e}"))?;
    match cmd {
        "append" => {
            if args.positional.len() < 2 {
                return Err("append needs at least one TEXT argument".into());
            }
            for text in &args.positional[1..] {
                let lsn = log.write(text.as_bytes()).map_err(|e| e.to_string())?;
                println!("{lsn}");
            }
            log.force().map_err(|e| format!("force: {e}"))?;
        }
        "read" => {
            let lsn: u64 = args
                .positional
                .get(1)
                .ok_or("read needs an LSN")?
                .parse()
                .map_err(|e| format!("bad LSN: {e}"))?;
            match log.read(Lsn(lsn)) {
                Ok(d) => println!("{}", String::from_utf8_lossy(d.as_bytes())),
                Err(DlogError::NotPresent { .. }) => println!("(not present)"),
                Err(e) => return Err(e.to_string()),
            }
        }
        "tail" => {
            let k: u64 = args
                .positional
                .get(1)
                .map_or(Ok(10), |s| s.parse())
                .unwrap_or(10);
            let end = log.end_of_log().map_err(|e| e.to_string())?;
            let lo = end.0.saturating_sub(k).saturating_add(1).max(1);
            for l in lo..=end.0 {
                match log.read(Lsn(l)) {
                    Ok(d) => println!("{l}: {}", String::from_utf8_lossy(d.as_bytes())),
                    Err(DlogError::NotPresent { .. }) => println!("{l}: (not present)"),
                    Err(e) => println!("{l}: <error: {e}>"),
                }
            }
        }
        "end" => {
            println!("{}", log.end_of_log().map_err(|e| e.to_string())?);
        }
        "repair" => {
            let report = log.repair().map_err(|e| e.to_string())?;
            println!(
                "live servers: {}, examined: {}, under-replicated: {}, copied: {}",
                report.live_servers,
                report.records_examined,
                report.under_replicated,
                report.records_copied
            );
        }
        "bench" => {
            let txns: u64 = args
                .positional
                .get(1)
                .map_or(Ok(100), |s| s.parse())
                .unwrap_or(100);
            let db = BankDb::new(10_000, 100, 10);
            let mut mgr = RecoveryManager::new(log, db, LogMode::Classic, 1 << 20);
            let mut gen = Et1Generator::new(Et1Config::small(client));
            let start = std::time::Instant::now();
            for _ in 0..txns {
                mgr.run_et1(&gen.next_txn()).map_err(|e| e.to_string())?;
            }
            let dt = start.elapsed();
            println!(
                "{txns} ET1 transactions in {:.1} ms = {:.0} TPS",
                dt.as_secs_f64() * 1e3,
                txns as f64 / dt.as_secs_f64()
            );
        }
        other => return Err(format!("unknown command {other:?}")),
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("dlog: {e}");
        eprintln!("{}", usage());
        exit(1);
    }
}
