//! `dlog-server` — run one log-server node over UDP.
//!
//! ```text
//! dlog-server --dir /var/lib/dlog/s1 --listen 127.0.0.1:7001 --id 1
//!             [--shards 4] [--track-kb 64] [--nvram-kb 1024] [--no-fsync true]
//!             [--archive-dir /var/lib/dlog/archive1] [--archive-interval-ms 1000]
//!             [--force-coalesce-us 2000] [--force-coalesce-max 64]
//! ```
//!
//! The server stores every client's records in one sequential CRC-framed
//! stream under `--dir`, buffers them in a simulated NVRAM device (within
//! this process; a crash of the whole process relies on the fsync'd
//! stream), and serves the §4.2 protocol to any client that shows up.

use std::net::SocketAddr;
use std::process::exit;

use dlog_cli::Args;
use dlog_net::udp::UdpEndpoint;
use dlog_net::wire::NodeAddr;
use dlog_net::Endpoint;
use dlog_server::gen::GenStore;
use dlog_server::{LogServer, ServerConfig};
use dlog_storage::{LogStore, NvramDevice, StoreOptions};
use dlog_types::ServerId;

fn run() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1))?;
    let dir: String = args.require("dir")?;
    let id: u64 = args.get_or("id", 1)?;
    let track_kb: usize = args.get_or("track-kb", 64)?;
    let nvram_kb: usize = args.get_or("nvram-kb", 1024)?;
    let no_fsync: bool = args.get_or("no-fsync", false)?;

    let opts = StoreOptions {
        track_bytes: track_kb * 1024,
        fsync: !no_fsync,
        ..StoreOptions::default()
    };

    // Maintenance mode: audit the directory and exit.
    if args.get_or("verify", false)? {
        let report = dlog_storage::verify::verify_dir(&dir, &opts)
            .map_err(|e| format!("verify {dir}: {e}"))?;
        println!(
            "{dir}: {} frames, {} records, {} payload bytes, {} clients",
            report.frames,
            report.record_count(),
            report.payload_bytes,
            report.clients.len()
        );
        let mut clients: Vec<_> = report.clients.iter().collect();
        clients.sort_by_key(|(c, _)| **c);
        for (c, list) in clients {
            println!(
                "  {c}: {} intervals, {} records",
                list.len(),
                list.record_count()
            );
        }
        if report.torn_tail_bytes > 0 {
            println!(
                "  torn tail: {} bytes (recovered on next start)",
                report.torn_tail_bytes
            );
        }
        for (c, n) in &report.orphan_staged {
            println!("  {c}: {n} staged records never installed");
        }
        if let Some(e) = &report.structural_error {
            return Err(format!("structural error: {e}"));
        }
        println!(
            "status: {}",
            if report.healthy() {
                "healthy"
            } else {
                "needs recovery"
            }
        );
        return Ok(());
    }

    let listen: SocketAddr = args.require("listen")?;
    let shards: u64 = args.get_or("shards", 1)?;
    let shards = shards.max(1);
    // Group commit: forces arriving within the window share one physical
    // durability round. 0 (the default) keeps forces synchronous.
    let coalesce_us: u64 = args.get_or("force-coalesce-us", 0)?;
    let coalesce_max: usize = args.get_or("force-coalesce-max", 64)?;
    if coalesce_us > 0 {
        eprintln!(
            "dlog-server {id}: group commit on (window {coalesce_us} us, max batch {})",
            coalesce_max.max(1)
        );
    }
    // Observability on by default so `dlog stats` has data to show;
    // --no-obs true reverts to the zero-cost disabled handle. Each shard
    // gets its own handle so per-shard `Stats` rows never double-count.
    let no_obs: bool = args.get_or("no-obs", false)?;
    let archive_dir = args.get::<String>("archive-dir")?;
    let archive_interval_ms: u64 = args.get_or("archive-interval-ms", 1000)?;

    // One log server per shard, each over its own storage root (the
    // `--dir` itself when unsharded, `--dir/shard-K` otherwise).
    let mut servers = Vec::new();
    let mut obs0 = dlog_obs::Obs::off();
    for k in 0..shards {
        let shard_dir = if shards == 1 {
            dir.clone()
        } else {
            format!("{dir}/shard-{k}")
        };
        let nvram = NvramDevice::new(nvram_kb * 1024);
        let store = LogStore::open(&shard_dir, opts.clone(), nvram)
            .map_err(|e| format!("open store {shard_dir}: {e}"))?;
        let gens = GenStore::open(format!("{shard_dir}/gens"))
            .map_err(|e| format!("open generator store: {e}"))?;
        let mut config = ServerConfig::new(ServerId(id)).for_shard(k, shards);
        config.coalesce_window = std::time::Duration::from_micros(coalesce_us);
        config.coalesce_max_batch = coalesce_max.max(1);
        let mut server =
            LogServer::new(config, store, gens).map_err(|e| format!("construct server: {e}"))?;
        let obs = if no_obs {
            dlog_obs::Obs::off()
        } else {
            dlog_obs::Obs::new(&dlog_obs::ObsOptions::on())
        };
        server.set_obs(obs.clone());
        if k == 0 {
            obs0 = obs;
        }
        if let Some(archive_root) = &archive_dir {
            let shard_archive = if shards == 1 {
                archive_root.clone()
            } else {
                format!("{archive_root}/shard-{k}")
            };
            let objects = dlog_archive::LocalDirStore::open(&shard_archive)
                .map_err(|e| format!("open archive {shard_archive}: {e}"))?;
            server
                .attach_archive(
                    std::sync::Arc::new(objects),
                    std::time::Duration::from_millis(archive_interval_ms),
                )
                .map_err(|e| format!("attach archive {shard_archive}: {e}"))?;
            eprintln!(
                "dlog-server {id}: shard {k} archiving to {shard_archive} \
                 every {archive_interval_ms} ms"
            );
        }
        servers.push(server);
    }

    let mut ep =
        UdpEndpoint::bind(NodeAddr(id), listen).map_err(|e| format!("bind {listen}: {e}"))?;
    ep.set_obs(obs0);
    ep.set_promiscuous(true);
    let bound = ep.socket_addr().map_err(|e| e.to_string())?;
    eprintln!("dlog-server {id}: serving {dir} on {bound} with {shards} shard(s) (ctrl-c to stop)");

    if shards > 1 {
        // Sharded: the supervisor owns the socket's receive side and
        // routes by logical log; this thread just keeps the process up.
        let _sup = dlog_server::shard::ShardSupervisor::spawn(servers, ep);
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    let mut server = servers.pop().expect("one shard");

    loop {
        // With forces pending, poll instead of blocking so the group
        // commits the moment the socket drains (the window is the
        // maximum extra latency, not a fixed delay).
        let timeout = if server.has_pending_forces() {
            std::time::Duration::ZERO
        } else {
            std::time::Duration::from_millis(100)
        };
        match ep.recv(timeout) {
            Ok(Some((from, pkt))) => {
                for (to, reply) in server.handle(from, &pkt) {
                    let _ = ep.send(to, &reply);
                }
                for (to, reply) in server.force_tick() {
                    let _ = ep.send(to, &reply);
                }
            }
            Ok(None) => {
                if server.has_pending_forces() {
                    for (to, reply) in server.flush_pending_forces() {
                        let _ = ep.send(to, &reply);
                    }
                } else if let Err(e) = server.archive_tick() {
                    // Retried next interval; the watermark holds retention
                    // back until the upload goes through.
                    eprintln!("dlog-server {id}: archive round failed: {e}");
                }
            }
            Err(e) => return Err(format!("socket error: {e}")),
        }
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("dlog-server: {e}");
        eprintln!(
            "usage: dlog-server --dir DIR --listen HOST:PORT [--id N] [--shards 1] \
             [--track-kb 64] [--nvram-kb 1024] [--no-fsync true] [--no-obs true] \
             [--archive-dir DIR] [--archive-interval-ms 1000] \
             [--force-coalesce-us 0] [--force-coalesce-max 64]"
        );
        exit(1);
    }
}
