//! Minimal stand-in for the `bytes` crate API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of `bytes` the workspace uses: `Bytes`/`BytesMut` as thin wrappers
//! over `Vec<u8>`, the `Buf` cursor trait for `&[u8]`, and the `BufMut`
//! little-endian writer methods for `BytesMut`. No zero-copy reference
//! counting — `freeze` simply moves the buffer.

use std::ops::{Deref, DerefMut};

/// Immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn new() -> Self {
        Self(Vec::new())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(data.to_vec())
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self(v.to_vec())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.0
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        Self(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    pub fn clear(&mut self) {
        self.0.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Cursor over a byte source; implemented for `&[u8]`, advancing the slice.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn chunk(&self) -> &[u8];

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut buf = [0u8; 2];
        buf.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(buf)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(buf)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(buf)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Little-endian writer; implemented for `BytesMut`.
pub trait BufMut {
    fn put_slice(&mut self, data: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut out = BytesMut::with_capacity(16);
        out.put_u8(7);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(42);
        out.put_slice(b"xy");
        let frozen = out.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert!(r.has_remaining());
        r.advance(2);
        assert!(!r.has_remaining());
    }
}
