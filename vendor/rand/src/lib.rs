//! Minimal deterministic stand-in for the `rand` crate API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of `rand` the workspace uses: `StdRng` (a splitmix64 generator),
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}` over integer
//! and float ranges, and `seq::SliceRandom::shuffle`. All call sites in the
//! workspace seed explicitly, so no OS entropy source is needed.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a stream of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let width = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % width;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + rng.next_f64() * (hi - lo)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator, seeded explicitly.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood): full-period, passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::RngCore;

    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let a = rng.gen_range(0..10);
            assert!((0..10).contains(&a));
            let b = rng.gen_range(-999_999i64..=999_999);
            assert!((-999_999..=999_999).contains(&b));
            let c = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&c));
            let d = rng.gen_range(5u64..=5);
            assert_eq!(d, 5);
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }
}
