//! Minimal marker-trait stand-in for the `serde` API.
//!
//! The build environment has no crates.io access. The workspace only uses
//! serde as an optional derive on public types (and a test that asserts the
//! impls exist), so `Serialize` / `Deserialize` are provided as marker
//! traits with blanket impls, and the derive macros (re-exported from the
//! local `serde_derive`) expand to nothing. No actual serialization format
//! is implemented; swap in the real serde when a registry is available.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

// Like the real serde, re-export the derive macros under the same names as
// the traits (macro and type namespaces coexist).
pub use serde_derive::{Deserialize, Serialize};
