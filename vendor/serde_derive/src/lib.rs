//! No-op derive macros for the vendored `serde` stand-in.
//!
//! The vendored `serde` implements `Serialize` / `Deserialize` as blanket
//! marker impls, so these derives have nothing to generate — they exist so
//! `#[derive(serde::Serialize, serde::Deserialize)]` attributes compile
//! unchanged against the stand-in.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
