//! Minimal stand-in for the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of criterion the workspace's benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!`/
//! `criterion_main!` macros. Measurement is a simple calibrated timing loop
//! reporting the per-iteration mean; no statistics, plots, or baselines.
//! `cargo bench -- --test` runs every benchmark body once, like the real
//! criterion's test mode.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample measurement target: long enough to dominate timer overhead,
/// short enough that a full `cargo bench` stays interactive.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` (used by CI as a smoke test) must run each
        // bench body once instead of measuring.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self.test_mode, &name.into(), 10, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name);
        run_bench(self.c.test_mode, &id, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.0);
        run_bench(self.c.test_mode, &id, self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(&mut self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(test_mode: bool, id: &str, samples: usize, f: &mut F) {
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {id} ... ok");
        return;
    }

    // Calibrate: grow the iteration count until one sample takes long enough
    // to measure reliably.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= SAMPLE_TARGET || iters >= 1 << 24 {
            break;
        }
        iters = if b.elapsed.is_zero() {
            iters * 16
        } else {
            // Aim slightly past the target so the loop exits next round.
            let scale = SAMPLE_TARGET.as_secs_f64() / b.elapsed.as_secs_f64();
            (iters as f64 * scale * 1.2).ceil() as u64
        }
        .max(iters + 1);
    }

    let mut best = Duration::MAX;
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed < best {
            best = b.elapsed;
        }
    }
    let per_iter = best.as_secs_f64() / iters as f64;
    println!("{id:<50} {:>12.1} ns/iter ({iters} iters)", per_iter * 1e9);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
