//! Minimal stand-in for the `proptest` property-testing API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of proptest the workspace's tests use: the `Strategy` trait with
//! `prop_map`/`boxed`, range and tuple strategies, `Just`, weighted
//! `prop_oneof!`, `collection::vec`, `any::<T>()`, a character-class regex
//! string strategy, and the `proptest!`/`prop_assert*!`/`prop_assume!`
//! macros. Differences from the real crate: cases are generated from
//! deterministic per-case seeds (no OS entropy), there is **no shrinking**
//! (a failing case panics with its values via the assert message), and
//! `prop_assume!` skips the rest of the current case instead of drawing a
//! replacement.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generator handed to strategies; deterministic per case.
pub type TestRng = StdRng;

pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Type-erased strategy; `Clone` so `prop_oneof!` arms can be reused.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between type-erased strategies (built by `prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().any(|(w, _)| *w > 0), "all weights are zero");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Self(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// String strategy from a character-class regex literal like `"[a-z ]{0,40}"`.
///
/// Only the `[class]{lo,hi}` shape is supported — enough for the patterns
/// the workspace uses; anything else panics with a clear message.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy {self:?} (vendored proptest only supports \"[class]{{lo,hi}}\")"));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if chars.is_empty() || lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element count for `vec`; inclusive bounds.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives one property: `config.cases` deterministic cases through `strat`.
///
/// Used by the `proptest!` macro; the case seed is printed on panic via the
/// panic payload of the failing assert inside `f`.
pub fn run_cases<S: Strategy, F: FnMut(S::Value)>(config: &ProptestConfig, strat: &S, mut f: F) {
    for case in 0..config.cases {
        // Fixed per-case seeds keep runs reproducible without shrinking.
        let mut rng = TestRng::seed_from_u64(0xD10C_0000_0000_0000 ^ case as u64);
        let value = strat.generate(&mut rng);
        f(value);
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the rest of the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( config = $config:expr; ) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strat = ( $($strat,)+ );
            $crate::run_cases(&config, &strat, |( $($arg,)+ )| $body);
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let strat = (1u64..10, 0.0f64..1.0, any::<bool>()).prop_map(|(a, b, c)| (a * 2, b, c));
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..100 {
            let (a, b, _c) = crate::Strategy::generate(&strat, &mut rng);
            assert!((2..20).contains(&a) && a % 2 == 0);
            assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn oneof_respects_zero_weight_arms() {
        let strat = prop_oneof![1 => Just(1u8), 0 => Just(2u8)];
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..50 {
            assert_eq!(crate::Strategy::generate(&strat, &mut rng), 1);
        }
    }

    #[test]
    fn vec_sizes_exact_and_ranged() {
        let mut rng = TestRng::seed_from_u64(3);
        let exact = crate::collection::vec(any::<u64>(), 9);
        assert_eq!(crate::Strategy::generate(&exact, &mut rng).len(), 9);
        let ranged = crate::collection::vec(0usize..5, 1..4);
        for _ in 0..50 {
            let v = crate::Strategy::generate(&ranged, &mut rng);
            assert!((1..=3).contains(&v.len()));
        }
    }

    #[test]
    fn string_class_strategy() {
        let mut rng = TestRng::seed_from_u64(4);
        for _ in 0..50 {
            let s = crate::Strategy::generate(&"[a-z ]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: multiple args, `mut` patterns, and assume.
        #[test]
        fn macro_end_to_end(mut xs in crate::collection::vec(1u32..100, 0..10), flag in any::<bool>()) {
            prop_assume!(!xs.is_empty() || flag);
            xs.push(7);
            prop_assert!(xs.iter().all(|&x| (1..100).contains(&x) || x == 7));
            prop_assert_eq!(xs.last().copied(), Some(7), "push landed at {}", xs.len());
        }
    }
}
