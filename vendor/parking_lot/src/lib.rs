//! Minimal std-backed stand-in for the `parking_lot` API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of `parking_lot` the workspace actually uses — `Mutex`, `RwLock`,
//! and `Condvar` without lock poisoning — implemented on top of
//! `std::sync`. Poisoned std locks are recovered with `into_inner`, matching
//! parking_lot's no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Instant;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait_until can take the std guard and put it back.
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_until_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !*done {
            if cv.wait_until(&mut done, deadline).timed_out() {
                break;
            }
        }
        assert!(*done);
        t.join().unwrap();
    }
}
