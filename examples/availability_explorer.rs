//! Interactive availability explorer: evaluate any (M, N, p)
//! configuration with the §3.2 closed forms, cross-check by Monte-Carlo
//! simulation, and size M for target availabilities.
//!
//! Run with:
//! `cargo run -p dlog-bench --example availability_explorer -- [p] [m_max]`
//! (defaults: p = 0.05, m_max = 8 — the paper's Figure 3-4 ranges)

use dlog_analysis::availability::{
    figure_3_4, generator_availability, max_m_for_init, min_m_for_write, read_availability,
};
use dlog_analysis::table::{fmt_prob, Table};
use dlog_sim::MonteCarloParams;

fn main() {
    let mut args = std::env::args().skip(1);
    let p: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let m_max: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    println!("Replicated-log availability, per-server unavailability p = {p}\n");
    let mut t = Table::new(vec![
        "N",
        "M",
        "write",
        "init",
        "read",
        "write (sim)",
        "init (sim)",
    ]);
    for row in figure_3_4(m_max, p) {
        let mut mc = MonteCarloParams::new(row.m as usize, row.n as usize);
        mc.p = p;
        mc.samples = 30_000;
        mc.horizon = 150_000.0;
        let est = mc.run();
        t.row(vec![
            row.n.to_string(),
            row.m.to_string(),
            fmt_prob(row.write),
            fmt_prob(row.init),
            fmt_prob(read_availability(row.n, p)),
            fmt_prob(est.write),
            fmt_prob(est.init),
        ]);
    }
    println!("{}", t.render());

    println!("Configuration sizing (the trade §3.2 describes):");
    for n in [2u64, 3] {
        for target in [0.99, 0.999, 0.9999] {
            let write_m =
                min_m_for_write(n, p, target, 20).map_or("—".to_string(), |m| m.to_string());
            let init_m =
                max_m_for_init(n, p, target, 20).map_or("—".to_string(), |m| m.to_string());
            println!(
                "  N={n}, target {target}: WriteLog needs M >= {write_m}; \
                 initialization allows M <= {init_m}"
            );
        }
    }
    println!(
        "\nGenerator availability (majority of R representatives): R=3: {}, R=5: {}",
        fmt_prob(generator_availability(3, p)),
        fmt_prob(generator_availability(5, p))
    );
}
