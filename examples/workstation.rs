//! The workstation scenario of §2: long-running design transactions with
//! savepoints, using §5.2 log-record splitting — redo components stream
//! to the log servers while undo components stay in the client cache,
//! shrinking log volume and keeping aborts local.
//!
//! Run with: `cargo run -p dlog-bench --example workstation --release`

use dlog_bench::{Cluster, ClusterOptions};
use dlog_workload::et1::{Et1Config, LongTxnGenerator};
use dlog_workload::recovery::LogMode;
use dlog_workload::{BankDb, RecoveryManager};

fn main() {
    let cluster = Cluster::start("workstation", ClusterOptions::new(3));
    let mut log = cluster.client(1, 2, 16);
    log.initialize().expect("initialize");

    let db = BankDb::new(10_000, 100, 10);
    // Split mode with a 64 KiB undo cache — the §5.2 configuration.
    let mut mgr = RecoveryManager::new(log, db, LogMode::Split, 64 * 1024);
    let mut gen = LongTxnGenerator::new(
        Et1Config::small(7),
        /* steps per design transaction */ 60,
        /* savepoint every */ 10,
    );

    let mut rollbacks = 0u32;
    for i in 0..10 {
        let txn = gen.next_txn();
        if i == 4 {
            // Drive this one explicitly: mid-transaction page cleaning
            // (the §5.2 WAL spill path) and a partial rollback to a
            // savepoint — the reason §2's design transactions "use
            // frequent save points".
            let t = mgr.begin();
            let mut since_savepoint: Vec<_> = Vec::new();
            let mut last_savepoint = 0u32;
            for (j, step) in txn.steps.iter().enumerate() {
                mgr.step(t, step).expect("step");
                since_savepoint.push(*step);
                if (j + 1) % txn.savepoint_every == 0 {
                    last_savepoint = j as u32 + 1;
                    mgr.savepoint(t, last_savepoint).expect("savepoint");
                    since_savepoint.clear();
                }
                if j == 30 {
                    let page = BankDb::account_page(txn.steps[0].account);
                    mgr.clean_page(page).expect("clean page");
                }
                if j == 34 {
                    // The designer discards the work since the last
                    // savepoint — locally, from the undo cache.
                    mgr.rollback_to_savepoint(t, last_savepoint, &since_savepoint)
                        .expect("rollback to savepoint");
                    since_savepoint.clear();
                    rollbacks += 1;
                }
            }
            mgr.commit_txn(t).expect("commit");
        } else {
            mgr.run_long(&txn).expect("long transaction");
        }
    }
    assert!(mgr.db().conserved());
    assert_eq!(rollbacks, 1);

    let s = mgr.split_stats();
    println!("10 design transactions x 60 steps with savepoints every 10:");
    println!("  redo bytes logged:        {}", s.redo_bytes_logged);
    println!(
        "  undo bytes logged:        {} (page cleaning / cache pressure)",
        s.undo_bytes_logged
    );
    println!(
        "  undo bytes saved:         {} (released at commit, never logged)",
        s.undo_bytes_saved
    );
    println!("  page-clean spills:        {}", s.page_clean_spills);
    let saved_fraction =
        s.undo_bytes_saved as f64 / (s.redo_bytes_logged + s.undo_bytes_saved) as f64;
    println!(
        "  => splitting kept {:.0}% of the update volume off the wire",
        saved_fraction * 100.0
    );

    // Crash and recover: the replicated log alone reproduces the state.
    let committed = mgr.db().clone();
    let mut log = {
        drop(mgr);
        let mut l = cluster.client(1, 2, 16);
        l.initialize().expect("re-init");
        l
    };
    let recovered =
        RecoveryManager::recover(&mut log, BankDb::new(10_000, 100, 10)).expect("recover");
    assert_eq!(recovered, committed);
    println!("crash recovery reproduced the committed state.");
}
