//! The multicomputer scenario of §2: a transaction-processing node runs
//! ET1 (debit–credit) transactions against a bank database, logging to
//! shared replicated log servers, then crashes — and the database is
//! rebuilt from the replicated log.
//!
//! Run with: `cargo run -p dlog-bench --example bank_et1 --release`

use std::time::Instant;

use dlog_bench::{Cluster, ClusterOptions};
use dlog_workload::recovery::LogMode;
use dlog_workload::{BankDb, Et1Config, Et1Generator, RecoveryManager};

fn main() {
    let txns: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let cluster = Cluster::start("bank-et1", ClusterOptions::new(3));

    // The committed state we will have to reproduce after the crash.
    let committed_db;
    {
        let mut log = cluster.client(1, 2, 16);
        log.initialize().expect("initialize");
        let db = BankDb::new(10_000, 100, 10);
        let mut mgr = RecoveryManager::new(log, db, LogMode::Classic, 1 << 20);
        let mut gen = Et1Generator::new(Et1Config::small(2024));

        let start = Instant::now();
        for i in 0..txns {
            let txn = gen.next_txn();
            if i % 10 == 9 {
                // One in ten transactions aborts — resolved locally from
                // the undo cache, no server round trip.
                mgr.run_et1_abort(&txn).expect("abort");
            } else {
                mgr.run_et1(&txn).expect("commit");
            }
        }
        let elapsed = start.elapsed();
        println!(
            "ran {txns} ET1 transactions in {:.1} ms ({:.0} TPS), {} committed",
            elapsed.as_secs_f64() * 1e3,
            txns as f64 / elapsed.as_secs_f64(),
            mgr.db().history_len()
        );
        assert!(mgr.db().conserved(), "conservation invariant");
        committed_db = mgr.db().clone();
        // The node crashes here: the manager (and its in-memory database
        // and undo cache) is dropped. Only the replicated log survives.
    }

    // A fresh node restarts, re-initializes the replicated log (crash
    // recovery: §3.1.2), and replays it into an empty database.
    let mut log = cluster.client(1, 2, 16);
    log.initialize().expect("re-initialize");
    let start = Instant::now();
    let recovered =
        RecoveryManager::recover(&mut log, BankDb::new(10_000, 100, 10)).expect("recover");
    println!(
        "recovered {} committed transactions from the replicated log in {:.1} ms",
        recovered.history_len(),
        start.elapsed().as_secs_f64() * 1e3
    );
    assert!(recovered.conserved());
    assert_eq!(
        recovered, committed_db,
        "recovered state must equal the committed state"
    );
    println!("recovered database matches the committed database exactly.");
}
