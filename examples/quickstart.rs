//! Quickstart: start three log servers in-process, open a replicated log
//! with N = 2 copies, write, force, read, crash, and recover.
//!
//! Run with: `cargo run -p dlog-bench --example quickstart`

use dlog_bench::{Cluster, ClusterOptions};
use dlog_types::Lsn;

fn main() {
    // Three log-server nodes on an in-process network. Each has its own
    // storage directory and simulated battery-backed (NVRAM) buffer.
    let cluster = Cluster::start("quickstart", ClusterOptions::new(3));

    // A replicated log: records go to N = 2 of the M = 3 servers; at most
    // delta = 4 records are in flight unacknowledged.
    let mut log = cluster.client(/* client id */ 1, /* n */ 2, /* delta */ 4);

    // Client initialization (§3.1.2): gathers interval lists from
    // M − N + 1 = 2 servers, merges them, draws a fresh crash epoch from
    // the replicated identifier generator, and rewrites the doubtful tail.
    log.initialize().expect("initialize replicated log");
    println!(
        "initialized: epoch {}, targets {:?}",
        log.epoch(),
        log.targets()
    );

    // WriteLog returns increasing LSNs; records are grouped locally and
    // only shipped (and made durable on N servers) by force().
    for i in 1..=10u64 {
        let lsn = log
            .write(format!("record number {i}").into_bytes())
            .unwrap();
        assert_eq!(lsn, Lsn(i));
    }
    let durable = log.force().expect("force");
    println!("forced through LSN {durable}");

    // ReadLog uses a single server (the read-side voting already happened
    // at initialization).
    let data = log.read(Lsn(7)).expect("read");
    println!("read LSN 7: {:?}", String::from_utf8_lossy(data.as_bytes()));
    assert_eq!(data.as_bytes(), b"record number 7");

    // Crash the client (drop it) and restart: the log survives, with the
    // tail masked by the recovery procedure.
    drop(log);
    let mut log = cluster.client(1, 2, 4);
    log.initialize().expect("re-initialize");
    println!("after restart: end of log = {}", log.end_of_log().unwrap());
    let data = log.read(Lsn(3)).expect("read after restart");
    assert_eq!(data.as_bytes(), b"record number 3");
    println!("record 3 survived the crash; epoch is now {}", log.epoch());
}
