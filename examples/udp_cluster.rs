//! The full stack over a real network: three log servers and a client
//! exchanging the §4.2 protocol over UDP datagrams on loopback — the
//! transport a 1987 LAN-based log service would actually resemble
//! (unreliable datagrams + end-to-end recovery).
//!
//! Run with: `cargo run -p dlog-bench --example udp_cluster`

use std::collections::HashMap;
use std::net::SocketAddr;

use dlog_core::client::{ClientOptions, ReplicatedLog};
use dlog_core::net::ClientNet;
use dlog_net::udp::UdpEndpoint;
use dlog_net::wire::NodeAddr;
use dlog_server::gen::GenStore;
use dlog_server::runner::ServerRunner;
use dlog_server::{LogServer, ServerConfig};
use dlog_storage::{LogStore, NvramDevice, StoreOptions};
use dlog_types::{ClientId, Lsn, ReplicationConfig, ServerId};

fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

fn main() {
    let root = std::env::temp_dir().join(format!("dlog-udp-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Start three servers, each on its own UDP socket.
    let server_ids: Vec<ServerId> = (1..=3).map(ServerId).collect();
    let mut endpoints = Vec::new();
    for &sid in &server_ids {
        let ep = UdpEndpoint::bind(NodeAddr(sid.0), loopback()).expect("bind server socket");
        endpoints.push(ep);
    }
    let socket_addrs: Vec<SocketAddr> =
        endpoints.iter().map(|e| e.socket_addr().unwrap()).collect();

    // The client's socket, with the full directory.
    let client_ep = UdpEndpoint::bind(NodeAddr(1000), loopback()).expect("bind client socket");
    for (i, &sid) in server_ids.iter().enumerate() {
        client_ep.add_peer(NodeAddr(sid.0), socket_addrs[i]);
    }
    let client_sock = client_ep.socket_addr().unwrap();

    // Servers need the client (and each other is unnecessary — servers
    // never talk to servers in this design).
    let mut runners = Vec::new();
    for (i, ep) in endpoints.into_iter().enumerate() {
        ep.add_peer(NodeAddr(1000), client_sock);
        let sid = server_ids[i];
        let dir = root.join(format!("server-{}", sid.0));
        let opts = StoreOptions {
            fsync: false,
            checkpoint_every: 0,
            ..StoreOptions::default()
        };
        let store = LogStore::open(&dir, opts, NvramDevice::new(1 << 20)).unwrap();
        let gens = GenStore::open(dir.join("gens")).unwrap();
        let server = LogServer::new(ServerConfig::new(sid), store, gens).unwrap();
        runners.push(ServerRunner::spawn(server, ep));
    }
    println!("three log servers listening on UDP: {socket_addrs:?}");

    // A replicated log over UDP.
    let addrs: HashMap<ServerId, NodeAddr> =
        server_ids.iter().map(|&s| (s, NodeAddr(s.0))).collect();
    let net = ClientNet::new(client_ep, addrs);
    let config = ReplicationConfig::new(server_ids.clone(), 2, 8).unwrap();
    let mut log = ReplicatedLog::new(ClientId(1), ClientOptions::new(config), net);
    log.initialize().expect("initialize over UDP");
    println!(
        "client initialized over UDP: epoch {}, targets {:?}",
        log.epoch(),
        log.targets()
    );

    for i in 1..=50u64 {
        log.write(format!("udp record {i}").into_bytes()).unwrap();
        if i % 10 == 0 {
            log.force().unwrap();
        }
    }
    log.force().unwrap();
    let d = log.read(Lsn(37)).unwrap();
    assert_eq!(d.as_bytes(), b"udp record 37");
    println!(
        "wrote and forced 50 records; read LSN 37 back: {:?}",
        String::from_utf8_lossy(d.as_bytes())
    );

    for r in runners {
        let server = r.stop();
        println!(
            "server {} stored {} records ({} packets in)",
            server.id(),
            server.stats().records_stored,
            server.stats().packets_in
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}
