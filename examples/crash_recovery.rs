//! The §3.1.2 atomicity story, end to end: a client crashes with a
//! record written to fewer than N servers; the restart procedure decides
//! the record's fate once and for all (copy-with-new-epoch + not-present
//! masks + InstallCopies), so every later reader sees a consistent log.
//!
//! Run with: `cargo run -p dlog-bench --example crash_recovery`

use dlog_bench::harness::{client_addr, server_addr};
use dlog_bench::{payload, Cluster, ClusterOptions};
use dlog_types::{DlogError, Lsn};

fn main() {
    let cluster = Cluster::start("crash-recovery", ClusterOptions::new(3));
    let client_id = 1u64;

    // Phase 1: write five records durably, then stream three more that
    // reach only ONE of the two targets (the other is partitioned away) —
    // and crash before the force completes.
    {
        let mut log = cluster.client(client_id, 2, 8);
        log.initialize().unwrap();
        for i in 1..=5u64 {
            log.write(payload(i, 64)).unwrap();
        }
        log.force().unwrap();
        println!("wrote records 1..=5 durably (on N = 2 servers each)");

        let lagging = log.targets()[1];
        cluster
            .net
            .partition(client_addr(log.client_id()), server_addr(lagging));
        for i in 6..=8u64 {
            log.write(payload(i, 64)).unwrap();
        }
        log.flush().unwrap(); // asynchronous stream: reaches one server only
        std::thread::sleep(std::time::Duration::from_millis(100));
        println!("streamed records 6..=8 to a single server, then CRASHED");
        // drop(log) = client crash, with records partially written.
    }

    // Phase 2: restart. Initialization merges interval lists from
    // M − N + 1 = 2 servers; depending on which servers answer first the
    // partial records may or may not be visible — either way the
    // procedure makes the outcome *permanent*.
    let mut log = cluster.client(client_id, 2, 8);
    log.initialize().unwrap();
    let end = log.end_of_log().unwrap();
    println!("restarted: epoch {}, end of log = {end}", log.epoch());

    for i in 1..=end.0 {
        match log.read(Lsn(i)) {
            Ok(d) => println!("  LSN {i}: present ({} bytes)", d.len()),
            Err(DlogError::NotPresent { .. }) => {
                println!("  LSN {i}: masked not-present by recovery");
            }
            Err(e) => panic!("unexpected read outcome for {i}: {e}"),
        }
    }

    // Records 1..=5 must always survive: their WriteLog completed.
    for i in 1..=5u64 {
        assert!(log.read(Lsn(i)).is_ok(), "completed record {i} lost");
    }

    // The decision is stable: a second restart sees the same answers.
    let answers_before: Vec<bool> = (1..=end.0).map(|i| log.read(Lsn(i)).is_ok()).collect();
    drop(log);
    let mut log = cluster.client(client_id, 2, 8);
    log.initialize().unwrap();
    let answers_after: Vec<bool> = (1..=end.0).map(|i| log.read(Lsn(i)).is_ok()).collect();
    assert_eq!(
        answers_before, answers_after,
        "recovery decisions must be permanent"
    );
    println!("a second restart returned identical answers for every LSN — the");
    println!("partially-written suffix was resolved atomically.");
}
